//! Direct `extern "C"` bindings to the handful of Linux syscalls the OS
//! transport needs.
//!
//! The container builds offline, so the usual `libc` crate is unavailable;
//! consistent with the shim policy (DESIGN.md §7) the [`crate::tcp`] module
//! links the few functions it needs straight out of the C library that std
//! already links. Everything here is `pub(crate)`: the rest of the crate
//! (and the workspace) only ever sees the safe [`crate::tcp`] wrappers.
//!
//! Scope: epoll (the [`crate::tcp::OsReactor`] event source), `poll` (the
//! blocking client helpers), `recv` with `MSG_PEEK` (socket-state probes
//! behind [`crate::Endpoint::readable`]), `ioctl(FIONREAD)`, raw
//! `socket`/`setsockopt`/`bind`/`listen` (needed because std cannot set
//! `SO_REUSEPORT` before binding — the accept-sharding path), `writev`
//! (vectored header+body responses) and a `pipe2` self-pipe per reactor
//! (clean shutdown of per-shard reactor threads).

#![allow(non_camel_case_types)]

use std::os::unix::io::RawFd;

pub(crate) type c_int = i32;

/// One epoll registration/report record.
///
/// The kernel ABI packs this struct on x86_64 (and only there); mirroring
/// the `cfg_attr` keeps the binding correct on other Linux targets too.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct epoll_event {
    pub events: u32,
    /// User data; the reactor stores the registered file descriptor.
    pub u64: u64,
}

/// One `poll(2)` entry.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct pollfd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

/// One segment of a vectored write (`writev(2)`).
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct iovec {
    pub iov_base: *const u8,
    pub iov_len: usize,
}

/// An IPv4 socket address in kernel layout (`sin_port`/`sin_addr` are
/// big-endian). Only the loopback/IPv4 accept-sharding path needs the raw
/// form; everything else goes through std.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct sockaddr_in {
    pub sin_family: u16,
    pub sin_port: u16,
    pub sin_addr: u32,
    pub sin_zero: [u8; 8],
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery; consumers must drain to `WouldBlock`, exactly
/// the contract `crate::poller` already imposes on the simulated sources.
pub(crate) const EPOLLET: u32 = 1 << 31;

pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;

pub(crate) const EPOLL_CLOEXEC: c_int = 0o2000000;

pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;

pub(crate) const MSG_PEEK: c_int = 0x02;
pub(crate) const MSG_DONTWAIT: c_int = 0x40;

pub(crate) const FIONREAD: u64 = 0x541B;

pub(crate) const AF_INET: c_int = 2;
pub(crate) const SOCK_STREAM: c_int = 1;
pub(crate) const SOCK_CLOEXEC: c_int = 0o2000000;

pub(crate) const SOL_SOCKET: c_int = 1;
pub(crate) const SO_REUSEADDR: c_int = 2;
pub(crate) const SO_REUSEPORT: c_int = 15;

pub(crate) const O_NONBLOCK: c_int = 0o4000;
pub(crate) const O_CLOEXEC: c_int = 0o2000000;

pub(crate) const EINTR: c_int = 4;
pub(crate) const EAGAIN: c_int = 11;
/// Out of memory (kernel buffers) — treated as transient accept pressure.
pub(crate) const ENOMEM: c_int = 12;
/// File-table overflow (system-wide fd exhaustion).
pub(crate) const ENFILE: c_int = 23;
/// Per-process fd limit hit — the classic accept-loop killer.
pub(crate) const EMFILE: c_int = 24;
/// No kernel buffer space — transient accept pressure.
pub(crate) const ENOBUFS: c_int = 105;

extern "C" {
    pub(crate) fn epoll_create1(flags: c_int) -> c_int;
    pub(crate) fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub(crate) fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub(crate) fn poll(fds: *mut pollfd, nfds: u64, timeout: c_int) -> c_int;
    pub(crate) fn recv(fd: c_int, buf: *mut u8, len: usize, flags: c_int) -> isize;
    pub(crate) fn ioctl(fd: c_int, request: u64, arg: *mut c_int) -> c_int;
    pub(crate) fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub(crate) fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_int,
        optlen: u32,
    ) -> c_int;
    pub(crate) fn bind(fd: c_int, addr: *const sockaddr_in, addrlen: u32) -> c_int;
    pub(crate) fn listen(fd: c_int, backlog: c_int) -> c_int;
    pub(crate) fn writev(fd: c_int, iov: *const iovec, iovcnt: c_int) -> isize;
    pub(crate) fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    pub(crate) fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    pub(crate) fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    pub(crate) fn close(fd: c_int) -> c_int;
}

/// The current thread's `errno` value (via std, so no binding to the
/// libc-internal TLS symbol is needed).
pub(crate) fn errno() -> c_int {
    std::io::Error::last_os_error().raw_os_error().unwrap_or(0)
}

/// Blocks until `fd` reports any of `events` (or an error/hangup), up to
/// `timeout`. Returns `true` if the descriptor is ready, `false` on
/// timeout. Used by the blocking client helpers, never by dispatchers.
pub(crate) fn wait_ready(fd: RawFd, events: i16, timeout: std::time::Duration) -> bool {
    let mut entry = pollfd {
        fd,
        events,
        revents: 0,
    };
    let millis = timeout.as_millis().min(c_int::MAX as u128) as c_int;
    loop {
        let rc = unsafe { poll(&mut entry, 1, millis) };
        if rc > 0 {
            return true;
        }
        if rc == 0 {
            return false;
        }
        if errno() != EINTR {
            return true; // Let the caller's read/write surface the error.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_instance_can_be_created_and_driven() {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        assert!(epfd >= 0, "epoll_create1 failed: errno {}", errno());
        // An empty instance times out promptly.
        let mut events = [epoll_event { events: 0, u64: 0 }; 4];
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), 4, 10) };
        assert_eq!(n, 0);
        use std::os::fd::{FromRawFd, OwnedFd};
        drop(unsafe { OwnedFd::from_raw_fd(epfd) });
    }

    #[test]
    fn writev_gathers_segments_into_one_stream() {
        use std::io::Read;
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();
        let head = b"HEAD";
        let body = b"-BODY";
        let iov = [
            iovec {
                iov_base: head.as_ptr(),
                iov_len: head.len(),
            },
            iovec {
                iov_base: body.as_ptr(),
                iov_len: body.len(),
            },
        ];
        let n = unsafe { writev(stream.as_raw_fd(), iov.as_ptr(), 2) };
        assert_eq!(n, 9, "writev failed: errno {}", errno());
        let mut buf = [0u8; 9];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"HEAD-BODY");
    }

    #[test]
    fn two_sockets_can_share_a_port_with_reuseport() {
        let bound = |port: u16| -> c_int {
            let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
            assert!(fd >= 0);
            let one: c_int = 1;
            assert_eq!(
                unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, 4) },
                0
            );
            let addr = sockaddr_in {
                sin_family: AF_INET as u16,
                sin_port: port.to_be(),
                sin_addr: u32::from(std::net::Ipv4Addr::LOCALHOST).to_be(),
                sin_zero: [0; 8],
            };
            assert_eq!(
                unsafe { bind(fd, &addr, std::mem::size_of::<sockaddr_in>() as u32) },
                0,
                "bind failed: errno {}",
                errno()
            );
            assert_eq!(unsafe { listen(fd, 16) }, 0);
            fd
        };
        // Resolve a free port via the first socket, then share it.
        let first = bound(0);
        use std::os::fd::{FromRawFd, OwnedFd};
        let first = unsafe { std::net::TcpListener::from_raw_fd(first) };
        let port = first.local_addr().unwrap().port();
        let second = bound(port);
        drop(unsafe { OwnedFd::from_raw_fd(second) });
    }

    #[test]
    fn wait_ready_times_out_on_a_silent_socket() {
        use std::os::unix::io::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let started = std::time::Instant::now();
        assert!(!wait_ready(
            stream.as_raw_fd(),
            POLLIN,
            std::time::Duration::from_millis(30)
        ));
        assert!(started.elapsed() >= std::time::Duration::from_millis(25));
    }
}
