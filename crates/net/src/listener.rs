//! The simulated network fabric: listeners, ports and connection setup.
//!
//! [`SimNetwork`] stands in for the data-centre switch fabric of the paper's
//! testbed. Services bind listeners to ports ([`SimNetwork::listen`]) and
//! clients connect to them ([`SimNetwork::connect`]); each established
//! connection is a pair of [`Endpoint`]s, with connection setup and accept
//! charged according to the configured [`StackModel`].

use crate::conn::{dispatch, pair, Endpoint, DEFAULT_PIPE_CAPACITY};
use crate::costs::{StackCosts, StackModel};
use crate::error::NetError;
use crate::poller::{Poller, Readiness, Token, WakerSlot};
use crate::ratelimit::TokenBucket;
use crate::stats::NetStats;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ListenerInner {
    pending: Mutex<VecDeque<Endpoint>>,
    cond: Condvar,
    closed: AtomicBool,
    port: u16,
    /// Registered by the accepting dispatcher; woken on every new pending
    /// connection and on close.
    waker: Mutex<Option<WakerSlot>>,
    /// Server-side endpoints of every connection routed to this port,
    /// including ones already accepted. This is the fault-injection hook:
    /// [`SimNetwork::sever_port`] closes them all at once, modelling the
    /// process behind the port crashing and the kernel resetting its
    /// connections. Closed entries are pruned on each new connect.
    established: Mutex<Vec<Endpoint>>,
    /// Remaining injected accept faults (see
    /// [`SimListener::inject_accept_faults`]): while positive, accepts
    /// fail with [`NetError::Resources`] without consuming the backlog,
    /// modelling an `EMFILE`-class burst deterministically.
    accept_faults: AtomicU64,
}

impl ListenerInner {
    fn wake(&self, readiness: Readiness) {
        if let Some(waker) = self.waker.lock().as_ref() {
            waker.wake(readiness);
        }
    }
}

/// A listening socket bound to a port of the simulated network.
#[derive(Clone)]
pub struct SimListener {
    inner: Arc<ListenerInner>,
    costs: StackCosts,
}

impl std::fmt::Debug for SimListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimListener")
            .field("port", &self.inner.port)
            .finish()
    }
}

impl SimListener {
    /// The port this listener is bound to.
    pub fn port(&self) -> u16 {
        self.inner.port
    }

    /// Accepts a pending connection without blocking.
    ///
    /// Returns [`NetError::WouldBlock`] when no connection is waiting and
    /// [`NetError::ListenerClosed`] after [`SimListener::close`].
    pub fn try_accept(&self) -> Result<Endpoint, NetError> {
        if self.consume_accept_fault() {
            return Err(NetError::Resources);
        }
        let mut queue = self.inner.pending.lock();
        match queue.pop_front() {
            Some(endpoint) => {
                drop(queue);
                StackCosts::charge(self.costs.accept);
                Ok(endpoint)
            }
            None if self.inner.closed.load(Ordering::Acquire) => Err(NetError::ListenerClosed),
            None => Err(NetError::WouldBlock),
        }
    }

    /// Makes the next `n` accepts fail with [`NetError::Resources`]
    /// without consuming the backlog — the deterministic stand-in for an
    /// `EMFILE`/`ENFILE` burst on the OS transport, used to test that
    /// accept loops back off and survive instead of dying.
    pub fn inject_accept_faults(&self, n: u64) {
        self.inner.accept_faults.fetch_add(n, Ordering::AcqRel);
    }

    /// Consumes one injected fault, if any remain.
    fn consume_accept_fault(&self) -> bool {
        self.inner
            .accept_faults
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Accepts a pending connection, blocking until one arrives.
    pub fn accept(&self) -> Result<Endpoint, NetError> {
        self.accept_timeout(Duration::from_secs(30))
    }

    /// Accepts a pending connection, blocking up to `timeout`.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Endpoint, NetError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.pending.lock();
        loop {
            if let Some(endpoint) = queue.pop_front() {
                drop(queue);
                StackCosts::charge(self.costs.accept);
                return Ok(endpoint);
            }
            if self.inner.closed.load(Ordering::Acquire) {
                return Err(NetError::ListenerClosed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::TimedOut);
            }
            self.inner.cond.wait_for(&mut queue, deadline - now);
        }
    }

    /// Number of connections waiting to be accepted.
    pub fn backlog(&self) -> usize {
        self.inner.pending.lock().len()
    }

    /// Registers this listener with `poller`: every new pending connection
    /// (and the close of the listener) enqueues `token` as a readable
    /// event. Level-triggered at the moment of the call — an already
    /// non-empty backlog queues an event immediately. Registering again
    /// replaces the previous registration.
    pub fn register(&self, poller: &Poller, token: Token) {
        // Take the backlog lock around the slot install + level check so a
        // concurrent connect cannot slip between them unnoticed.
        let pending = self.inner.pending.lock();
        *self.inner.waker.lock() = Some(poller.slot(token));
        let closed = self.inner.closed.load(Ordering::Acquire);
        if !pending.is_empty() || closed {
            let mut readiness = Readiness::readable();
            readiness.closed = closed;
            poller.post(token, readiness);
        }
    }

    /// Removes this listener's registration in `poller`, if any.
    pub fn deregister(&self, poller: &Poller) {
        let mut waker = self.inner.waker.lock();
        if waker.as_ref().is_some_and(|w| w.belongs_to(poller)) {
            *waker = None;
        }
    }

    /// Closes the listener; pending and future accepts fail.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        self.inner.cond.notify_all();
        self.inner.wake(Readiness::readable().with_closed());
    }

    /// Returns `true` after the listener was closed.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

/// Options controlling one `connect` call.
#[derive(Debug, Clone, Default)]
pub struct ConnectOptions {
    /// A link rate (bits per second) applied to each direction of the new
    /// connection, or `None` for an uncapped link.
    pub link_bits_per_sec: Option<u64>,
    /// Per-direction buffer capacity; defaults to
    /// [`DEFAULT_PIPE_CAPACITY`].
    pub capacity: Option<usize>,
}

/// The simulated network fabric.
pub struct SimNetwork {
    listeners: Mutex<HashMap<u16, Arc<ListenerInner>>>,
    model: StackModel,
    costs: StackCosts,
    stats: Arc<NetStats>,
    next_conn_id: AtomicU64,
}

impl std::fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("model", &self.model)
            .finish()
    }
}

impl SimNetwork {
    /// Creates a network whose connections are charged according to `model`.
    pub fn new(model: StackModel) -> Arc<Self> {
        Arc::new(SimNetwork {
            listeners: Mutex::new(HashMap::new()),
            model,
            costs: model.costs(),
            stats: NetStats::new_shared(),
            next_conn_id: AtomicU64::new(1),
        })
    }

    /// The stack model this network charges.
    pub fn model(&self) -> StackModel {
        self.model
    }

    /// The substrate-wide statistics counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Binds a listener to `port`.
    pub fn listen(&self, port: u16) -> Result<SimListener, NetError> {
        let mut listeners = self.listeners.lock();
        if listeners.contains_key(&port) {
            return Err(NetError::AddrInUse);
        }
        let inner = Arc::new(ListenerInner {
            pending: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            closed: AtomicBool::new(false),
            port,
            waker: Mutex::new(None),
            established: Mutex::new(Vec::new()),
            accept_faults: AtomicU64::new(0),
        });
        listeners.insert(port, Arc::clone(&inner));
        Ok(SimListener {
            inner,
            costs: self.costs,
        })
    }

    /// Removes the listener bound to `port`, closing it.
    pub fn unlisten(&self, port: u16) {
        if let Some(inner) = self.listeners.lock().remove(&port) {
            inner.closed.store(true, Ordering::Release);
            inner.cond.notify_all();
            inner.wake(Readiness::readable().with_closed());
        }
    }

    /// Establishes a connection to the listener on `port`.
    pub fn connect(&self, port: u16) -> Result<Endpoint, NetError> {
        self.connect_with(port, &ConnectOptions::default())
    }

    /// Establishes a connection with explicit options (link rate, buffers).
    pub fn connect_with(&self, port: u16, options: &ConnectOptions) -> Result<Endpoint, NetError> {
        let listener = {
            let listeners = self.listeners.lock();
            listeners.get(&port).cloned()
        };
        let Some(listener) = listener else {
            return Err(NetError::ConnectionRefused);
        };
        if listener.closed.load(Ordering::Acquire) {
            return Err(NetError::ConnectionRefused);
        }
        StackCosts::charge(self.costs.connect);
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let capacity = options.capacity.unwrap_or(DEFAULT_PIPE_CAPACITY);
        let (mut client, mut server) =
            pair(id, self.costs, Some(Arc::clone(&self.stats)), capacity);
        if let Some(bits) = options.link_bits_per_sec {
            client.set_write_rate(Arc::new(TokenBucket::new_bits_per_sec(bits, 64 * 1024)));
            server.set_write_rate(Arc::new(TokenBucket::new_bits_per_sec(bits, 64 * 1024)));
        }
        self.stats.record_open();
        {
            let mut established = listener.established.lock();
            established.retain(|e| !e.is_closed());
            established.push(server.clone());
        }
        {
            let mut queue = listener.pending.lock();
            queue.push_back(server);
            listener.cond.notify_one();
            listener.wake(Readiness::readable());
        }
        Ok(client)
    }

    /// Number of listeners currently bound.
    pub fn listener_count(&self) -> usize {
        self.listeners.lock().len()
    }

    /// Fault injection: arms the next `n` accepts on `port` to fail with
    /// [`NetError::Resources`] (see
    /// [`SimListener::inject_accept_faults`]). Keyed by port so tests can
    /// reach a listener deployed behind a platform without holding the
    /// [`SimListener`] handle. Returns `false` when nothing listens there.
    pub fn inject_accept_faults(&self, port: u16, n: u64) -> bool {
        match self.listeners.lock().get(&port) {
            Some(inner) => {
                inner.accept_faults.fetch_add(n, Ordering::AcqRel);
                true
            }
            None => false,
        }
    }

    /// Fault injection: closes every connection ever routed to `port` —
    /// accepted or still pending — as a crashing process would, and
    /// returns how many were still open. The listener itself stays bound;
    /// combine with [`SimNetwork::unlisten`] to also refuse new connects.
    ///
    /// Each close wakes both sides with closed readiness, so parked
    /// readers and writers observe the crash instead of hanging.
    pub fn sever_port(&self, port: u16) -> usize {
        let listener = {
            let listeners = self.listeners.lock();
            listeners.get(&port).cloned()
        };
        let Some(listener) = listener else {
            return 0;
        };
        let mut severed = 0;
        let mut established = listener.established.lock();
        for endpoint in established.drain(..) {
            if !endpoint.is_closed() {
                severed += 1;
                endpoint.close();
            }
        }
        severed
    }

    /// Number of connections to `port` still open (the server side has not
    /// been closed). Pending-but-unaccepted connections count.
    pub fn established_count(&self, port: u16) -> usize {
        let listener = {
            let listeners = self.listeners.lock();
            listeners.get(&port).cloned()
        };
        match listener {
            Some(listener) => listener
                .established
                .lock()
                .iter()
                .filter(|e| !e.is_closed())
                .count(),
            None => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// The transport-neutral listener
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum ListenerKind {
    Sim(SimListener),
    Tcp(crate::tcp::TcpListener),
}

/// A listening socket over either transport.
///
/// The application dispatcher holds one of these per service; whether the
/// backlog is fed by [`SimNetwork::connect`] or by the OS kernel is
/// invisible above the substrate. Registration posts readable events into
/// the same per-shard [`Poller`]s as every other source.
#[derive(Clone)]
pub struct Listener {
    kind: ListenerKind,
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ListenerKind::Sim(sim) => sim.fmt(f),
            ListenerKind::Tcp(tcp) => tcp.fmt(f),
        }
    }
}

impl From<SimListener> for Listener {
    fn from(sim: SimListener) -> Self {
        Listener {
            kind: ListenerKind::Sim(sim),
        }
    }
}

impl From<crate::tcp::TcpListener> for Listener {
    fn from(tcp: crate::tcp::TcpListener) -> Self {
        Listener {
            kind: ListenerKind::Tcp(tcp),
        }
    }
}

impl Listener {
    /// The port this listener is bound to (for the OS transport, the
    /// resolved port — meaningful after a `:0` bind).
    pub fn port(&self) -> u16 {
        dispatch!(ListenerKind, self, l => l.port())
    }

    /// `true` when this listener is a real OS socket.
    pub fn is_os(&self) -> bool {
        matches!(self.kind, ListenerKind::Tcp(_))
    }

    /// Accepts a pending connection without blocking.
    pub fn try_accept(&self) -> Result<Endpoint, NetError> {
        dispatch!(ListenerKind, self, l => l.try_accept())
    }

    /// Accepts a pending connection, blocking up to `timeout`.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Endpoint, NetError> {
        dispatch!(ListenerKind, self, l => l.accept_timeout(timeout))
    }

    /// Registers this listener with `poller`: new pending connections (and
    /// the close of the listener) enqueue `token` as readable events,
    /// level-triggered at the moment of the call.
    pub fn register(&self, poller: &Poller, token: Token) {
        dispatch!(ListenerKind, self, l => l.register(poller, token))
    }

    /// Removes this listener's registration in `poller`, if any.
    pub fn deregister(&self, poller: &Poller) {
        dispatch!(ListenerKind, self, l => l.deregister(poller))
    }

    /// Closes the listener; pending and future accepts fail, and for the
    /// OS transport the port is released.
    pub fn close(&self) {
        dispatch!(ListenerKind, self, l => l.close())
    }

    /// Returns `true` after the listener was closed.
    pub fn is_closed(&self) -> bool {
        dispatch!(ListenerKind, self, l => l.is_closed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_accept_exchange() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(80).unwrap();
        let client = net.connect(80).unwrap();
        let server = listener.accept().unwrap();
        client.write(b"GET /").unwrap();
        let mut buf = [0u8; 16];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"GET /");
        assert_eq!(net.stats().snapshot().connections_opened, 1);
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let net = SimNetwork::new(StackModel::Free);
        assert_eq!(net.connect(81).unwrap_err(), NetError::ConnectionRefused);
    }

    #[test]
    fn double_listen_is_addr_in_use() {
        let net = SimNetwork::new(StackModel::Free);
        let _first = net.listen(82).unwrap();
        assert_eq!(net.listen(82).unwrap_err(), NetError::AddrInUse);
    }

    #[test]
    fn try_accept_reports_would_block_then_accepts() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(83).unwrap();
        assert_eq!(listener.try_accept().unwrap_err(), NetError::WouldBlock);
        let _client = net.connect(83).unwrap();
        assert_eq!(listener.backlog(), 1);
        assert!(listener.try_accept().is_ok());
    }

    #[test]
    fn unlisten_refuses_new_connections() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(84).unwrap();
        net.unlisten(84);
        assert!(listener.is_closed());
        assert_eq!(net.connect(84).unwrap_err(), NetError::ConnectionRefused);
        assert_eq!(listener.try_accept().unwrap_err(), NetError::ListenerClosed);
    }

    #[test]
    fn accept_timeout_expires() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(85).unwrap();
        let err = listener
            .accept_timeout(Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, NetError::TimedOut);
    }

    #[test]
    fn accept_wakes_on_concurrent_connect() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(86).unwrap();
        let net2 = Arc::clone(&net);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            net2.connect(86).unwrap()
        });
        let server = listener.accept_timeout(Duration::from_secs(2)).unwrap();
        let client = handle.join().unwrap();
        client.write(b"x").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(
            server
                .read_timeout(&mut buf, Duration::from_secs(1))
                .unwrap(),
            1
        );
    }

    #[test]
    fn rated_connection_is_slower() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(87).unwrap();
        // 8 Mbit/s with small burst: pushing 256 kB should take > 100 ms.
        let options = ConnectOptions {
            link_bits_per_sec: Some(8_000_000),
            capacity: Some(1 << 20),
        };
        let client = net.connect_with(87, &options).unwrap();
        let _server = listener.accept().unwrap();
        let start = Instant::now();
        client.write_all(&vec![0u8; 256 * 1024]).unwrap();
        assert!(start.elapsed() > Duration::from_millis(100));
    }

    #[test]
    fn registered_listener_gets_accept_events() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(88).unwrap();
        let poller = Poller::new();
        listener.register(&poller, Token(1));
        assert!(poller.wait(Duration::from_millis(5)).is_empty());
        let _client = net.connect(88).unwrap();
        let events = poller.wait(Duration::from_secs(1));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(1));
        assert!(events[0].readiness.readable);
        assert!(listener.try_accept().is_ok());
    }

    #[test]
    fn register_with_existing_backlog_is_level_triggered() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(89).unwrap();
        let _client = net.connect(89).unwrap();
        let poller = Poller::new();
        listener.register(&poller, Token(2));
        assert_eq!(poller.wait(Duration::from_millis(50)).len(), 1);
    }

    #[test]
    fn close_and_unlisten_wake_the_registration() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(90).unwrap();
        let poller = Poller::new();
        listener.register(&poller, Token(3));
        net.unlisten(90);
        let events = poller.wait(Duration::from_secs(1));
        assert_eq!(events.len(), 1);
        assert!(events[0].readiness.closed);
    }

    #[test]
    fn deregistered_listener_stays_silent() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(91).unwrap();
        let poller = Poller::new();
        listener.register(&poller, Token(4));
        listener.deregister(&poller);
        let _client = net.connect(91).unwrap();
        assert!(poller.wait(Duration::from_millis(20)).is_empty());
    }

    #[test]
    fn sever_port_closes_accepted_and_pending_connections() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(92).unwrap();
        let accepted_client = net.connect(92).unwrap();
        let accepted_server = listener.accept().unwrap();
        let pending_client = net.connect(92).unwrap();
        assert_eq!(net.established_count(92), 2);

        let severed = net.sever_port(92);
        assert_eq!(severed, 2);
        assert_eq!(net.established_count(92), 0);
        // Both clients observe the crash as EOF, not a hang.
        let mut buf = [0u8; 8];
        assert_eq!(
            accepted_client
                .read_timeout(&mut buf, Duration::from_secs(1))
                .unwrap_err(),
            NetError::Closed
        );
        assert_eq!(
            pending_client
                .read_timeout(&mut buf, Duration::from_secs(1))
                .unwrap_err(),
            NetError::Closed
        );
        // The severed server side fails writes from now on.
        assert!(accepted_server.write(b"late").is_err());
        // The listener itself stays bound: new connects still succeed.
        assert!(net.connect(92).is_ok());
    }

    #[test]
    fn sever_port_wakes_the_peers_parked_registration() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(93).unwrap();
        let client = net.connect(93).unwrap();
        let _server = listener.accept().unwrap();
        // The surviving peer — the side a load balancer parks on while it
        // waits for a backend response — is registered and idle.
        let poller = Poller::new();
        client.register(&poller, Token(9), crate::poller::Interest::READABLE);
        assert!(poller.wait(Duration::from_millis(10)).is_empty());
        // Severing the server side must wake that parked registration with
        // closed readiness instead of leaving it parked forever.
        net.sever_port(93);
        let events = poller.wait(Duration::from_secs(1));
        assert_eq!(events.len(), 1);
        assert!(events[0].readiness.closed);
    }

    #[test]
    fn sever_port_on_unknown_port_is_a_noop() {
        let net = SimNetwork::new(StackModel::Free);
        assert_eq!(net.sever_port(9999), 0);
        assert_eq!(net.established_count(9999), 0);
    }

    #[test]
    fn established_count_prunes_closed_connections() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(94).unwrap();
        let client = net.connect(94).unwrap();
        let server = listener.accept().unwrap();
        assert_eq!(net.established_count(94), 1);
        server.close();
        drop(client);
        assert_eq!(net.established_count(94), 0);
        // The next connect prunes the dead entry from the registry.
        let _second = net.connect(94).unwrap();
        assert_eq!(net.established_count(94), 1);
    }

    #[test]
    fn listener_count_tracks_bind_and_unbind() {
        let net = SimNetwork::new(StackModel::Free);
        let _a = net.listen(1).unwrap();
        let _b = net.listen(2).unwrap();
        assert_eq!(net.listener_count(), 2);
        net.unlisten(1);
        assert_eq!(net.listener_count(), 1);
    }
}
