//! Connection endpoints: the in-memory pipes and the transport-neutral
//! [`Endpoint`] wrapper.
//!
//! A [`SimEndpoint`] is one end of a simulated TCP connection: a pair of
//! bounded byte pipes with socket-like semantics (non-blocking reads and
//! writes returning [`NetError::WouldBlock`], EOF after the peer closes,
//! blocking variants for client workloads). Every call is charged the cost
//! of the configured [`StackCosts`] so that middlebox throughput reacts to
//! the transport stack exactly as in the paper's evaluation.
//!
//! [`Endpoint`] is what the rest of the workspace sees: one connection end
//! that is either a simulated pipe pair or a real OS socket
//! ([`crate::tcp::TcpConn`]), with identical non-blocking and readiness
//! semantics. Dispatchers, task graphs and services never know which
//! transport they are on — the tentpole property of the OS transport
//! subsystem (DESIGN.md §10).

/// Upper bound on a coalesced ingest read ([`Endpoint::read_into`] sizes
/// its tail request to the source's pending backlog, up to this cap).
const MAX_COALESCED_READ: usize = 256 * 1024;

use crate::costs::StackCosts;
use crate::error::NetError;
use crate::poller::{Interest, Poller, Readiness, Token, WakerSlot};
use crate::ratelimit::TokenBucket;
use crate::stats::NetStats;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default capacity of each direction's buffer (mirrors a typical socket
/// send/receive buffer).
pub const DEFAULT_PIPE_CAPACITY: usize = 256 * 1024;

/// One direction of a connection.
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
    capacity: usize,
}

struct PipeState {
    buf: VecDeque<u8>,
    writer_closed: bool,
    reader_closed: bool,
    /// Registered by the pipe's *reader*; woken when bytes arrive or the
    /// writer closes (EOF becomes observable).
    read_waker: Option<WakerSlot>,
    /// Registered by the pipe's *writer*; woken when the reader drains
    /// bytes (space frees up) or closes (writes fail fast).
    write_waker: Option<WakerSlot>,
}

impl PipeState {
    fn wake_reader(&self, readiness: Readiness) {
        if let Some(waker) = &self.read_waker {
            waker.wake(readiness);
        }
    }

    fn wake_writer(&self, readiness: Readiness) {
        if let Some(waker) = &self.write_waker {
            waker.wake(readiness);
        }
    }
}

impl Pipe {
    fn new(capacity: usize) -> Self {
        Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::with_capacity(capacity.min(16 * 1024)),
                writer_closed: false,
                reader_closed: false,
                read_waker: None,
                write_waker: None,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }
}

struct Shared {
    /// Direction written by side A, read by side B.
    a_to_b: Pipe,
    /// Direction written by side B, read by side A.
    b_to_a: Pipe,
    /// The connection id, for diagnostics.
    id: u64,
}

/// Which side of the connection an [`Endpoint`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The side that initiated the connection.
    Client,
    /// The side returned by `accept`.
    Server,
}

/// One end of a simulated connection.
///
/// Endpoints are cheap to clone; clones share the same underlying pipes (as
/// file descriptors shared between threads would).
#[derive(Clone)]
pub struct SimEndpoint {
    shared: Arc<Shared>,
    side: Side,
    costs: StackCosts,
    stats: Option<Arc<NetStats>>,
    rate: Option<Arc<TokenBucket>>,
    closed: Arc<AtomicBool>,
}

impl std::fmt::Debug for SimEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimEndpoint")
            .field("id", &self.shared.id)
            .field("side", &self.side)
            .finish()
    }
}

/// Creates a connected pair of endpoints (client, server).
///
/// This is the substrate-internal constructor; most code obtains endpoints
/// through [`crate::SimNetwork::connect`] and [`crate::SimListener::accept`].
pub fn pair(
    id: u64,
    costs: StackCosts,
    stats: Option<Arc<NetStats>>,
    capacity: usize,
) -> (Endpoint, Endpoint) {
    let shared = Arc::new(Shared {
        a_to_b: Pipe::new(capacity),
        b_to_a: Pipe::new(capacity),
        id,
    });
    let client = SimEndpoint {
        shared: Arc::clone(&shared),
        side: Side::Client,
        costs,
        stats: stats.clone(),
        rate: None,
        closed: Arc::new(AtomicBool::new(false)),
    };
    let server = SimEndpoint {
        shared,
        side: Side::Server,
        costs,
        stats,
        rate: None,
        closed: Arc::new(AtomicBool::new(false)),
    };
    (Endpoint::from_sim(client), Endpoint::from_sim(server))
}

impl SimEndpoint {
    /// The connection identifier (shared by both endpoints).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Which side of the connection this endpoint is.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Attaches a token-bucket rate limit to this endpoint's writes,
    /// modelling the bandwidth of the link behind it.
    pub fn set_write_rate(&mut self, bucket: Arc<TokenBucket>) {
        self.rate = Some(bucket);
    }

    fn out_pipe(&self) -> &Pipe {
        match self.side {
            Side::Client => &self.shared.a_to_b,
            Side::Server => &self.shared.b_to_a,
        }
    }

    fn in_pipe(&self) -> &Pipe {
        match self.side {
            Side::Client => &self.shared.b_to_a,
            Side::Server => &self.shared.a_to_b,
        }
    }

    /// Writes as much of `data` as fits, without blocking.
    ///
    /// Returns the number of bytes accepted, [`NetError::WouldBlock`] if the
    /// peer's buffer (or this link's rate budget) is currently full, or
    /// [`NetError::Closed`] if the peer has closed the connection.
    ///
    /// The stack cost is charged only for the bytes actually moved, so a
    /// full (or rate-limited) connection does not pay per-attempt stack
    /// cost — matching the read side, where a polled-but-empty connection
    /// pays nothing.
    pub fn write(&self, data: &[u8]) -> Result<usize, NetError> {
        if data.is_empty() {
            return Ok(0);
        }
        // A closed endpoint writes nothing, even to a live peer reader —
        // so a severed ("crashed") connection can never emit a late
        // response the peer would mistake for a healthy one.
        if self.is_closed() {
            return Err(NetError::Closed);
        }
        let pipe = self.out_pipe();
        let mut state = pipe.state.lock();
        if state.reader_closed {
            return Err(NetError::Closed);
        }
        let space = pipe.capacity.saturating_sub(state.buf.len());
        if space == 0 {
            return Err(NetError::WouldBlock);
        }
        // Acquire link budget only for bytes that can actually be buffered,
        // so a full pipe or short write never leaks tokens.
        let wanted = data.len().min(space);
        let n = match &self.rate {
            Some(bucket) => bucket.try_acquire(wanted),
            None => wanted,
        };
        if n == 0 {
            return Err(NetError::WouldBlock);
        }
        state.buf.extend(&data[..n]);
        // Record the send while the pipe lock is still held: the reader
        // can only drain these bytes after taking the lock, so its
        // `record_read` strictly follows this `record_write` and the
        // substrate-wide `bytes_received <= bytes_sent` conservation law
        // holds at every instant, not just at quiescence.
        if let Some(stats) = &self.stats {
            stats.record_write(n);
        }
        state.wake_reader(Readiness::readable());
        pipe.cond.notify_all();
        drop(state);
        StackCosts::charge(self.costs.io_cost(true, n));
        Ok(n)
    }

    /// Writes all of `data`, blocking until the peer has buffer space and
    /// the link budget allows it.
    ///
    /// Used by client workloads; the middlebox runtime only uses the
    /// non-blocking [`Endpoint::write`]. Buffer-full waits block on the
    /// pipe's wakeup (the reader notifies on every drain), and rate-limited
    /// waits sleep for the token bucket's actual refill interval
    /// ([`TokenBucket::next_available`]) — there are no fixed backoff
    /// sleeps on this path.
    pub fn write_all(&self, mut data: &[u8]) -> Result<(), NetError> {
        while !data.is_empty() {
            match self.write(data) {
                Ok(n) => data = &data[n..],
                Err(NetError::WouldBlock) => {
                    let pipe = self.out_pipe();
                    let mut state = pipe.state.lock();
                    if state.reader_closed {
                        return Err(NetError::Closed);
                    }
                    if pipe.capacity.saturating_sub(state.buf.len()) == 0 {
                        // Wait for the reader to drain some bytes. The
                        // timeout is only a defensive heartbeat; the
                        // reader's notify is what normally ends the wait.
                        pipe.cond.wait_for(&mut state, Duration::from_millis(100));
                    } else if let Some(bucket) = &self.rate {
                        // Rate limited: sleep until the bucket has refilled
                        // enough tokens for (a chunk of) the remaining data.
                        drop(state);
                        let wait = bucket.next_available(data.len());
                        if !wait.is_zero() {
                            std::thread::sleep(wait.min(Duration::from_millis(5)));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Writes the segments in `bufs` back to back — the simulated
    /// counterpart of the OS transport's one-syscall `writev`. The sim
    /// pipe has no scatter/gather, so segments are applied in order until
    /// the pipe stops taking bytes, but the accounting contract is
    /// identical (one vectored-write event, per-segment counts), so the
    /// writev-path conservation laws hold on simulated runs too.
    pub fn write_vectored(&self, bufs: &[&[u8]]) -> Result<usize, NetError> {
        let mut total = 0usize;
        let mut segments = 0usize;
        for buf in bufs {
            if buf.is_empty() {
                continue;
            }
            match self.write(buf) {
                Ok(n) => {
                    total += n;
                    segments += 1;
                    if n < buf.len() {
                        break; // Pipe (or rate budget) filled mid-segment.
                    }
                }
                // Progress already made: report it; the next call will
                // surface the error, exactly as the kernel's writev does.
                Err(_) if total > 0 => break,
                Err(e) => return Err(e),
            }
        }
        if total > 0 {
            if let Some(stats) = &self.stats {
                stats.record_vectored(segments);
            }
        }
        Ok(total)
    }

    /// Reads available bytes into `buf` without blocking.
    ///
    /// Returns the number of bytes read, [`NetError::WouldBlock`] when no
    /// data is buffered, or [`NetError::Closed`] once the peer has closed and
    /// all data has been drained (EOF).
    ///
    /// The stack cost is charged only for bytes actually moved: a
    /// polled-but-empty connection pays nothing, so idle connections do not
    /// distort the Kernel/Mtcp cost model.
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        let pipe = self.in_pipe();
        let mut state = pipe.state.lock();
        if state.buf.is_empty() {
            return if state.writer_closed {
                Err(NetError::Closed)
            } else {
                Err(NetError::WouldBlock)
            };
        }
        let was_full = state.buf.len() >= pipe.capacity;
        let n = buf.len().min(state.buf.len());
        for (i, b) in state.buf.drain(..n).enumerate() {
            buf[i] = b;
        }
        // Edge-triggered writable wake: a registered writer is only ever
        // blocked on a *full* pipe (anything less and its write would have
        // made progress), so only the full→space transition posts an event
        // — draining an uncontended pipe stays silent instead of waking the
        // peer's output task on every read.
        if was_full {
            state.wake_writer(Readiness::writable());
        }
        pipe.cond.notify_all();
        drop(state);
        StackCosts::charge(self.costs.io_cost(false, n));
        if let Some(stats) = &self.stats {
            stats.record_read(n);
        }
        Ok(n)
    }

    /// Reads at least one byte, blocking up to `timeout`.
    pub fn read_timeout(&self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.read(buf) {
                Err(NetError::WouldBlock) => {
                    let pipe = self.in_pipe();
                    let mut state = pipe.state.lock();
                    if !state.buf.is_empty() || state.writer_closed {
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::TimedOut);
                    }
                    pipe.cond.wait_for(&mut state, deadline - now);
                    if state.buf.is_empty() && !state.writer_closed && Instant::now() >= deadline {
                        return Err(NetError::TimedOut);
                    }
                }
                other => return other,
            }
        }
    }

    /// Returns `true` if a read would make progress (data buffered or EOF
    /// observable).
    ///
    /// Each call is counted in [`NetStats::readable_polls`]: the counter is
    /// how tests prove the event-driven dispatcher performs zero endpoint
    /// scans while a service is idle.
    pub fn readable(&self) -> bool {
        if let Some(stats) = &self.stats {
            stats.record_readable_poll();
        }
        let state = self.in_pipe().state.lock();
        !state.buf.is_empty() || state.writer_closed
    }

    /// Returns `true` if a write could make progress (buffer space
    /// available, or the write would fail fast because the peer closed).
    ///
    /// `true` while an endpoint's token bucket is empty: rate limiting is a
    /// time-based stall, not a peer-readiness one, so a blocked writer uses
    /// this to tell "retry on a clock" apart from "park until the peer
    /// drains". Counted in [`NetStats::writable_polls`].
    pub fn writable(&self) -> bool {
        if let Some(stats) = &self.stats {
            stats.record_writable_poll();
        }
        let pipe = self.out_pipe();
        let state = pipe.state.lock();
        state.reader_closed || state.buf.len() < pipe.capacity
    }

    /// Registers this endpoint with `poller`: state transitions matching
    /// `interest` will enqueue `token` until [`Endpoint::deregister`].
    ///
    /// Registration is level-triggered at the moment of the call (if the
    /// endpoint is already readable/writable an event is queued
    /// immediately) and edge-triggered afterwards, so a consumer that
    /// drains to `WouldBlock` after each event never misses a wakeup.
    ///
    /// Each direction holds one waker slot per pipe end: registering again
    /// (from any clone of this endpoint) replaces the previous
    /// registration.
    pub fn register(&self, poller: &Poller, token: Token, interest: Interest) {
        if interest.is_readable() {
            let pipe = self.in_pipe();
            let mut state = pipe.state.lock();
            state.read_waker = Some(poller.slot(token));
            if !state.buf.is_empty() || state.writer_closed {
                let mut readiness = Readiness::readable();
                readiness.closed = state.writer_closed;
                state.wake_reader(readiness);
            }
        }
        if interest.is_writable() {
            let pipe = self.out_pipe();
            let mut state = pipe.state.lock();
            state.write_waker = Some(poller.slot(token));
            if pipe.capacity > state.buf.len() || state.reader_closed {
                let mut readiness = Readiness::writable();
                readiness.closed = state.reader_closed;
                state.wake_writer(readiness);
            }
        }
    }

    /// Removes any registration this endpoint holds in `poller` (both
    /// directions). Registrations in other pollers are left in place;
    /// already-queued events are not retracted (consumers must tolerate
    /// events for deregistered tokens).
    pub fn deregister(&self, poller: &Poller) {
        self.deregister_interest(poller, Interest::BOTH);
    }

    /// Removes only the `interest` direction(s) of this endpoint's
    /// registration in `poller`. Used by dispatchers that register one
    /// connection twice — readable for the input task, writable for the
    /// output task — so retiring one watcher leaves the other live.
    pub fn deregister_interest(&self, poller: &Poller, interest: Interest) {
        if interest.is_readable() {
            let mut state = self.in_pipe().state.lock();
            if state
                .read_waker
                .as_ref()
                .is_some_and(|w| w.belongs_to(poller))
            {
                state.read_waker = None;
            }
        }
        if interest.is_writable() {
            let mut state = self.out_pipe().state.lock();
            if state
                .write_waker
                .as_ref()
                .is_some_and(|w| w.belongs_to(poller))
            {
                state.write_waker = None;
            }
        }
    }

    /// Number of bytes currently buffered for reading.
    pub fn pending(&self) -> usize {
        self.in_pipe().state.lock().buf.len()
    }

    /// Returns `true` if the peer has closed its sending side.
    pub fn peer_closed(&self) -> bool {
        self.in_pipe().state.lock().writer_closed
    }

    /// Returns `true` if this endpoint has been closed locally.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Closes this endpoint: the peer will observe EOF after draining.
    ///
    /// Closing is idempotent; only the first call pays the teardown cost.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        StackCosts::charge(self.costs.teardown);
        {
            let pipe = self.out_pipe();
            let mut state = pipe.state.lock();
            state.writer_closed = true;
            // The peer's reader can now observe EOF (after draining).
            state.wake_reader(Readiness::readable().with_closed());
            pipe.cond.notify_all();
        }
        {
            let pipe = self.in_pipe();
            let mut state = pipe.state.lock();
            state.reader_closed = true;
            // The peer's writer will fail fast from now on.
            state.wake_writer(Readiness::writable().with_closed());
            pipe.cond.notify_all();
        }
        if let Some(stats) = &self.stats {
            stats.record_close();
        }
    }
}

// ---------------------------------------------------------------------------
// The transport-neutral endpoint
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum EndpointKind {
    Sim(SimEndpoint),
    Tcp(crate::tcp::TcpConn),
}

/// One end of a connection, over either transport.
///
/// This is the only connection type the runtime, services and workloads
/// handle: a simulated in-memory pipe pair ([`SimEndpoint`]) or a real OS
/// socket ([`crate::tcp::TcpConn`]) behind one non-blocking API with
/// identical readiness semantics ([`Endpoint::register`] feeds the same
/// [`Poller`]s). Cheap to clone; clones share the underlying connection.
#[derive(Clone)]
pub struct Endpoint {
    kind: EndpointKind,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            EndpointKind::Sim(sim) => sim.fmt(f),
            EndpointKind::Tcp(tcp) => tcp.fmt(f),
        }
    }
}

/// Delegates one wrapper method to whichever transport is inside: shared
/// by [`Endpoint`] (over `EndpointKind`) and [`crate::Listener`] (over its
/// listener kind enum). Both wrapper structs keep the enum in a `kind`
/// field.
macro_rules! dispatch {
    ($kind:ident, $self:expr, $inner:ident => $body:expr) => {
        match &$self.kind {
            $kind::Sim($inner) => $body,
            $kind::Tcp($inner) => $body,
        }
    };
}
pub(crate) use dispatch;

impl Endpoint {
    pub(crate) fn from_sim(sim: SimEndpoint) -> Self {
        Endpoint {
            kind: EndpointKind::Sim(sim),
        }
    }

    pub(crate) fn from_tcp(tcp: crate::tcp::TcpConn) -> Self {
        Endpoint {
            kind: EndpointKind::Tcp(tcp),
        }
    }

    /// `true` when this endpoint is a real OS socket.
    pub fn is_os(&self) -> bool {
        matches!(self.kind, EndpointKind::Tcp(_))
    }

    /// A short transport label for diagnostics and bench output.
    pub fn transport(&self) -> &'static str {
        match self.kind {
            EndpointKind::Sim(_) => "sim",
            EndpointKind::Tcp(_) => "tcp",
        }
    }

    /// The connection identifier (shared by both simulated endpoints;
    /// unique per socket for the OS transport).
    pub fn id(&self) -> u64 {
        dispatch!(EndpointKind, self, ep => ep.id())
    }

    /// Which side of the connection this endpoint is.
    pub fn side(&self) -> Side {
        dispatch!(EndpointKind, self, ep => ep.side())
    }

    /// Attaches a token-bucket rate limit to this endpoint's writes,
    /// modelling the bandwidth of the link behind it.
    pub fn set_write_rate(&mut self, bucket: Arc<TokenBucket>) {
        match &mut self.kind {
            EndpointKind::Sim(sim) => sim.set_write_rate(bucket),
            EndpointKind::Tcp(tcp) => tcp.set_write_rate(bucket),
        }
    }

    /// Writes as much of `data` as fits, without blocking. See
    /// [`SimEndpoint::write`] for the error contract (identical on both
    /// transports).
    pub fn write(&self, data: &[u8]) -> Result<usize, NetError> {
        dispatch!(EndpointKind, self, ep => ep.write(data))
    }

    /// Writes the segments in `bufs` in one call — `writev(2)` on the OS
    /// transport (header+body leave in a single syscall, no staging
    /// concatenation), sequential segment writes with identical accounting
    /// on the sim transport. Returns the total bytes accepted, which may
    /// be a prefix ending mid-segment.
    pub fn write_vectored(&self, bufs: &[&[u8]]) -> Result<usize, NetError> {
        dispatch!(EndpointKind, self, ep => ep.write_vectored(bufs))
    }

    /// Writes all of `data`, blocking until buffer space and link budget
    /// allow. Client-workload helper; the middlebox runtime only uses the
    /// non-blocking [`Endpoint::write`].
    pub fn write_all(&self, data: &[u8]) -> Result<(), NetError> {
        dispatch!(EndpointKind, self, ep => ep.write_all(data))
    }

    /// Reads available bytes into `buf` without blocking. See
    /// [`SimEndpoint::read`] for the error contract.
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        dispatch!(EndpointKind, self, ep => ep.read(buf))
    }

    /// Reads available bytes directly into a [`SharedBuf`] without
    /// blocking — the zero-copy ingest entry point.
    ///
    /// The socket fills the buffer's writable tail in place; a parsed
    /// message then binds to the buffer's allocation via
    /// [`SharedBuf::view`] without any intermediate copy. If making room
    /// required carrying live bytes to a new chunk (a partial message
    /// pinned by earlier messages still alive downstream), the carry is
    /// recorded in [`NetStats::ingest_copies`] — zero on the fast path.
    ///
    /// [`SharedBuf`]: crate::SharedBuf
    /// [`SharedBuf::view`]: crate::SharedBuf::view
    pub fn read_into(&self, buf: &mut crate::SharedBuf) -> Result<usize, NetError> {
        let min = buf.read_size();
        let pending = self.pending();
        // When filling means switching chunks (views of the current chunk
        // are still alive downstream, or the tail is out of space), probe
        // the connection first: a read that would report `WouldBlock`
        // anyway must not pay a chunk allocation — input tasks probe after
        // every drained batch.
        if !buf.can_fill_in_place(min) && pending == 0 && !self.peer_closed() {
            return Err(NetError::WouldBlock);
        }
        // Coalesce per wakeup: when the source already holds more than one
        // default read's worth, size the tail request to drain it in fewer
        // calls (capped, so one hot connection cannot demand an unbounded
        // chunk). Never at the price of a carry: if the larger request
        // would force a chunk switch that the default size avoids, keep
        // the default — the zero-copy law outranks the syscall count.
        let mut want = min.max(pending.min(MAX_COALESCED_READ));
        if want > min && buf.can_fill_in_place(min) && !buf.can_fill_in_place(want) {
            want = min;
        }
        let (tail, carried) = buf.tail_mut(want);
        if carried > 0 {
            if let Some(stats) = self.stats() {
                stats.record_ingest_copy(carried);
            }
        }
        let n = self.read(tail)?;
        buf.commit(n);
        Ok(n)
    }

    /// The stats block this endpoint records into, if any.
    fn stats(&self) -> Option<&Arc<NetStats>> {
        match &self.kind {
            EndpointKind::Sim(sim) => sim.stats.as_ref(),
            EndpointKind::Tcp(tcp) => Some(tcp.stats()),
        }
    }

    /// Reads at least one byte, blocking up to `timeout`.
    pub fn read_timeout(&self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        dispatch!(EndpointKind, self, ep => ep.read_timeout(buf, timeout))
    }

    /// Reads exactly `buf.len()` bytes, blocking up to `timeout` overall.
    pub fn read_exact_timeout(&self, buf: &mut [u8], timeout: Duration) -> Result<(), NetError> {
        let deadline = Instant::now() + timeout;
        let mut filled = 0usize;
        while filled < buf.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::TimedOut);
            }
            let n = self.read_timeout(&mut buf[filled..], deadline - now)?;
            filled += n;
        }
        Ok(())
    }

    /// Returns `true` if a read would make progress (data buffered or EOF
    /// observable). Counted in [`NetStats::readable_polls`] on both
    /// transports — the counter behind the idle-scan assertions.
    pub fn readable(&self) -> bool {
        dispatch!(EndpointKind, self, ep => ep.readable())
    }

    /// Returns `true` if a write could make progress (buffer space, or a
    /// fail-fast close). Still `true` while a rate limiter is the only
    /// obstacle — see [`SimEndpoint::writable`]. Counted in
    /// [`NetStats::writable_polls`] on both transports.
    pub fn writable(&self) -> bool {
        dispatch!(EndpointKind, self, ep => ep.writable())
    }

    /// Registers this endpoint with `poller`: transitions matching
    /// `interest` enqueue `token` until [`Endpoint::deregister`].
    /// Level-triggered at the moment of the call, edge-triggered
    /// afterwards, on both transports.
    pub fn register(&self, poller: &Poller, token: Token, interest: Interest) {
        dispatch!(EndpointKind, self, ep => ep.register(poller, token, interest))
    }

    /// Removes any registration this endpoint holds in `poller`.
    pub fn deregister(&self, poller: &Poller) {
        dispatch!(EndpointKind, self, ep => ep.deregister(poller))
    }

    /// Removes only the `interest` direction(s) of this endpoint's
    /// registration in `poller`, leaving the other direction's watcher (a
    /// different task on the same connection) in place.
    pub fn deregister_interest(&self, poller: &Poller, interest: Interest) {
        dispatch!(EndpointKind, self, ep => ep.deregister_interest(poller, interest))
    }

    /// Number of bytes currently buffered for reading.
    pub fn pending(&self) -> usize {
        dispatch!(EndpointKind, self, ep => ep.pending())
    }

    /// Returns `true` if the peer has closed its sending side.
    pub fn peer_closed(&self) -> bool {
        dispatch!(EndpointKind, self, ep => ep.peer_closed())
    }

    /// Returns `true` if this endpoint has been closed locally.
    pub fn is_closed(&self) -> bool {
        dispatch!(EndpointKind, self, ep => ep.is_closed())
    }

    /// Closes this endpoint: the peer will observe EOF after draining.
    /// Idempotent on both transports.
    pub fn close(&self) {
        dispatch!(EndpointKind, self, ep => ep.close())
    }

    /// Closes this endpoint because its byte stream failed to parse,
    /// recording the termination in [`NetStats::malformed_closes`] on top
    /// of the regular close accounting. The plain close happens first so a
    /// concurrent snapshot never sees the malformed count ahead of the
    /// close count.
    pub fn close_malformed(&self) {
        let first = !self.is_closed();
        self.close();
        if first {
            if let Some(stats) = self.stats() {
                stats.record_malformed_close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pair() -> (Endpoint, Endpoint) {
        pair(1, StackCosts::free(), None, DEFAULT_PIPE_CAPACITY)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (client, server) = test_pair();
        assert_eq!(client.write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn both_directions_are_independent() {
        let (client, server) = test_pair();
        client.write(b"ping").unwrap();
        server.write(b"pong").unwrap();
        let mut buf = [0u8; 4];
        server.read(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        client.read(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn empty_read_would_block() {
        let (_client, server) = test_pair();
        let mut buf = [0u8; 4];
        assert_eq!(server.read(&mut buf), Err(NetError::WouldBlock));
        assert!(!server.readable());
    }

    #[test]
    fn close_gives_eof_after_drain() {
        let (client, server) = test_pair();
        client.write(b"bye").unwrap();
        client.close();
        assert!(server.readable());
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 3);
        assert_eq!(server.read(&mut buf), Err(NetError::Closed));
        assert!(server.peer_closed());
    }

    #[test]
    fn write_to_closed_peer_fails() {
        let (client, server) = test_pair();
        server.close();
        assert_eq!(client.write(b"data"), Err(NetError::Closed));
    }

    #[test]
    fn buffer_capacity_causes_would_block() {
        let (client, _server) = pair(2, StackCosts::free(), None, 8);
        assert_eq!(client.write(b"0123456789").unwrap(), 8);
        assert_eq!(client.write(b"x"), Err(NetError::WouldBlock));
    }

    #[test]
    fn write_all_blocks_until_reader_drains() {
        let (client, server) = pair(3, StackCosts::free(), None, 16);
        let reader = std::thread::spawn(move || {
            let mut total = 0usize;
            let mut buf = [0u8; 8];
            while total < 64 {
                match server.read(&mut buf) {
                    Ok(n) => total += n,
                    Err(NetError::WouldBlock) => std::thread::sleep(Duration::from_micros(100)),
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            total
        });
        client.write_all(&[7u8; 64]).unwrap();
        assert_eq!(reader.join().unwrap(), 64);
    }

    #[test]
    fn read_timeout_expires() {
        let (_client, server) = test_pair();
        let mut buf = [0u8; 4];
        let err = server
            .read_timeout(&mut buf, Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, NetError::TimedOut);
    }

    #[test]
    fn read_exact_collects_across_writes() {
        let (client, server) = test_pair();
        let writer = std::thread::spawn(move || {
            client.write(b"abc").unwrap();
            std::thread::sleep(Duration::from_millis(5));
            client.write(b"def").unwrap();
        });
        let mut buf = [0u8; 6];
        server
            .read_exact_timeout(&mut buf, Duration::from_secs(1))
            .unwrap();
        assert_eq!(&buf, b"abcdef");
        writer.join().unwrap();
    }

    #[test]
    fn rate_limited_write_reports_would_block() {
        let (mut client, _server) = test_pair();
        client.set_write_rate(Arc::new(TokenBucket::new_bits_per_sec(8_000, 4)));
        assert_eq!(client.write(b"abcd").unwrap(), 4);
        assert_eq!(client.write(b"efgh"), Err(NetError::WouldBlock));
    }

    #[test]
    fn stats_are_recorded() {
        let stats = NetStats::new_shared();
        let (client, server) = pair(9, StackCosts::free(), Some(Arc::clone(&stats)), 1024);
        client.write(b"12345").unwrap();
        let mut buf = [0u8; 8];
        server.read(&mut buf).unwrap();
        client.close();
        server.close();
        let snap = stats.snapshot();
        assert_eq!(snap.bytes_sent, 5);
        assert_eq!(snap.bytes_received, 5);
        assert_eq!(snap.connections_closed, 2);
    }

    #[test]
    fn close_is_idempotent() {
        let (client, _server) = test_pair();
        client.close();
        client.close();
        assert!(client.is_closed());
    }

    mod readiness {
        use super::*;
        use crate::poller::{Interest, Poller, Token};

        #[test]
        fn write_after_register_queues_a_readable_event() {
            let (client, server) = test_pair();
            let poller = Poller::new();
            server.register(&poller, Token(1), Interest::READABLE);
            assert!(poller.wait(Duration::from_millis(5)).is_empty());
            client.write(b"data").unwrap();
            let events = poller.wait(Duration::from_secs(1));
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, Token(1));
            assert!(events[0].readiness.readable);
        }

        #[test]
        fn register_is_level_triggered_for_buffered_data() {
            let (client, server) = test_pair();
            client.write(b"early").unwrap();
            let poller = Poller::new();
            server.register(&poller, Token(2), Interest::READABLE);
            let events = poller.wait(Duration::from_millis(50));
            assert_eq!(events.len(), 1, "pre-buffered data must queue an event");
            assert!(events[0].readiness.readable);
        }

        #[test]
        fn register_after_close_still_reports_eof() {
            let (client, server) = test_pair();
            client.close();
            let poller = Poller::new();
            server.register(&poller, Token(3), Interest::READABLE);
            let events = poller.wait(Duration::from_millis(50));
            assert_eq!(events.len(), 1);
            assert!(events[0].readiness.readable);
            assert!(events[0].readiness.closed);
        }

        #[test]
        fn close_wakes_a_registered_reader() {
            let (client, server) = test_pair();
            let poller = Poller::new();
            server.register(&poller, Token(4), Interest::READABLE);
            client.close();
            let events = poller.wait(Duration::from_secs(1));
            assert_eq!(events.len(), 1);
            assert!(events[0].readiness.closed);
        }

        #[test]
        fn deregister_stops_future_events() {
            let (client, server) = test_pair();
            let poller = Poller::new();
            server.register(&poller, Token(5), Interest::READABLE);
            server.deregister(&poller);
            client.write(b"unseen").unwrap();
            assert!(poller.wait(Duration::from_millis(20)).is_empty());
        }

        #[test]
        fn deregister_only_clears_the_matching_poller() {
            let (client, server) = test_pair();
            let kept = Poller::new();
            let other = Poller::new();
            server.register(&kept, Token(6), Interest::READABLE);
            // Deregistering a poller the endpoint is not registered with
            // must leave the live registration alone.
            server.deregister(&other);
            client.write(b"still seen").unwrap();
            assert_eq!(kept.wait(Duration::from_secs(1)).len(), 1);
        }

        /// Registration handoff between pollers (the sharded dispatcher's
        /// accept → place → register path, and any future graph
        /// migration): while a writer races at full speed, the consumer
        /// repeatedly re-registers the endpoint with a *fresh* poller and
        /// drains through it. Because `register` installs the new waker
        /// and performs the level-triggered check under the pipe lock, no
        /// byte and no EOF can fall between the old and the new
        /// registration — the stress fails by timing out if one does.
        #[test]
        fn handoff_between_pollers_loses_no_wakeups() {
            const TOTAL: usize = 256 * 1024;
            // A small pipe forces many buffer-full / drained transitions,
            // maximising the chance of a transition racing the handoff.
            let (client, server) = pair(77, StackCosts::free(), None, 2 * 1024);
            let writer = std::thread::spawn(move || {
                let chunk = [0xa5u8; 613];
                let mut sent = 0usize;
                while sent < TOTAL {
                    let n = (TOTAL - sent).min(chunk.len());
                    client.write_all(&chunk[..n]).expect("peer stays open");
                    sent += n;
                }
                client.close();
            });

            let mut received = 0usize;
            let mut eof = false;
            let mut buf = [0u8; 1500];
            let mut handoffs = 0u32;
            let deadline = Instant::now() + Duration::from_secs(30);
            while !eof {
                assert!(
                    Instant::now() < deadline,
                    "lost wakeup across poller handoff: {received} of {TOTAL} \
                     bytes after {handoffs} handoffs"
                );
                // Hand the registration to a brand-new poller mid-stream.
                let poller = Poller::new();
                server.register(&poller, Token(u64::from(handoffs)), Interest::READABLE);
                handoffs += 1;
                // Consume a few events through this poller, then hand off
                // again while the writer keeps racing.
                for _ in 0..4 {
                    if eof {
                        break;
                    }
                    for _event in poller.wait(Duration::from_millis(100)) {
                        loop {
                            match server.read(&mut buf) {
                                Ok(n) => received += n,
                                Err(NetError::WouldBlock) => break,
                                Err(NetError::Closed) => {
                                    eof = true;
                                    break;
                                }
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                    }
                }
            }
            writer.join().unwrap();
            assert_eq!(received, TOTAL);
            assert!(handoffs >= 2, "the stream must survive several handoffs");
        }

        #[test]
        fn writable_interest_wakes_on_drain() {
            let (client, server) = pair(10, StackCosts::free(), None, 8);
            // Fill the pipe completely.
            assert_eq!(client.write(b"01234567").unwrap(), 8);
            let poller = Poller::new();
            client.register(&poller, Token(7), Interest::WRITABLE);
            // Full pipe: no writable event at registration time.
            assert!(poller.wait(Duration::from_millis(5)).is_empty());
            let mut buf = [0u8; 4];
            server.read(&mut buf).unwrap();
            let events = poller.wait(Duration::from_secs(1));
            assert_eq!(events.len(), 1);
            assert!(events[0].readiness.writable);
        }

        /// The edge-triggered half of the writable contract: draining a
        /// pipe that was never full is not a transition, so a registered
        /// writer is not woken — output tasks only pay wakeups when they
        /// were actually blocked.
        #[test]
        fn drain_of_an_unfilled_pipe_stays_silent_for_writable_interest() {
            let (client, server) = pair(12, StackCosts::free(), None, 64);
            let poller = Poller::new();
            client.register(&poller, Token(8), Interest::WRITABLE);
            // Consume the level-triggered event from registration.
            assert_eq!(poller.wait(Duration::from_millis(50)).len(), 1);
            client.write(b"abc").unwrap();
            let mut buf = [0u8; 8];
            server.read(&mut buf).unwrap();
            assert!(
                poller.wait(Duration::from_millis(20)).is_empty(),
                "draining a non-full pipe must not wake the writer"
            );
        }

        /// `read_into` fills the shared buffer in place and never records
        /// an ingest copy on the drain-between-fills path, even while a
        /// parsed message pins the previous chunk.
        #[test]
        fn read_into_fills_the_shared_buffer_without_copies() {
            let stats = NetStats::new_shared();
            let (client, server) = pair(13, StackCosts::free(), Some(Arc::clone(&stats)), 1024);
            let mut buf = crate::SharedBuf::new(64);
            assert_eq!(server.read_into(&mut buf), Err(NetError::WouldBlock));
            client.write(b"payload").unwrap();
            assert_eq!(server.read_into(&mut buf).unwrap(), 7);
            assert_eq!(&buf.view()[..], b"payload");
            let pinned = buf.view();
            buf.consume(7);
            // A second roundtrip while a view pins the old chunk: the fill
            // switches chunks, but carries zero live bytes — no copy.
            client.write(b"more").unwrap();
            assert_eq!(server.read_into(&mut buf).unwrap(), 4);
            assert_eq!(&buf.view()[..], b"more");
            assert_eq!(&pinned[..], b"payload");
            let snap = stats.snapshot();
            assert_eq!(snap.ingest_copies, 0, "no carries on this path");
        }

        #[test]
        fn readable_polls_are_counted() {
            let stats = NetStats::new_shared();
            let (_client, server) = pair(11, StackCosts::free(), Some(Arc::clone(&stats)), 64);
            assert!(!server.readable());
            assert!(!server.readable());
            assert_eq!(stats.snapshot().readable_polls, 2);
        }
    }
}
