//! In-memory full-duplex connections.
//!
//! An [`Endpoint`] is one end of a simulated TCP connection: a pair of
//! bounded byte pipes with socket-like semantics (non-blocking reads and
//! writes returning [`NetError::WouldBlock`], EOF after the peer closes,
//! blocking variants for client workloads). Every call is charged the cost
//! of the configured [`StackCosts`] so that middlebox throughput reacts to
//! the transport stack exactly as in the paper's evaluation.

use crate::costs::StackCosts;
use crate::error::NetError;
use crate::ratelimit::TokenBucket;
use crate::stats::NetStats;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default capacity of each direction's buffer (mirrors a typical socket
/// send/receive buffer).
pub const DEFAULT_PIPE_CAPACITY: usize = 256 * 1024;

/// One direction of a connection.
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
    capacity: usize,
}

struct PipeState {
    buf: VecDeque<u8>,
    writer_closed: bool,
    reader_closed: bool,
}

impl Pipe {
    fn new(capacity: usize) -> Self {
        Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::with_capacity(capacity.min(16 * 1024)),
                writer_closed: false,
                reader_closed: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }
}

struct Shared {
    /// Direction written by side A, read by side B.
    a_to_b: Pipe,
    /// Direction written by side B, read by side A.
    b_to_a: Pipe,
    /// The connection id, for diagnostics.
    id: u64,
}

/// Which side of the connection an [`Endpoint`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The side that initiated the connection.
    Client,
    /// The side returned by `accept`.
    Server,
}

/// One end of a simulated connection.
///
/// Endpoints are cheap to clone; clones share the same underlying pipes (as
/// file descriptors shared between threads would).
#[derive(Clone)]
pub struct Endpoint {
    shared: Arc<Shared>,
    side: Side,
    costs: StackCosts,
    stats: Option<Arc<NetStats>>,
    rate: Option<Arc<TokenBucket>>,
    closed: Arc<AtomicBool>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.shared.id)
            .field("side", &self.side)
            .finish()
    }
}

/// Creates a connected pair of endpoints (client, server).
///
/// This is the substrate-internal constructor; most code obtains endpoints
/// through [`crate::SimNetwork::connect`] and [`crate::SimListener::accept`].
pub fn pair(
    id: u64,
    costs: StackCosts,
    stats: Option<Arc<NetStats>>,
    capacity: usize,
) -> (Endpoint, Endpoint) {
    let shared = Arc::new(Shared {
        a_to_b: Pipe::new(capacity),
        b_to_a: Pipe::new(capacity),
        id,
    });
    let client = Endpoint {
        shared: Arc::clone(&shared),
        side: Side::Client,
        costs,
        stats: stats.clone(),
        rate: None,
        closed: Arc::new(AtomicBool::new(false)),
    };
    let server = Endpoint {
        shared,
        side: Side::Server,
        costs,
        stats,
        rate: None,
        closed: Arc::new(AtomicBool::new(false)),
    };
    (client, server)
}

impl Endpoint {
    /// The connection identifier (shared by both endpoints).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Which side of the connection this endpoint is.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Attaches a token-bucket rate limit to this endpoint's writes,
    /// modelling the bandwidth of the link behind it.
    pub fn set_write_rate(&mut self, bucket: Arc<TokenBucket>) {
        self.rate = Some(bucket);
    }

    fn out_pipe(&self) -> &Pipe {
        match self.side {
            Side::Client => &self.shared.a_to_b,
            Side::Server => &self.shared.b_to_a,
        }
    }

    fn in_pipe(&self) -> &Pipe {
        match self.side {
            Side::Client => &self.shared.b_to_a,
            Side::Server => &self.shared.a_to_b,
        }
    }

    /// Writes as much of `data` as fits, without blocking.
    ///
    /// Returns the number of bytes accepted, [`NetError::WouldBlock`] if the
    /// peer's buffer (or this link's rate budget) is currently full, or
    /// [`NetError::Closed`] if the peer has closed the connection.
    pub fn write(&self, data: &[u8]) -> Result<usize, NetError> {
        StackCosts::charge(self.costs.io_cost(true, data.len()));
        if data.is_empty() {
            return Ok(0);
        }
        let allowed = match &self.rate {
            Some(bucket) => bucket.try_acquire(data.len()),
            None => data.len(),
        };
        if allowed == 0 {
            return Err(NetError::WouldBlock);
        }
        let pipe = self.out_pipe();
        let mut state = pipe.state.lock();
        if state.reader_closed {
            return Err(NetError::Closed);
        }
        let space = pipe.capacity.saturating_sub(state.buf.len());
        if space == 0 {
            return Err(NetError::WouldBlock);
        }
        let n = allowed.min(space);
        state.buf.extend(&data[..n]);
        pipe.cond.notify_all();
        drop(state);
        if let Some(stats) = &self.stats {
            stats.record_write(n);
        }
        Ok(n)
    }

    /// Writes all of `data`, blocking (with short sleeps) until the peer has
    /// buffer space and the link budget allows it.
    ///
    /// Used by client workloads; the middlebox runtime only uses the
    /// non-blocking [`Endpoint::write`].
    pub fn write_all(&self, mut data: &[u8]) -> Result<(), NetError> {
        while !data.is_empty() {
            match self.write(data) {
                Ok(n) => data = &data[n..],
                Err(NetError::WouldBlock) => {
                    let pipe = self.out_pipe();
                    let mut state = pipe.state.lock();
                    if state.reader_closed {
                        return Err(NetError::Closed);
                    }
                    if pipe.capacity.saturating_sub(state.buf.len()) == 0 {
                        // Wait for the reader to drain some bytes.
                        pipe.cond.wait_for(&mut state, Duration::from_millis(1));
                    } else {
                        // Rate limited: back off briefly.
                        drop(state);
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Reads available bytes into `buf` without blocking.
    ///
    /// Returns the number of bytes read, [`NetError::WouldBlock`] when no
    /// data is buffered, or [`NetError::Closed`] once the peer has closed and
    /// all data has been drained (EOF).
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        StackCosts::charge(self.costs.io_cost(false, buf.len().min(1024)));
        let pipe = self.in_pipe();
        let mut state = pipe.state.lock();
        if state.buf.is_empty() {
            return if state.writer_closed {
                Err(NetError::Closed)
            } else {
                Err(NetError::WouldBlock)
            };
        }
        let n = buf.len().min(state.buf.len());
        for (i, b) in state.buf.drain(..n).enumerate() {
            buf[i] = b;
        }
        pipe.cond.notify_all();
        drop(state);
        if let Some(stats) = &self.stats {
            stats.record_read(n);
        }
        Ok(n)
    }

    /// Reads at least one byte, blocking up to `timeout`.
    pub fn read_timeout(&self, buf: &mut [u8], timeout: Duration) -> Result<usize, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.read(buf) {
                Err(NetError::WouldBlock) => {
                    let pipe = self.in_pipe();
                    let mut state = pipe.state.lock();
                    if !state.buf.is_empty() || state.writer_closed {
                        continue;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::TimedOut);
                    }
                    pipe.cond.wait_for(&mut state, deadline - now);
                    if state.buf.is_empty() && !state.writer_closed && Instant::now() >= deadline {
                        return Err(NetError::TimedOut);
                    }
                }
                other => return other,
            }
        }
    }

    /// Reads exactly `buf.len()` bytes, blocking up to `timeout` overall.
    pub fn read_exact_timeout(&self, buf: &mut [u8], timeout: Duration) -> Result<(), NetError> {
        let deadline = Instant::now() + timeout;
        let mut filled = 0usize;
        while filled < buf.len() {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::TimedOut);
            }
            let n = self.read_timeout(&mut buf[filled..], deadline - now)?;
            filled += n;
        }
        Ok(())
    }

    /// Returns `true` if a read would make progress (data buffered or EOF
    /// observable).
    pub fn readable(&self) -> bool {
        let state = self.in_pipe().state.lock();
        !state.buf.is_empty() || state.writer_closed
    }

    /// Number of bytes currently buffered for reading.
    pub fn pending(&self) -> usize {
        self.in_pipe().state.lock().buf.len()
    }

    /// Returns `true` if the peer has closed its sending side.
    pub fn peer_closed(&self) -> bool {
        self.in_pipe().state.lock().writer_closed
    }

    /// Returns `true` if this endpoint has been closed locally.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Closes this endpoint: the peer will observe EOF after draining.
    ///
    /// Closing is idempotent; only the first call pays the teardown cost.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        StackCosts::charge(self.costs.teardown);
        {
            let pipe = self.out_pipe();
            let mut state = pipe.state.lock();
            state.writer_closed = true;
            pipe.cond.notify_all();
        }
        {
            let pipe = self.in_pipe();
            let mut state = pipe.state.lock();
            state.reader_closed = true;
            pipe.cond.notify_all();
        }
        if let Some(stats) = &self.stats {
            stats.record_close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pair() -> (Endpoint, Endpoint) {
        pair(1, StackCosts::free(), None, DEFAULT_PIPE_CAPACITY)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (client, server) = test_pair();
        assert_eq!(client.write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn both_directions_are_independent() {
        let (client, server) = test_pair();
        client.write(b"ping").unwrap();
        server.write(b"pong").unwrap();
        let mut buf = [0u8; 4];
        server.read(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        client.read(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn empty_read_would_block() {
        let (_client, server) = test_pair();
        let mut buf = [0u8; 4];
        assert_eq!(server.read(&mut buf), Err(NetError::WouldBlock));
        assert!(!server.readable());
    }

    #[test]
    fn close_gives_eof_after_drain() {
        let (client, server) = test_pair();
        client.write(b"bye").unwrap();
        client.close();
        assert!(server.readable());
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 3);
        assert_eq!(server.read(&mut buf), Err(NetError::Closed));
        assert!(server.peer_closed());
    }

    #[test]
    fn write_to_closed_peer_fails() {
        let (client, server) = test_pair();
        server.close();
        assert_eq!(client.write(b"data"), Err(NetError::Closed));
    }

    #[test]
    fn buffer_capacity_causes_would_block() {
        let (client, _server) = pair(2, StackCosts::free(), None, 8);
        assert_eq!(client.write(b"0123456789").unwrap(), 8);
        assert_eq!(client.write(b"x"), Err(NetError::WouldBlock));
    }

    #[test]
    fn write_all_blocks_until_reader_drains() {
        let (client, server) = pair(3, StackCosts::free(), None, 16);
        let reader = std::thread::spawn(move || {
            let mut total = 0usize;
            let mut buf = [0u8; 8];
            while total < 64 {
                match server.read(&mut buf) {
                    Ok(n) => total += n,
                    Err(NetError::WouldBlock) => std::thread::sleep(Duration::from_micros(100)),
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            total
        });
        client.write_all(&[7u8; 64]).unwrap();
        assert_eq!(reader.join().unwrap(), 64);
    }

    #[test]
    fn read_timeout_expires() {
        let (_client, server) = test_pair();
        let mut buf = [0u8; 4];
        let err = server
            .read_timeout(&mut buf, Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, NetError::TimedOut);
    }

    #[test]
    fn read_exact_collects_across_writes() {
        let (client, server) = test_pair();
        let writer = std::thread::spawn(move || {
            client.write(b"abc").unwrap();
            std::thread::sleep(Duration::from_millis(5));
            client.write(b"def").unwrap();
        });
        let mut buf = [0u8; 6];
        server
            .read_exact_timeout(&mut buf, Duration::from_secs(1))
            .unwrap();
        assert_eq!(&buf, b"abcdef");
        writer.join().unwrap();
    }

    #[test]
    fn rate_limited_write_reports_would_block() {
        let (mut client, _server) = test_pair();
        client.set_write_rate(Arc::new(TokenBucket::new_bits_per_sec(8_000, 4)));
        assert_eq!(client.write(b"abcd").unwrap(), 4);
        assert_eq!(client.write(b"efgh"), Err(NetError::WouldBlock));
    }

    #[test]
    fn stats_are_recorded() {
        let stats = NetStats::new_shared();
        let (client, server) = pair(9, StackCosts::free(), Some(Arc::clone(&stats)), 1024);
        client.write(b"12345").unwrap();
        let mut buf = [0u8; 8];
        server.read(&mut buf).unwrap();
        client.close();
        server.close();
        let snap = stats.snapshot();
        assert_eq!(snap.bytes_sent, 5);
        assert_eq!(snap.bytes_received, 5);
        assert_eq!(snap.connections_closed, 2);
    }

    #[test]
    fn close_is_idempotent() {
        let (client, _server) = test_pair();
        client.close();
        client.close();
        assert!(client.is_closed());
    }
}
