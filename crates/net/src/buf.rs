//! The shared ingest buffer behind the zero-copy data plane.
//!
//! [`SharedBuf`] is the accumulation buffer an input task reads its
//! connection into. It is backed by a refcounted allocation (`Arc<[u8]>`),
//! so a parsed message can bind its raw wire bytes — and every byte field —
//! to the buffer *without copying* ([`SharedBuf::view`] +
//! `WireCodec::parse_bytes`): completing a message costs an `Arc` bump, not
//! a `memcpy`, and an incomplete message costs nothing at all.
//!
//! Ownership rules (DESIGN.md §11):
//!
//! * The buffer's owner (the input task) is the only writer. It may write
//!   into the unfilled tail **only while the allocation is unique** —
//!   `Arc::get_mut` is the guard. The moment a parsed message is alive
//!   downstream (holding a [`Bytes`] slice of the chunk), the allocation is
//!   shared and the next fill switches to a *fresh* chunk instead of
//!   scribbling over bytes a consumer still references.
//! * Switching chunks only copies the *unconsumed* live bytes (the prefix
//!   of a message that has not finished arriving). On a stream that drains
//!   completely between fills — the common case for framed request/response
//!   traffic — nothing is ever carried, and the whole path from socket to
//!   service logic is copy-free.
//! * Every carried byte is reported to the caller, and
//!   [`crate::NetStats::ingest_copies`] counts the events
//!   ([`crate::Endpoint::read_into`] does the accounting), so "the
//!   shared-buffer path performs zero ingest copies" is a counter the test
//!   suite asserts, not a comment.

use bytes::Bytes;
use std::sync::Arc;

/// Default size of one read from the connection into the buffer (matches
/// the runtime's historical read chunk).
pub const INGEST_READ_SIZE: usize = 16 * 1024;

/// How many read-sized regions one chunk holds. A larger chunk amortises
/// the fresh-allocation cost paid while earlier messages from the same
/// chunk are still alive downstream.
const READS_PER_CHUNK: usize = 4;

/// A refcounted accumulation buffer that hands out zero-copy views.
///
/// See the module docs for the ownership rules. Not `Clone` on purpose:
/// exactly one owner writes; consumers only ever hold [`Bytes`] views.
pub struct SharedBuf {
    chunk: Arc<[u8]>,
    /// First live (unconsumed) byte.
    start: usize,
    /// One past the last filled byte.
    end: usize,
    /// Minimum tail space [`SharedBuf::tail_mut`] guarantees by default,
    /// and the unit the chunk size is derived from.
    read_size: usize,
}

impl std::fmt::Debug for SharedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBuf")
            .field("live", &self.len())
            .field("chunk", &self.chunk.len())
            .field("shared", &(Arc::strong_count(&self.chunk) > 1))
            .finish()
    }
}

impl Default for SharedBuf {
    fn default() -> Self {
        SharedBuf::new(INGEST_READ_SIZE)
    }
}

impl SharedBuf {
    /// Creates a buffer whose fills are sized for `read_size`-byte reads.
    pub fn new(read_size: usize) -> Self {
        let read_size = read_size.max(1);
        SharedBuf {
            chunk: Arc::from(vec![0u8; read_size * READS_PER_CHUNK]),
            start: 0,
            end: 0,
            read_size,
        }
    }

    /// Number of live (filled but unconsumed) bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no live bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The read size this buffer was created with.
    pub fn read_size(&self) -> usize {
        self.read_size
    }

    /// `true` while downstream consumers hold views into the current chunk
    /// (diagnostics; the write path uses `Arc::get_mut` as the real guard).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.chunk) > 1
    }

    /// A zero-copy view of the live bytes, sharing the chunk's allocation.
    ///
    /// Holding the view (or any slice of it, e.g. a parsed message's raw
    /// bytes) marks the chunk shared: the owner will fill a fresh chunk
    /// rather than overwrite it.
    pub fn view(&self) -> Bytes {
        Bytes::from_arc_slice(Arc::clone(&self.chunk), self.start, self.end)
    }

    /// Marks the first `n` live bytes consumed (a parser accepted them).
    ///
    /// # Panics
    /// Panics if `n` exceeds the live length.
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume({n}) beyond live bytes");
        self.start += n;
        if self.start == self.end {
            // Empty: future fills may restart at offset zero. Whether that
            // reuses the chunk in place is decided by `tail_mut`'s
            // uniqueness check, so outstanding views are never clobbered.
            self.start = 0;
            self.end = 0;
        }
    }

    /// `true` when at least `min` tail bytes can be filled without
    /// switching chunks: the allocation is unique (no views pin it) and
    /// has the space. When this is `false`, making room costs a fresh
    /// allocation (or a carry), so callers probing an idle source should
    /// check for data first — [`crate::Endpoint::read_into`] does.
    pub fn can_fill_in_place(&mut self, min: usize) -> bool {
        self.chunk.len() - self.end >= min.max(1) && Arc::get_mut(&mut self.chunk).is_some()
    }

    /// Returns a writable tail of at least `min` bytes, plus the number of
    /// live bytes that had to be *copied* to make that possible (0 on the
    /// fast paths).
    ///
    /// Fast paths: the chunk is unique and has tail space (fill in place),
    /// or there are no live bytes (a fresh chunk costs an allocation but no
    /// copy). Live bytes are carried — copied — only when a partial message
    /// is buffered *and* the chunk is shared or out of space.
    pub fn tail_mut(&mut self, min: usize) -> (&mut [u8], usize) {
        let min = min.max(1);
        let live = self.len();
        let has_space = self.chunk.len() - self.end >= min;
        let unique = Arc::get_mut(&mut self.chunk).is_some();
        if !(unique && has_space) {
            let size = (self.read_size * READS_PER_CHUNK).max(live + min);
            if unique && live + min <= self.chunk.len() {
                // Unique but out of tail space: compact in place.
                let (start, end) = (self.start, self.end);
                let data = Arc::get_mut(&mut self.chunk).expect("checked unique");
                data.copy_within(start..end, 0);
            } else {
                let mut fresh = vec![0u8; size];
                fresh[..live].copy_from_slice(&self.chunk[self.start..self.end]);
                self.chunk = Arc::from(fresh);
            }
            self.start = 0;
            self.end = live;
            let tail = &mut Arc::get_mut(&mut self.chunk).expect("fresh or unique")[live..];
            return (tail, live);
        }
        let end = self.end;
        let tail = &mut Arc::get_mut(&mut self.chunk).expect("checked unique")[end..];
        (tail, 0)
    }

    /// Marks `n` bytes of the tail returned by [`SharedBuf::tail_mut`] as
    /// filled.
    ///
    /// # Panics
    /// Panics if `n` exceeds the writable tail (an over-commit would
    /// corrupt the buffer's indices and surface as a confusing bounds
    /// failure far from the faulty caller).
    pub fn commit(&mut self, n: usize) {
        assert!(self.end + n <= self.chunk.len(), "commit({n}) beyond chunk");
        self.end += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(buf: &mut SharedBuf, data: &[u8]) -> usize {
        let (tail, carried) = buf.tail_mut(data.len());
        tail[..data.len()].copy_from_slice(data);
        buf.commit(data.len());
        carried
    }

    #[test]
    fn fill_view_consume_roundtrip() {
        let mut buf = SharedBuf::new(64);
        assert!(buf.is_empty());
        assert_eq!(fill(&mut buf, b"hello world"), 0);
        assert_eq!(buf.len(), 11);
        let view = buf.view();
        assert_eq!(&view[..], b"hello world");
        buf.consume(5);
        assert_eq!(&buf.view()[..], b" world");
        buf.consume(6);
        assert!(buf.is_empty());
    }

    #[test]
    fn views_pin_the_chunk_and_fills_switch_to_a_fresh_one() {
        let mut buf = SharedBuf::new(64);
        fill(&mut buf, b"first");
        let message = buf.view();
        buf.consume(5);
        assert!(buf.is_shared());
        // The next fill must not touch the pinned chunk — and because the
        // buffer is empty, switching chunks carries zero bytes.
        let carried = fill(&mut buf, b"second");
        assert_eq!(carried, 0, "empty buffer switches chunks copy-free");
        assert_eq!(&message[..], b"first", "outstanding view is untouched");
        assert_eq!(&buf.view()[..], b"second");
    }

    #[test]
    fn unique_chunk_is_reused_in_place() {
        let mut buf = SharedBuf::new(8);
        for round in 0..100 {
            let data = [round as u8; 8];
            let carried = fill(&mut buf, &data);
            assert_eq!(carried, 0, "round {round}");
            assert_eq!(&buf.view()[..], &data[..]);
            buf.consume(8);
        }
    }

    #[test]
    fn partial_message_is_carried_only_when_pinned() {
        let mut buf = SharedBuf::new(8);
        fill(&mut buf, b"whole+pa");
        let whole = buf.view().slice(..6);
        buf.consume(6); // "whole+" parsed; "pa" is a partial message.
        assert_eq!(buf.len(), 2);
        // The chunk is pinned by `whole` and the partial bytes must
        // survive, so this fill pays a 2-byte carry.
        let carried = fill(&mut buf, b"rtial");
        assert_eq!(carried, 2);
        assert_eq!(&buf.view()[..], b"partial");
        assert_eq!(&whole[..], b"whole+");
    }

    #[test]
    fn unique_compaction_reclaims_consumed_space() {
        let mut buf = SharedBuf::new(4); // 16-byte chunk
        fill(&mut buf, b"0123456789abcd");
        buf.consume(12);
        // Unique (no views alive) but out of tail space: the 2 live bytes
        // compact to the front of the same-size chunk.
        let carried = fill(&mut buf, b"efghij");
        assert_eq!(carried, 2);
        assert_eq!(&buf.view()[..], b"cdefghij");
    }

    #[test]
    fn oversized_requests_grow_the_chunk() {
        let mut buf = SharedBuf::new(4);
        let big = vec![7u8; 100];
        assert_eq!(fill(&mut buf, &big), 0);
        assert_eq!(buf.len(), 100);
        assert_eq!(&buf.view()[..], &big[..]);
    }

    #[test]
    #[should_panic(expected = "beyond live bytes")]
    fn consume_past_live_panics() {
        let mut buf = SharedBuf::new(8);
        fill(&mut buf, b"ab");
        buf.consume(3);
    }
}
