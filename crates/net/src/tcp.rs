//! The OS socket transport: real TCP behind the readiness layer.
//!
//! Everything above the substrate — dispatchers, task graphs, placement —
//! speaks [`crate::Endpoint`] + [`crate::Poller`]. This module provides the
//! second implementation of that contract (DESIGN.md §10): nonblocking
//! `std::net` sockets whose kernel readiness transitions are translated
//! into [`Poller::post`] calls by a process-wide [`OsReactor`] thread
//! blocked in `epoll_wait` (bound via the direct syscall bindings in
//! `crate::sys`; no new crates, per the offline shim policy of §7).
//!
//! The readiness contract matches the simulated sources exactly:
//!
//! * **Edge-triggered afterwards.** Sockets are registered `EPOLLET`; the
//!   kernel reports transitions, and consumers drain to
//!   [`NetError::WouldBlock`] — the invariant `crate::poller` already
//!   imposes.
//! * **Level-triggered at registration.** [`TcpConn::register`] and
//!   [`TcpListener::register`] post a synthetic event for the current
//!   state, so data (or a backlog) that arrived before the registration —
//!   including during a cross-shard handoff that moves the registration to
//!   a different poller — is never missed. Spurious events are allowed by
//!   the poller contract, so the synthetic post is unconditional.
//! * **One registration per socket.** Registering again (from any clone)
//!   replaces the previous registration, as with [`crate::Endpoint`] pipes.
//!
//! Cost and stats accounting mirrors the simulated substrate: every
//! operation is charged its [`StackCosts`] entry and recorded in the
//! stack's [`NetStats`] (a real-socket platform normally runs
//! [`StackModel::Free`], because the real kernel already charges real
//! costs — the model hook exists for calibration experiments).

use crate::costs::{StackCosts, StackModel};
use crate::error::NetError;
use crate::poller::{Interest, Poller, Readiness, Token, WakerSlot};
use crate::ratelimit::TokenBucket;
use crate::stats::NetStats;
use crate::sys;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Maps an `std::io` error onto the substrate error vocabulary.
fn map_io(err: std::io::Error) -> NetError {
    use std::io::ErrorKind;
    match err.kind() {
        ErrorKind::WouldBlock => NetError::WouldBlock,
        ErrorKind::BrokenPipe
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::NotConnected
        | ErrorKind::UnexpectedEof => NetError::Closed,
        ErrorKind::ConnectionRefused => NetError::ConnectionRefused,
        ErrorKind::AddrInUse => NetError::AddrInUse,
        ErrorKind::TimedOut => NetError::TimedOut,
        kind => NetError::Io(kind),
    }
}

// ---------------------------------------------------------------------------
// OsReactor
// ---------------------------------------------------------------------------

/// The wakers one socket's epoll registration fans out to: one slot per
/// direction, because a single connection may be watched by two different
/// tasks — the input task (readable) and the output task (writable) — each
/// under its own token, possibly in different pollers. Mirrors the
/// simulated pipes, which hold a `read_waker` and a `write_waker` per
/// direction.
#[derive(Default)]
struct FdSlots {
    read: Option<WakerSlot>,
    write: Option<WakerSlot>,
}

impl FdSlots {
    /// The epoll event mask the current slots ask for.
    fn epoll_bits(&self) -> u32 {
        let mut bits = sys::EPOLLET | sys::EPOLLRDHUP;
        if self.read.is_some() {
            bits |= sys::EPOLLIN;
        }
        if self.write.is_some() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn is_empty(&self) -> bool {
        self.read.is_none() && self.write.is_none()
    }
}

/// The process-wide epoll reactor.
///
/// One detached thread blocks in `epoll_wait` for every OS socket in the
/// process; each registration carries the destination poller(s), so events
/// fan out to whichever shard owns the socket — the per-shard reactors
/// multiplex simulated and OS sources without knowing the difference.
/// `epoll_ctl` is safe to call concurrently with `epoll_wait`, so
/// registration changes take effect immediately without waking the thread.
pub(crate) struct OsReactor {
    epfd: RawFd,
    registrations: Mutex<HashMap<RawFd, FdSlots>>,
}

impl OsReactor {
    /// The singleton reactor, spawned on first use.
    pub(crate) fn global() -> &'static OsReactor {
        static REACTOR: OnceLock<OsReactor> = OnceLock::new();
        REACTOR.get_or_init(|| {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            assert!(epfd >= 0, "epoll_create1 failed: errno {}", sys::errno());
            let reactor = OsReactor {
                epfd,
                registrations: Mutex::new(HashMap::new()),
            };
            std::thread::Builder::new()
                .name("flick-os-reactor".into())
                .spawn(move || OsReactor::global().run())
                .expect("spawning the OS reactor thread");
            reactor
        })
    }

    /// Translates kernel events into `Poller::post` calls, forever.
    fn run(&self) {
        const MAX_EVENTS: usize = 256;
        let mut events = [sys::epoll_event { events: 0, u64: 0 }; MAX_EVENTS];
        loop {
            let n = unsafe {
                sys::epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as sys::c_int, -1)
            };
            if n < 0 {
                if sys::errno() == sys::EINTR {
                    continue;
                }
                // The epoll fd itself failed; nothing sensible to do but
                // stop translating (the process is likely tearing down).
                return;
            }
            // Resolve slots under the registration lock, but wake outside
            // it: posting into per-shard pollers (lock + condvar notify)
            // while holding the process-wide map would serialize every
            // concurrent register/deregister behind event fan-out.
            let mut wakes: Vec<(WakerSlot, Readiness)> = Vec::with_capacity(n as usize);
            {
                let registrations = self.registrations.lock();
                for event in events.iter().take(n as usize) {
                    let fd = event.u64 as RawFd;
                    let Some(slots) = registrations.get(&fd) else {
                        continue; // Deregistered while the event was in flight.
                    };
                    let bits = event.events;
                    let closed = bits & (sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0;
                    // Fan out per direction: a close wakes both watchers (a
                    // parked writer must fail fast, a reader must observe
                    // EOF), ordinary transitions only their own side.
                    if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0
                    {
                        if let Some(slot) = &slots.read {
                            let mut readiness = Readiness::readable();
                            readiness.closed = closed;
                            wakes.push((slot.clone(), readiness));
                        }
                    }
                    if bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                        if let Some(slot) = &slots.write {
                            let mut readiness = Readiness::writable();
                            readiness.closed = closed;
                            wakes.push((slot.clone(), readiness));
                        }
                    }
                }
            }
            for (slot, readiness) in wakes {
                slot.wake(readiness);
            }
        }
    }

    /// Installs (or replaces) the registration for the direction(s) in
    /// `interest` of `fd`. Matching events will post `token` into `poller`
    /// until the direction is deregistered or [`OsReactor::forget`] runs.
    /// Each direction holds one slot: registering a direction again (from
    /// any clone) replaces it, while the other direction's slot — possibly
    /// a different task's token — is left alone.
    fn register(&self, fd: RawFd, poller: &Poller, token: Token, interest: Interest) {
        let mut registrations = self.registrations.lock();
        let op = if registrations.contains_key(&fd) {
            sys::EPOLL_CTL_MOD
        } else {
            sys::EPOLL_CTL_ADD
        };
        let slots = registrations.entry(fd).or_default();
        if interest.is_readable() {
            slots.read = Some(poller.slot(token));
        }
        if interest.is_writable() {
            slots.write = Some(poller.slot(token));
        }
        let mut event = sys::epoll_event {
            events: slots.epoll_bits(),
            u64: fd as u64,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) };
        // A failed registration (max_user_watches exhausted, ENOMEM) must
        // be loud: recording it anyway would deliver the synthetic
        // level-trigger event and then stall the connection forever — a
        // silent lost wakeup, the one failure mode this layer exists to
        // rule out.
        assert!(
            rc == 0,
            "epoll_ctl({op}) for fd {fd} failed: errno {}",
            sys::errno()
        );
    }

    /// Removes the direction(s) in `interest` of `fd`'s registration when
    /// they post into `poller`; drops the epoll entry once no direction is
    /// left.
    fn deregister(&self, fd: RawFd, poller: &Poller, interest: Interest) {
        let mut registrations = self.registrations.lock();
        let Some(slots) = registrations.get_mut(&fd) else {
            return;
        };
        if interest.is_readable() && slots.read.as_ref().is_some_and(|s| s.belongs_to(poller)) {
            slots.read = None;
        }
        if interest.is_writable() && slots.write.as_ref().is_some_and(|s| s.belongs_to(poller)) {
            slots.write = None;
        }
        if slots.is_empty() {
            registrations.remove(&fd);
            let mut event = sys::epoll_event { events: 0, u64: 0 };
            unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) };
        } else {
            let mut event = sys::epoll_event {
                events: slots.epoll_bits(),
                u64: fd as u64,
            };
            unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, &mut event) };
        }
    }

    /// Removes any registration for `fd` (socket teardown). The kernel
    /// drops the epoll entry itself when the descriptor closes; this keeps
    /// the slot table from retaining a stale waker into a dead poller.
    fn forget(&self, fd: RawFd) {
        if self.registrations.lock().remove(&fd).is_some() {
            let mut event = sys::epoll_event { events: 0, u64: 0 };
            unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) };
        }
    }
}

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

/// The OS-socket counterpart of [`crate::SimNetwork`]: owns the stats
/// block and the cost model shared by every socket it opens.
pub struct TcpStack {
    model: StackModel,
    costs: StackCosts,
    stats: Arc<NetStats>,
    next_conn_id: AtomicU64,
}

impl std::fmt::Debug for TcpStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStack")
            .field("model", &self.model)
            .finish()
    }
}

impl TcpStack {
    /// Creates a stack whose sockets are charged according to `model`.
    ///
    /// Real sockets already pay the real kernel's costs, so platforms
    /// normally pass [`StackModel::Free`]; the other models exist to
    /// layer the calibrated busy-wait on top for calibration runs.
    pub fn new(model: StackModel) -> Arc<Self> {
        Arc::new(TcpStack {
            model,
            costs: model.costs(),
            stats: NetStats::new_shared(),
            next_conn_id: AtomicU64::new(1),
        })
    }

    /// The stack model sockets of this stack are charged with.
    pub fn model(&self) -> StackModel {
        self.model
    }

    /// The stack-wide statistics counters (same vocabulary as
    /// [`crate::SimNetwork::stats`], so idle-scan assertions carry over).
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Binds a listening socket. `addr` is a standard socket address;
    /// `127.0.0.1:0` asks the OS for an ephemeral port (read it back with
    /// [`TcpListener::port`]).
    pub fn listen(self: &Arc<Self>, addr: &str) -> Result<TcpListener, NetError> {
        let listener = std::net::TcpListener::bind(addr).map_err(map_io)?;
        listener.set_nonblocking(true).map_err(map_io)?;
        let local_addr = listener.local_addr().map_err(map_io)?;
        Ok(TcpListener {
            inner: Arc::new(TcpListenerInner {
                socket: Mutex::new(Some(listener)),
                local_addr,
                closed: AtomicBool::new(false),
                stack: Arc::clone(self),
            }),
        })
    }

    /// Establishes a connection to `addr` and returns the client endpoint.
    pub fn connect(self: &Arc<Self>, addr: &str) -> Result<crate::Endpoint, NetError> {
        let addr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(map_io)?
            .next()
            .ok_or(NetError::ConnectionRefused)?;
        let stream = TcpStream::connect(addr).map_err(map_io)?;
        StackCosts::charge(self.costs.connect);
        self.stats.record_open();
        Ok(crate::Endpoint::from_tcp(
            self.wrap(stream, crate::conn::Side::Client)?,
        ))
    }

    /// Wraps an accepted/connected stream into a [`TcpConn`].
    fn wrap(
        self: &Arc<Self>,
        stream: TcpStream,
        side: crate::conn::Side,
    ) -> Result<TcpConn, NetError> {
        stream.set_nonblocking(true).map_err(map_io)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpConn {
            inner: Arc::new(TcpConnInner {
                stream,
                id: self.next_conn_id.fetch_add(1, Ordering::Relaxed),
                side,
                costs: self.costs,
                stats: Arc::clone(&self.stats),
                closed: AtomicBool::new(false),
            }),
            rate: None,
        })
    }
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

struct TcpListenerInner {
    /// `None` after [`TcpListener::close`]; dropping the socket releases
    /// the port and makes the kernel refuse new connections.
    socket: Mutex<Option<std::net::TcpListener>>,
    local_addr: SocketAddr,
    closed: AtomicBool,
    stack: Arc<TcpStack>,
}

/// A listening OS socket, API-compatible with [`crate::SimListener`].
#[derive(Clone)]
pub struct TcpListener {
    inner: Arc<TcpListenerInner>,
}

impl std::fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListener")
            .field("addr", &self.inner.local_addr)
            .finish()
    }
}

impl TcpListener {
    /// The port the listener is bound to (resolved, so a `:0` bind reports
    /// the ephemeral port the OS picked).
    pub fn port(&self) -> u16 {
        self.inner.local_addr.port()
    }

    /// The full local socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    fn raw_fd(&self) -> Option<RawFd> {
        self.inner.socket.lock().as_ref().map(|s| s.as_raw_fd())
    }

    /// Accepts a pending connection without blocking.
    pub fn try_accept(&self) -> Result<crate::Endpoint, NetError> {
        let socket = self.inner.socket.lock();
        let Some(listener) = socket.as_ref() else {
            return Err(NetError::ListenerClosed);
        };
        match listener.accept() {
            Ok((stream, _peer)) => {
                drop(socket);
                StackCosts::charge(self.inner.stack.costs.accept);
                self.inner.stack.stats.record_open();
                let conn = self.inner.stack.wrap(stream, crate::conn::Side::Server)?;
                Ok(crate::Endpoint::from_tcp(conn))
            }
            Err(e) => Err(map_io(e)),
        }
    }

    /// Accepts a pending connection, blocking up to `timeout` (client/test
    /// helper; dispatchers always use [`TcpListener::try_accept`]).
    pub fn accept_timeout(&self, timeout: Duration) -> Result<crate::Endpoint, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_accept() {
                Err(NetError::WouldBlock) => {
                    let Some(fd) = self.raw_fd() else {
                        return Err(NetError::ListenerClosed);
                    };
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::TimedOut);
                    }
                    sys::wait_ready(fd, sys::POLLIN, deadline - now);
                }
                other => return other,
            }
        }
    }

    /// Registers this listener with `poller`: every new pending connection
    /// enqueues `token` as a readable event. Level-triggered at the moment
    /// of the call via a synthetic post (spurious events are allowed).
    pub fn register(&self, poller: &Poller, token: Token) {
        if let Some(fd) = self.raw_fd() {
            OsReactor::global().register(fd, poller, token, Interest::READABLE);
            poller.post(token, Readiness::readable());
        } else {
            poller.post(token, Readiness::readable().with_closed());
        }
    }

    /// Removes this listener's registration in `poller`, if any.
    pub fn deregister(&self, poller: &Poller) {
        if let Some(fd) = self.raw_fd() {
            OsReactor::global().deregister(fd, poller, Interest::READABLE);
        }
    }

    /// Closes the listener: the port is released and pending/future
    /// accepts fail with [`NetError::ListenerClosed`].
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        let socket = self.inner.socket.lock().take();
        if let Some(socket) = socket {
            OsReactor::global().forget(socket.as_raw_fd());
        }
    }

    /// Returns `true` after the listener was closed.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

impl Drop for TcpListenerInner {
    fn drop(&mut self) {
        if let Some(socket) = self.socket.get_mut().take() {
            OsReactor::global().forget(socket.as_raw_fd());
        }
    }
}

// ---------------------------------------------------------------------------
// TcpConn
// ---------------------------------------------------------------------------

struct TcpConnInner {
    stream: TcpStream,
    id: u64,
    side: crate::conn::Side,
    costs: StackCosts,
    stats: Arc<NetStats>,
    closed: AtomicBool,
}

impl Drop for TcpConnInner {
    fn drop(&mut self) {
        OsReactor::global().forget(self.stream.as_raw_fd());
    }
}

/// One end of an OS TCP connection, implementing the same non-blocking +
/// readiness contract as the simulated [`crate::Endpoint`] pipes. Cheap to
/// clone; clones share the socket, as duplicated fd handles would.
#[derive(Clone)]
pub struct TcpConn {
    inner: Arc<TcpConnInner>,
    rate: Option<Arc<TokenBucket>>,
}

impl std::fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpConn")
            .field("id", &self.inner.id)
            .field("side", &self.inner.side)
            .finish()
    }
}

impl TcpConn {
    fn fd(&self) -> RawFd {
        self.inner.stream.as_raw_fd()
    }

    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    pub(crate) fn side(&self) -> crate::conn::Side {
        self.inner.side
    }

    pub(crate) fn set_write_rate(&mut self, bucket: Arc<TokenBucket>) {
        self.rate = Some(bucket);
    }

    pub(crate) fn write(&self, data: &[u8]) -> Result<usize, NetError> {
        if data.is_empty() {
            return Ok(0);
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        // The kernel's appetite is unknowable up front (unlike the sim
        // pipes, which check free space under the pipe lock), so acquire
        // link budget for the attempt and refund whatever the socket does
        // not take — a full send buffer must not burn tokens.
        let wanted = match &self.rate {
            Some(bucket) => bucket.try_acquire(data.len()),
            None => data.len(),
        };
        if wanted == 0 {
            return Err(NetError::WouldBlock);
        }
        let refund = |sent: usize| {
            if let Some(bucket) = &self.rate {
                if sent < wanted {
                    bucket.refund(wanted - sent);
                }
            }
        };
        loop {
            match (&self.inner.stream).write(&data[..wanted]) {
                Ok(0) => {
                    refund(0);
                    return Err(NetError::Closed);
                }
                Ok(n) => {
                    refund(n);
                    StackCosts::charge(self.inner.costs.io_cost(true, n));
                    self.inner.stats.record_write(n);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    refund(0);
                    return Err(map_io(e));
                }
            }
        }
    }

    pub(crate) fn write_all(&self, mut data: &[u8]) -> Result<(), NetError> {
        while !data.is_empty() {
            match self.write(data) {
                Ok(n) => data = &data[n..],
                Err(NetError::WouldBlock) => {
                    // Two distinct reasons to be blocked: an empty token
                    // bucket (sleep out the refill interval) or a full
                    // kernel send buffer (poll for POLLOUT). A rate-limited
                    // endpoint can hit the latter with a full bucket —
                    // `write` refunds tokens on EAGAIN — so a zero refill
                    // wait must still fall through to the POLLOUT wait, or
                    // this loop would spin hot until the peer drains.
                    let refill = self
                        .rate
                        .as_ref()
                        .map(|bucket| bucket.next_available(data.len()))
                        .unwrap_or(Duration::ZERO);
                    if refill.is_zero() {
                        sys::wait_ready(self.fd(), sys::POLLOUT, Duration::from_millis(100));
                    } else {
                        std::thread::sleep(refill.min(Duration::from_millis(5)));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    pub(crate) fn read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        loop {
            match (&self.inner.stream).read(buf) {
                Ok(0) if !buf.is_empty() => return Err(NetError::Closed),
                Ok(n) => {
                    StackCosts::charge(self.inner.costs.io_cost(false, n));
                    self.inner.stats.record_read(n);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(map_io(e)),
            }
        }
    }

    pub(crate) fn read_timeout(
        &self,
        buf: &mut [u8],
        timeout: Duration,
    ) -> Result<usize, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.read(buf) {
                Err(NetError::WouldBlock) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::TimedOut);
                    }
                    sys::wait_ready(self.fd(), sys::POLLIN, deadline - now);
                }
                other => return other,
            }
        }
    }

    /// Probes the socket without consuming data: `recv(MSG_PEEK)`.
    /// Returns `(readable, eof)`.
    fn peek(&self) -> (bool, bool) {
        let mut probe = 0u8;
        let rc = unsafe { sys::recv(self.fd(), &mut probe, 1, sys::MSG_PEEK | sys::MSG_DONTWAIT) };
        match rc {
            0 => (true, true), // EOF is observable: a read makes progress.
            n if n > 0 => (true, false),
            _ => {
                // A hard error (e.g. ECONNRESET) makes a read "progress"
                // (it fails fast) and means the peer is gone — matching
                // the sim transport, where a dead peer reports
                // `peer_closed`. Only EAGAIN means "nothing yet".
                let gone = sys::errno() != sys::EAGAIN;
                (gone, gone)
            }
        }
    }

    pub(crate) fn readable(&self) -> bool {
        self.inner.stats.record_readable_poll();
        self.peek().0
    }

    /// `true` if a write could make progress: kernel send-buffer space
    /// (`POLLOUT` with a zero timeout) or a fail-fast close. Matches the
    /// simulated pipes' contract — a rate limiter alone never makes this
    /// `false`.
    pub(crate) fn writable(&self) -> bool {
        self.inner.stats.record_writable_poll();
        if self.inner.closed.load(Ordering::Acquire) {
            return true;
        }
        sys::wait_ready(self.fd(), sys::POLLOUT, Duration::ZERO)
    }

    pub(crate) fn stats(&self) -> &Arc<NetStats> {
        &self.inner.stats
    }

    pub(crate) fn pending(&self) -> usize {
        let mut available: sys::c_int = 0;
        let rc = unsafe { sys::ioctl(self.fd(), sys::FIONREAD, &mut available) };
        if rc == 0 {
            available.max(0) as usize
        } else {
            0
        }
    }

    pub(crate) fn peer_closed(&self) -> bool {
        self.peek().1
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    pub(crate) fn register(&self, poller: &Poller, token: Token, interest: Interest) {
        OsReactor::global().register(self.fd(), poller, token, interest);
        // Level-triggered at registration: post the current state so bytes
        // that arrived before (or during) the registration — e.g. across a
        // cross-shard handoff — are observed. Writable interest is posted
        // unconditionally (a fresh socket is almost always writable, and
        // spurious events are allowed).
        let mut readiness = Readiness::default();
        if interest.is_readable() {
            readiness.readable = true;
        }
        if interest.is_writable() {
            readiness.writable = true;
        }
        poller.post(token, readiness);
    }

    pub(crate) fn deregister(&self, poller: &Poller) {
        self.deregister_interest(poller, Interest::BOTH);
    }

    pub(crate) fn deregister_interest(&self, poller: &Poller, interest: Interest) {
        OsReactor::global().deregister(self.fd(), poller, interest);
    }

    pub(crate) fn close(&self) {
        if self.inner.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        StackCosts::charge(self.inner.costs.teardown);
        OsReactor::global().forget(self.fd());
        let _ = self.inner.stream.shutdown(std::net::Shutdown::Both);
        self.inner.stats.record_close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endpoint;

    fn stack() -> Arc<TcpStack> {
        TcpStack::new(StackModel::Free)
    }

    fn local(port: u16) -> String {
        format!("127.0.0.1:{port}")
    }

    fn pair(stack: &Arc<TcpStack>) -> (TcpListener, Endpoint, Endpoint) {
        let listener = stack.listen("127.0.0.1:0").unwrap();
        let client = stack.connect(&local(listener.port())).unwrap();
        let server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        (listener, client, server)
    }

    #[test]
    fn connect_accept_roundtrip() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        client.write_all(b"over the wire").unwrap();
        let mut buf = [0u8; 32];
        let n = server
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf[..n], b"over the wire");
        assert_eq!(stack.stats().snapshot().connections_opened, 2);
    }

    #[test]
    fn empty_read_would_block_and_close_gives_eof() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf), Err(NetError::WouldBlock));
        client.write(b"bye").unwrap();
        client.close();
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match server.read(&mut buf) {
                Ok(n) => seen.extend_from_slice(&buf[..n]),
                Err(NetError::WouldBlock) => {
                    assert!(Instant::now() < deadline, "EOF never arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(NetError::Closed) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(seen, b"bye");
    }

    #[test]
    fn registered_conn_gets_readable_events() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        let poller = Poller::new();
        server.register(&poller, Token(1), Interest::READABLE);
        // Drain the synthetic level-trigger event first.
        let _ = poller.wait(Duration::from_millis(50));
        client.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let events = poller.wait(Duration::from_millis(100));
            if events
                .iter()
                .any(|e| e.token == Token(1) && e.readiness.readable)
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "no readable event for real bytes"
            );
        }
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn listener_registration_posts_accept_events() {
        let stack = stack();
        let listener = stack.listen("127.0.0.1:0").unwrap();
        let poller = Poller::new();
        listener.register(&poller, Token(9));
        let _ = poller.wait(Duration::from_millis(50)); // synthetic level-trigger
        let _client = stack.connect(&local(listener.port())).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let events = poller.wait(Duration::from_millis(100));
            if events.iter().any(|e| e.token == Token(9)) {
                break;
            }
            assert!(Instant::now() < deadline, "no accept event");
        }
        assert!(listener.try_accept().is_ok());
    }

    #[test]
    fn closed_listener_refuses_and_releases_the_port() {
        let stack = stack();
        let listener = stack.listen("127.0.0.1:0").unwrap();
        let port = listener.port();
        listener.close();
        assert!(listener.is_closed());
        assert_eq!(
            listener.try_accept().map(|_| ()),
            Err(NetError::ListenerClosed)
        );
        // The port can be bound again.
        let _second = stack.listen(&local(port)).unwrap();
    }

    #[test]
    fn readable_polls_are_counted_for_os_sockets() {
        let stack = stack();
        let (_listener, _client, server) = pair(&stack);
        assert!(!server.readable());
        assert!(!server.readable());
        assert_eq!(stack.stats().snapshot().readable_polls, 2);
    }

    /// A rate-limited endpoint whose kernel send buffer fills must block
    /// in the POLLOUT wait (not spin on acquire/EAGAIN/refund) and still
    /// deliver every byte once the reader drains.
    #[test]
    fn rate_limited_write_all_survives_a_full_send_buffer() {
        const TOTAL: usize = 4 * 1024 * 1024;
        let stack = stack();
        let (_listener, mut client, server) = pair(&stack);
        // Generous rate and burst: the bottleneck is the stalled reader,
        // not the bucket — the regression this test pins down.
        client.set_write_rate(Arc::new(TokenBucket::new_bits_per_sec(
            10_000_000_000,
            1 << 20,
        )));
        let reader = std::thread::spawn(move || {
            // Let the writer slam into a full send buffer first.
            std::thread::sleep(Duration::from_millis(50));
            let mut buf = [0u8; 64 * 1024];
            let mut total = 0usize;
            while total < TOTAL {
                match server.read_timeout(&mut buf, Duration::from_secs(10)) {
                    Ok(n) => total += n,
                    Err(e) => panic!("reader failed after {total} bytes: {e}"),
                }
            }
            total
        });
        client.write_all(&vec![0x42u8; TOTAL]).unwrap();
        assert_eq!(reader.join().unwrap(), TOTAL);
    }

    #[test]
    fn pending_reports_buffered_bytes() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        client.write_all(b"12345").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.pending() < 5 {
            assert!(Instant::now() < deadline, "bytes never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(server.readable());
    }
}
