//! The OS socket transport: real TCP behind the readiness layer.
//!
//! Everything above the substrate — dispatchers, task graphs, placement —
//! speaks [`crate::Endpoint`] + [`crate::Poller`]. This module provides the
//! second implementation of that contract (DESIGN.md §10): nonblocking
//! `std::net` sockets whose kernel readiness transitions are translated
//! into [`Poller::post`] calls by a per-poller [`OsReactor`] thread
//! blocked in `epoll_wait` (bound via the direct syscall bindings in
//! `crate::sys`; no new crates, per the offline shim policy of §7).
//! Each shard's poller lazily owns its own reactor (DESIGN.md §13), so
//! kernel event demultiplexing scales with the shard topology instead of
//! funnelling every TCP byte through one process-wide thread; a reactor
//! shuts down (via a self-pipe) when its poller is dropped.
//!
//! The readiness contract matches the simulated sources exactly:
//!
//! * **Edge-triggered afterwards.** Sockets are registered `EPOLLET`; the
//!   kernel reports transitions, and consumers drain to
//!   [`NetError::WouldBlock`] — the invariant `crate::poller` already
//!   imposes.
//! * **Level-triggered at registration.** [`TcpConn::register`] and
//!   [`TcpListener::register`] post a synthetic event for the current
//!   state, so data (or a backlog) that arrived before the registration —
//!   including during a cross-shard handoff that moves the registration to
//!   a different poller — is never missed. Spurious events are allowed by
//!   the poller contract, so the synthetic post is unconditional.
//! * **One registration per socket.** Registering again (from any clone)
//!   replaces the previous registration, as with [`crate::Endpoint`] pipes.
//!
//! Cost and stats accounting mirrors the simulated substrate: every
//! operation is charged its [`StackCosts`] entry and recorded in the
//! stack's [`NetStats`] (a real-socket platform normally runs
//! [`StackModel::Free`], because the real kernel already charges real
//! costs — the model hook exists for calibration experiments).

use crate::costs::{StackCosts, StackModel};
use crate::error::NetError;
use crate::poller::{Interest, Poller, Readiness, Token, WakerSlot};
use crate::ratelimit::TokenBucket;
use crate::stats::NetStats;
use crate::sys;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maps an `std::io` error onto the substrate error vocabulary.
fn map_io(err: std::io::Error) -> NetError {
    use std::io::ErrorKind;
    match err.kind() {
        ErrorKind::WouldBlock => NetError::WouldBlock,
        ErrorKind::BrokenPipe
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::NotConnected
        | ErrorKind::UnexpectedEof => NetError::Closed,
        ErrorKind::ConnectionRefused => NetError::ConnectionRefused,
        ErrorKind::AddrInUse => NetError::AddrInUse,
        ErrorKind::TimedOut => NetError::TimedOut,
        kind => NetError::Io(kind),
    }
}

/// The error for the most recent failed syscall.
fn last_os_error() -> NetError {
    map_io(std::io::Error::last_os_error())
}

/// Opens a nonblocking IPv4 listening socket with `SO_REUSEPORT` set
/// *before* bind — std's `TcpListener::bind` cannot do this, and the
/// option must be set pre-bind for the socket to join an accept-sharding
/// group on an already-bound port.
fn listen_reuseport(addr: SocketAddr) -> Result<std::net::TcpListener, NetError> {
    let SocketAddr::V4(v4) = addr else {
        return Err(NetError::Io(std::io::ErrorKind::Unsupported));
    };
    let fd = unsafe { sys::socket(sys::AF_INET, sys::SOCK_STREAM | sys::SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(last_os_error());
    }
    // Wrap immediately so every early return below releases the fd.
    use std::os::fd::FromRawFd;
    let socket = unsafe { std::net::TcpListener::from_raw_fd(fd) };
    let one: sys::c_int = 1;
    for opt in [sys::SO_REUSEADDR, sys::SO_REUSEPORT] {
        let rc = unsafe { sys::setsockopt(fd, sys::SOL_SOCKET, opt, &one, 4) };
        if rc != 0 {
            return Err(last_os_error());
        }
    }
    let raw = sys::sockaddr_in {
        sin_family: sys::AF_INET as u16,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from(*v4.ip()).to_be(),
        sin_zero: [0; 8],
    };
    let rc = unsafe { sys::bind(fd, &raw, std::mem::size_of::<sys::sockaddr_in>() as u32) };
    if rc != 0 {
        return Err(last_os_error());
    }
    let rc = unsafe { sys::listen(fd, 1024) };
    if rc != 0 {
        return Err(last_os_error());
    }
    Ok(socket)
}

// ---------------------------------------------------------------------------
// OsReactor
// ---------------------------------------------------------------------------

/// How many kernel events one `epoll_wait` call drains per pass. The
/// batched-syscall contract (DESIGN.md §13): under load the reactor
/// amortizes one wait syscall over up to this many readiness transitions,
/// and the whole batch is delivered with one poller lock acquisition per
/// destination shard via [`crate::poller::wake_batch`].
pub(crate) const MAX_EVENTS: usize = 256;

/// Userdata value reserved for the reactor's self-pipe wake channel; never
/// collides with a socket entry because those pack the fd into the low
/// 32 bits and `-1` is not a valid descriptor.
const WAKE_TOKEN: u64 = u64::MAX;

/// Packs a registration generation and an fd into epoll userdata.
fn pack_userdata(gen: u32, fd: RawFd) -> u64 {
    ((gen as u64) << 32) | (fd as u32 as u64)
}

/// The wakers one socket's epoll registration fans out to: one slot per
/// direction, because a single connection may be watched by two different
/// tasks — the input task (readable) and the output task (writable) — each
/// under its own token, possibly in different pollers. Mirrors the
/// simulated pipes, which hold a `read_waker` and a `write_waker` per
/// direction.
struct FdSlots {
    /// Registration generation, packed into the epoll userdata. fd numbers
    /// recycle fast under accept churn, so a batch resolved after the fd
    /// was forgotten and a new socket re-added under the same number
    /// carries the old generation — those events are dropped rather than
    /// delivered to the new owner (a stale HUP would otherwise tear down a
    /// healthy connection).
    gen: u32,
    read: Option<WakerSlot>,
    write: Option<WakerSlot>,
}

impl FdSlots {
    fn new(gen: u32) -> FdSlots {
        FdSlots {
            gen,
            read: None,
            write: None,
        }
    }

    /// The epoll event mask the current slots ask for.
    fn epoll_bits(&self) -> u32 {
        let mut bits = sys::EPOLLET | sys::EPOLLRDHUP;
        if self.read.is_some() {
            bits |= sys::EPOLLIN;
        }
        if self.write.is_some() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn is_empty(&self) -> bool {
        self.read.is_none() && self.write.is_none()
    }
}

/// A per-poller epoll reactor.
///
/// Each [`Poller`] — one per shard dispatcher — lazily spawns its own
/// reactor thread blocked in `epoll_wait`, so kernel event demultiplexing
/// shards with the runtime topology: a registration lives on the reactor
/// of the poller that watches it and never moves off the owning shard
/// (re-registering on a different shard's poller migrates it explicitly).
/// `epoll_ctl` is safe to call concurrently with `epoll_wait`, so
/// registration changes take effect immediately without waking the thread.
///
/// The reactor shuts down when its poller is dropped: the poller sets the
/// flag and writes a byte into the self-pipe, the thread observes it on
/// the next wakeup and exits, and the descriptors close when the last
/// `Arc` (thread, poller, or a socket that registered here) goes away.
pub(crate) struct OsReactor {
    epfd: RawFd,
    /// Read end of the self-pipe, registered under [`WAKE_TOKEN`].
    wake_read: RawFd,
    /// Write end of the self-pipe; [`OsReactor::initiate_shutdown`] pokes it.
    wake_write: RawFd,
    shutdown: AtomicBool,
    registrations: Mutex<HashMap<RawFd, FdSlots>>,
    /// Source of registration generations (see [`FdSlots::gen`]); per
    /// reactor, because userdata only has to be unique within one epoll
    /// instance.
    next_gen: AtomicU64,
}

impl OsReactor {
    /// Creates the epoll instance + self-pipe and spawns the event thread.
    pub(crate) fn start() -> Arc<OsReactor> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        assert!(epfd >= 0, "epoll_create1 failed: errno {}", sys::errno());
        let mut pipe = [0 as sys::c_int; 2];
        let rc = unsafe { sys::pipe2(pipe.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        assert!(rc == 0, "pipe2 failed: errno {}", sys::errno());
        // Level-triggered on purpose: the wake byte must keep the thread
        // spinning out of `epoll_wait` until it actually observes the
        // shutdown flag, with no edge to miss.
        let mut event = sys::epoll_event {
            events: sys::EPOLLIN,
            u64: WAKE_TOKEN,
        };
        let rc = unsafe { sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, pipe[0], &mut event) };
        assert!(rc == 0, "registering the wake pipe: errno {}", sys::errno());
        let reactor = Arc::new(OsReactor {
            epfd,
            wake_read: pipe[0],
            wake_write: pipe[1],
            shutdown: AtomicBool::new(false),
            registrations: Mutex::new(HashMap::new()),
            next_gen: AtomicU64::new(1),
        });
        let runner = Arc::clone(&reactor);
        std::thread::Builder::new()
            .name("flick-os-reactor".into())
            .spawn(move || runner.run())
            .expect("spawning an OS reactor thread");
        reactor
    }

    /// Asks the event thread to exit (called when the owning poller
    /// drops). Idempotent; the thread drops its `Arc` on the way out.
    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let byte = 1u8;
        unsafe { sys::write(self.wake_write, &byte, 1) };
    }

    /// Translates kernel events into poller posts until shut down.
    fn run(&self) {
        let mut events = [sys::epoll_event { events: 0, u64: 0 }; MAX_EVENTS];
        loop {
            let n = unsafe {
                sys::epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as sys::c_int, -1)
            };
            if n < 0 {
                if sys::errno() == sys::EINTR {
                    continue;
                }
                // The epoll fd itself failed; nothing sensible to do but
                // stop translating (the process is likely tearing down).
                return;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let batch = &events[..n as usize];
            if batch.iter().any(|e| {
                let user = e.u64;
                user == WAKE_TOKEN
            }) {
                self.drain_wake_pipe();
            }
            // One batch, one delivery: `wake_batch` takes each destination
            // poller's lock once for the whole batch instead of once per
            // event, which is where the per-shard fan-out wins under load.
            crate::poller::wake_batch(self.resolve_batch(batch));
        }
    }

    fn drain_wake_pipe(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.wake_read, buf.as_mut_ptr(), buf.len()) };
            if n < buf.len() as isize {
                return; // Empty (EAGAIN), closed, or a partial final read.
            }
        }
    }

    /// Resolves one `epoll_wait` batch into the waker deliveries it
    /// implies. Slots are resolved under the registration lock, but wakes
    /// are delivered by the caller outside it: posting into per-shard
    /// pollers (lock + condvar notify) while holding the map would
    /// serialize every concurrent register/deregister behind event fan-out.
    ///
    /// Stale entries are dropped here: an event whose packed generation no
    /// longer matches the live registration raced a close — the fd was
    /// forgotten and the number recycled while the batch was in flight —
    /// and must not wake the new owner with the old socket's state.
    fn resolve_batch(&self, batch: &[sys::epoll_event]) -> Vec<(WakerSlot, Readiness)> {
        let mut wakes: Vec<(WakerSlot, Readiness)> = Vec::with_capacity(batch.len());
        let registrations = self.registrations.lock();
        for event in batch {
            let user = event.u64;
            if user == WAKE_TOKEN {
                continue;
            }
            let fd = (user & 0xFFFF_FFFF) as u32 as RawFd;
            let gen = (user >> 32) as u32;
            let Some(slots) = registrations.get(&fd) else {
                continue; // Deregistered while the event was in flight.
            };
            if slots.gen != gen {
                continue; // Recycled fd; the event belongs to a dead socket.
            }
            let bits = event.events;
            let closed = bits & (sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0;
            // Fan out per direction: a close wakes both watchers (a
            // parked writer must fail fast, a reader must observe
            // EOF), ordinary transitions only their own side.
            if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                if let Some(slot) = &slots.read {
                    let mut readiness = Readiness::readable();
                    readiness.closed = closed;
                    wakes.push((slot.clone(), readiness));
                }
            }
            if bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                if let Some(slot) = &slots.write {
                    let mut readiness = Readiness::writable();
                    readiness.closed = closed;
                    wakes.push((slot.clone(), readiness));
                }
            }
        }
        wakes
    }

    /// Installs (or replaces) the registration for the direction(s) in
    /// `interest` of `fd`. Matching events will post `token` into `poller`
    /// until the direction is deregistered or [`OsReactor::forget`] runs.
    /// Each direction holds one slot: registering a direction again (from
    /// any clone) replaces it, while the other direction's slot — possibly
    /// a different task's token — is left alone.
    fn register(&self, fd: RawFd, poller: &Poller, token: Token, interest: Interest) {
        let mut registrations = self.registrations.lock();
        let op = if registrations.contains_key(&fd) {
            sys::EPOLL_CTL_MOD
        } else {
            sys::EPOLL_CTL_ADD
        };
        let gen = match registrations.get(&fd) {
            Some(slots) => slots.gen,
            None => self.next_gen.fetch_add(1, Ordering::Relaxed) as u32,
        };
        let slots = registrations.entry(fd).or_insert_with(|| FdSlots::new(gen));
        if interest.is_readable() {
            slots.read = Some(poller.slot(token));
        }
        if interest.is_writable() {
            slots.write = Some(poller.slot(token));
        }
        let mut event = sys::epoll_event {
            events: slots.epoll_bits(),
            u64: pack_userdata(gen, fd),
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) };
        // A failed registration (max_user_watches exhausted, ENOMEM) must
        // be loud: recording it anyway would deliver the synthetic
        // level-trigger event and then stall the connection forever — a
        // silent lost wakeup, the one failure mode this layer exists to
        // rule out.
        assert!(
            rc == 0,
            "epoll_ctl({op}) for fd {fd} failed: errno {}",
            sys::errno()
        );
    }

    /// Removes the direction(s) in `interest` of `fd`'s registration when
    /// they post into `poller`; drops the epoll entry once no direction is
    /// left.
    fn deregister(&self, fd: RawFd, poller: &Poller, interest: Interest) {
        let mut registrations = self.registrations.lock();
        let Some(slots) = registrations.get_mut(&fd) else {
            return;
        };
        if interest.is_readable() && slots.read.as_ref().is_some_and(|s| s.belongs_to(poller)) {
            slots.read = None;
        }
        if interest.is_writable() && slots.write.as_ref().is_some_and(|s| s.belongs_to(poller)) {
            slots.write = None;
        }
        Self::apply_slots(self.epfd, &mut registrations, fd);
    }

    /// Removes the direction(s) in `interest` unconditionally — used when
    /// a socket migrates to another shard's reactor and the old poller
    /// handle is gone.
    fn forget_interest(&self, fd: RawFd, interest: Interest) {
        let mut registrations = self.registrations.lock();
        let Some(slots) = registrations.get_mut(&fd) else {
            return;
        };
        if interest.is_readable() {
            slots.read = None;
        }
        if interest.is_writable() {
            slots.write = None;
        }
        Self::apply_slots(self.epfd, &mut registrations, fd);
    }

    /// Syncs `fd`'s epoll entry with its (possibly emptied) slots.
    fn apply_slots(epfd: RawFd, registrations: &mut HashMap<RawFd, FdSlots>, fd: RawFd) {
        let Some(slots) = registrations.get(&fd) else {
            return;
        };
        if slots.is_empty() {
            registrations.remove(&fd);
            let mut event = sys::epoll_event { events: 0, u64: 0 };
            unsafe { sys::epoll_ctl(epfd, sys::EPOLL_CTL_DEL, fd, &mut event) };
        } else {
            let mut event = sys::epoll_event {
                events: slots.epoll_bits(),
                u64: pack_userdata(slots.gen, fd),
            };
            unsafe { sys::epoll_ctl(epfd, sys::EPOLL_CTL_MOD, fd, &mut event) };
        }
    }

    /// Removes any registration for `fd` (socket teardown). The kernel
    /// drops the epoll entry itself when the descriptor closes; this keeps
    /// the slot table from retaining a stale waker into a dead poller, and
    /// removing the entry *before* the descriptor closes is what arms the
    /// generation guard: any in-flight batch now misses the map (or, after
    /// a re-add recycles the fd, mismatches the generation) instead of
    /// waking the wrong owner.
    fn forget(&self, fd: RawFd) {
        if self.registrations.lock().remove(&fd).is_some() {
            let mut event = sys::epoll_event { events: 0, u64: 0 };
            unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) };
        }
    }
}

impl Drop for OsReactor {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
            sys::close(self.wake_read);
            sys::close(self.wake_write);
        }
    }
}

/// The per-direction reactor handles a socket is currently registered
/// with. Input and output tasks may watch from different shards, so the
/// two directions can live on two different reactors; close/Drop must
/// forget the socket from each, and re-registering a direction on a new
/// shard's poller must first remove it from the old reactor.
#[derive(Default)]
struct ReactorSlots {
    read: Option<Arc<OsReactor>>,
    write: Option<Arc<OsReactor>>,
}

impl ReactorSlots {
    /// Replaces the tracked reactor for the direction(s) in `interest`
    /// with `new`, forgetting that direction from any different old one.
    fn migrate(&mut self, fd: RawFd, interest: Interest, new: &Arc<OsReactor>) {
        if interest.is_readable() {
            if let Some(old) = self.read.replace(Arc::clone(new)) {
                if !Arc::ptr_eq(&old, new) {
                    old.forget_interest(fd, Interest::READABLE);
                }
            }
        }
        if interest.is_writable() {
            if let Some(old) = self.write.replace(Arc::clone(new)) {
                if !Arc::ptr_eq(&old, new) {
                    old.forget_interest(fd, Interest::WRITABLE);
                }
            }
        }
    }

    /// Clears the direction(s) in `interest` when they point at `reactor`.
    fn clear(&mut self, interest: Interest, reactor: &Arc<OsReactor>) {
        if interest.is_readable() && self.read.as_ref().is_some_and(|r| Arc::ptr_eq(r, reactor)) {
            self.read = None;
        }
        if interest.is_writable() && self.write.as_ref().is_some_and(|r| Arc::ptr_eq(r, reactor)) {
            self.write = None;
        }
    }

    /// Takes the distinct reactors still holding a registration (for
    /// teardown: forget once per reactor, not once per direction).
    fn take_distinct(&mut self) -> Vec<Arc<OsReactor>> {
        let mut out: Vec<Arc<OsReactor>> = Vec::new();
        for slot in [self.read.take(), self.write.take()].into_iter().flatten() {
            if !out.iter().any(|r| Arc::ptr_eq(r, &slot)) {
                out.push(slot);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

/// The OS-socket counterpart of [`crate::SimNetwork`]: owns the stats
/// block and the cost model shared by every socket it opens.
pub struct TcpStack {
    model: StackModel,
    costs: StackCosts,
    stats: Arc<NetStats>,
    next_conn_id: AtomicU64,
}

impl std::fmt::Debug for TcpStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStack")
            .field("model", &self.model)
            .finish()
    }
}

impl TcpStack {
    /// Creates a stack whose sockets are charged according to `model`.
    ///
    /// Real sockets already pay the real kernel's costs, so platforms
    /// normally pass [`StackModel::Free`]; the other models exist to
    /// layer the calibrated busy-wait on top for calibration runs.
    pub fn new(model: StackModel) -> Arc<Self> {
        Arc::new(TcpStack {
            model,
            costs: model.costs(),
            stats: NetStats::new_shared(),
            next_conn_id: AtomicU64::new(1),
        })
    }

    /// The stack model sockets of this stack are charged with.
    pub fn model(&self) -> StackModel {
        self.model
    }

    /// The stack-wide statistics counters (same vocabulary as
    /// [`crate::SimNetwork::stats`], so idle-scan assertions carry over).
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Binds a listening socket. `addr` is a standard socket address;
    /// `127.0.0.1:0` asks the OS for an ephemeral port (read it back with
    /// [`TcpListener::port`]).
    pub fn listen(self: &Arc<Self>, addr: &str) -> Result<TcpListener, NetError> {
        let listener = std::net::TcpListener::bind(addr).map_err(map_io)?;
        self.wrap_listener(listener)
    }

    /// Binds `count` listening sockets to the same address with
    /// `SO_REUSEPORT` — one accept queue per shard. The kernel hashes
    /// incoming connections across the group, so shards accept in
    /// parallel with no shared accept lock and no cross-shard handoff
    /// (DESIGN.md §13). A `:0` bind resolves the ephemeral port on the
    /// first socket and the rest join it.
    pub fn listen_group(
        self: &Arc<Self>,
        addr: &str,
        count: usize,
    ) -> Result<Vec<TcpListener>, NetError> {
        assert!(count > 0, "listen_group needs at least one listener");
        let mut target: SocketAddr = addr
            .to_socket_addrs()
            .map_err(map_io)?
            .find(|a| a.is_ipv4())
            .ok_or(NetError::Io(std::io::ErrorKind::Unsupported))?;
        let mut group = Vec::with_capacity(count);
        for _ in 0..count {
            let listener = self.wrap_listener(listen_reuseport(target)?)?;
            if target.port() == 0 {
                target.set_port(listener.port());
            }
            group.push(listener);
        }
        Ok(group)
    }

    fn wrap_listener(
        self: &Arc<Self>,
        listener: std::net::TcpListener,
    ) -> Result<TcpListener, NetError> {
        listener.set_nonblocking(true).map_err(map_io)?;
        let local_addr = listener.local_addr().map_err(map_io)?;
        Ok(TcpListener {
            inner: Arc::new(TcpListenerInner {
                socket: Mutex::new(Some(listener)),
                local_addr,
                closed: AtomicBool::new(false),
                stack: Arc::clone(self),
                reactor: Mutex::new(None),
            }),
        })
    }

    /// Establishes a connection to `addr` and returns the client endpoint.
    pub fn connect(self: &Arc<Self>, addr: &str) -> Result<crate::Endpoint, NetError> {
        let addr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(map_io)?
            .next()
            .ok_or(NetError::ConnectionRefused)?;
        let stream = TcpStream::connect(addr).map_err(map_io)?;
        StackCosts::charge(self.costs.connect);
        self.stats.record_open();
        Ok(crate::Endpoint::from_tcp(
            self.wrap(stream, crate::conn::Side::Client)?,
        ))
    }

    /// Wraps an accepted/connected stream into a [`TcpConn`].
    fn wrap(
        self: &Arc<Self>,
        stream: TcpStream,
        side: crate::conn::Side,
    ) -> Result<TcpConn, NetError> {
        stream.set_nonblocking(true).map_err(map_io)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpConn {
            inner: Arc::new(TcpConnInner {
                stream,
                id: self.next_conn_id.fetch_add(1, Ordering::Relaxed),
                side,
                costs: self.costs,
                stats: Arc::clone(&self.stats),
                closed: AtomicBool::new(false),
                reactors: Mutex::new(ReactorSlots::default()),
            }),
            rate: None,
        })
    }
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

struct TcpListenerInner {
    /// `None` after [`TcpListener::close`]; dropping the socket releases
    /// the port and makes the kernel refuse new connections.
    socket: Mutex<Option<std::net::TcpListener>>,
    local_addr: SocketAddr,
    closed: AtomicBool,
    stack: Arc<TcpStack>,
    /// The shard reactor currently watching this listener (accept
    /// readiness is a single direction, so one slot suffices).
    reactor: Mutex<Option<Arc<OsReactor>>>,
}

/// A listening OS socket, API-compatible with [`crate::SimListener`].
#[derive(Clone)]
pub struct TcpListener {
    inner: Arc<TcpListenerInner>,
}

impl std::fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListener")
            .field("addr", &self.inner.local_addr)
            .finish()
    }
}

impl TcpListener {
    /// The port the listener is bound to (resolved, so a `:0` bind reports
    /// the ephemeral port the OS picked).
    pub fn port(&self) -> u16 {
        self.inner.local_addr.port()
    }

    /// The full local socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    fn raw_fd(&self) -> Option<RawFd> {
        self.inner.socket.lock().as_ref().map(|s| s.as_raw_fd())
    }

    /// Accepts a pending connection without blocking.
    pub fn try_accept(&self) -> Result<crate::Endpoint, NetError> {
        let socket = self.inner.socket.lock();
        let Some(listener) = socket.as_ref() else {
            return Err(NetError::ListenerClosed);
        };
        match listener.accept() {
            Ok((stream, _peer)) => {
                drop(socket);
                StackCosts::charge(self.inner.stack.costs.accept);
                self.inner.stack.stats.record_open();
                let conn = self.inner.stack.wrap(stream, crate::conn::Side::Server)?;
                Ok(crate::Endpoint::from_tcp(conn))
            }
            Err(e) => {
                // fd/buffer exhaustion is retryable, not fatal: surface it
                // as the distinct `Resources` signal so accept loops back
                // off instead of dying (`map_io` would fold these errnos
                // into an opaque `Io(...)`).
                if matches!(
                    e.raw_os_error(),
                    Some(sys::EMFILE | sys::ENFILE | sys::ENOBUFS | sys::ENOMEM)
                ) {
                    return Err(NetError::Resources);
                }
                Err(map_io(e))
            }
        }
    }

    /// Accepts a pending connection, blocking up to `timeout` (client/test
    /// helper; dispatchers always use [`TcpListener::try_accept`]).
    pub fn accept_timeout(&self, timeout: Duration) -> Result<crate::Endpoint, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_accept() {
                Err(NetError::WouldBlock) => {
                    let Some(fd) = self.raw_fd() else {
                        return Err(NetError::ListenerClosed);
                    };
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::TimedOut);
                    }
                    sys::wait_ready(fd, sys::POLLIN, deadline - now);
                }
                other => return other,
            }
        }
    }

    /// Registers this listener with `poller`: every new pending connection
    /// enqueues `token` as a readable event. Level-triggered at the moment
    /// of the call via a synthetic post (spurious events are allowed).
    pub fn register(&self, poller: &Poller, token: Token) {
        if let Some(fd) = self.raw_fd() {
            let reactor = poller.os_reactor();
            {
                let mut tracked = self.inner.reactor.lock();
                if let Some(old) = tracked.replace(Arc::clone(&reactor)) {
                    if !Arc::ptr_eq(&old, &reactor) {
                        old.forget_interest(fd, Interest::READABLE);
                    }
                }
            }
            reactor.register(fd, poller, token, Interest::READABLE);
            poller.post(token, Readiness::readable());
        } else {
            poller.post(token, Readiness::readable().with_closed());
        }
    }

    /// Removes this listener's registration in `poller`, if any.
    pub fn deregister(&self, poller: &Poller) {
        if let Some(fd) = self.raw_fd() {
            let reactor = poller.os_reactor();
            reactor.deregister(fd, poller, Interest::READABLE);
            let mut tracked = self.inner.reactor.lock();
            if tracked.as_ref().is_some_and(|r| Arc::ptr_eq(r, &reactor)) {
                *tracked = None;
            }
        }
    }

    /// Closes the listener: the port is released and pending/future
    /// accepts fail with [`NetError::ListenerClosed`].
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        let socket = self.inner.socket.lock().take();
        if let Some(socket) = socket {
            if let Some(reactor) = self.inner.reactor.lock().take() {
                reactor.forget(socket.as_raw_fd());
            }
        }
    }

    /// Returns `true` after the listener was closed.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

impl Drop for TcpListenerInner {
    fn drop(&mut self) {
        if let Some(socket) = self.socket.get_mut().take() {
            if let Some(reactor) = self.reactor.get_mut().take() {
                reactor.forget(socket.as_raw_fd());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TcpConn
// ---------------------------------------------------------------------------

struct TcpConnInner {
    stream: TcpStream,
    id: u64,
    side: crate::conn::Side,
    costs: StackCosts,
    stats: Arc<NetStats>,
    closed: AtomicBool,
    reactors: Mutex<ReactorSlots>,
}

impl Drop for TcpConnInner {
    fn drop(&mut self) {
        let fd = self.stream.as_raw_fd();
        for reactor in self.reactors.get_mut().take_distinct() {
            reactor.forget(fd);
        }
    }
}

/// One end of an OS TCP connection, implementing the same non-blocking +
/// readiness contract as the simulated [`crate::Endpoint`] pipes. Cheap to
/// clone; clones share the socket, as duplicated fd handles would.
#[derive(Clone)]
pub struct TcpConn {
    inner: Arc<TcpConnInner>,
    rate: Option<Arc<TokenBucket>>,
}

impl std::fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpConn")
            .field("id", &self.inner.id)
            .field("side", &self.inner.side)
            .finish()
    }
}

impl TcpConn {
    fn fd(&self) -> RawFd {
        self.inner.stream.as_raw_fd()
    }

    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    pub(crate) fn side(&self) -> crate::conn::Side {
        self.inner.side
    }

    pub(crate) fn set_write_rate(&mut self, bucket: Arc<TokenBucket>) {
        self.rate = Some(bucket);
    }

    pub(crate) fn write(&self, data: &[u8]) -> Result<usize, NetError> {
        if data.is_empty() {
            return Ok(0);
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        // The kernel's appetite is unknowable up front (unlike the sim
        // pipes, which check free space under the pipe lock), so acquire
        // link budget for the attempt and refund whatever the socket does
        // not take — a full send buffer must not burn tokens.
        let wanted = match &self.rate {
            Some(bucket) => bucket.try_acquire(data.len()),
            None => data.len(),
        };
        if wanted == 0 {
            return Err(NetError::WouldBlock);
        }
        let refund = |sent: usize| {
            if let Some(bucket) = &self.rate {
                if sent < wanted {
                    bucket.refund(wanted - sent);
                }
            }
        };
        loop {
            match (&self.inner.stream).write(&data[..wanted]) {
                Ok(0) => {
                    refund(0);
                    return Err(NetError::Closed);
                }
                Ok(n) => {
                    refund(n);
                    StackCosts::charge(self.inner.costs.io_cost(true, n));
                    self.inner.stats.record_write(n);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    refund(0);
                    return Err(map_io(e));
                }
            }
        }
    }

    /// Writes the segments in `bufs` with one `writev(2)` call — a
    /// header+body response leaves in a single syscall without
    /// concatenating into a staging buffer, preserving the zero-copy laws
    /// (the body `Bytes` is handed to the kernel where it sits). Same
    /// contract as [`TcpConn::write`]: returns the bytes the kernel took
    /// (possibly a prefix), rate budget is acquired up front and refunded
    /// for whatever the socket refuses.
    pub(crate) fn write_vectored(&self, bufs: &[&[u8]]) -> Result<usize, NetError> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(0);
        }
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        let wanted = match &self.rate {
            Some(bucket) => bucket.try_acquire(total),
            None => total,
        };
        if wanted == 0 {
            return Err(NetError::WouldBlock);
        }
        // Truncate the segment list to the acquired budget so a tight
        // bucket still sends a prefix, as the scalar path does.
        let mut iov: Vec<sys::iovec> = Vec::with_capacity(bufs.len());
        let mut budget = wanted;
        for buf in bufs {
            let take = buf.len().min(budget);
            if take > 0 {
                iov.push(sys::iovec {
                    iov_base: buf.as_ptr(),
                    iov_len: take,
                });
                budget -= take;
            }
            if budget == 0 {
                break;
            }
        }
        let refund = |sent: usize| {
            if let Some(bucket) = &self.rate {
                if sent < wanted {
                    bucket.refund(wanted - sent);
                }
            }
        };
        loop {
            let rc = unsafe { sys::writev(self.fd(), iov.as_ptr(), iov.len() as sys::c_int) };
            if rc > 0 {
                let n = rc as usize;
                refund(n);
                StackCosts::charge(self.inner.costs.io_cost(true, n));
                self.inner.stats.record_write(n);
                self.inner.stats.record_vectored(iov.len());
                return Ok(n);
            }
            if rc == 0 {
                refund(0);
                return Err(NetError::Closed);
            }
            match sys::errno() {
                sys::EINTR => continue,
                _ => {
                    refund(0);
                    return Err(last_os_error());
                }
            }
        }
    }

    pub(crate) fn write_all(&self, mut data: &[u8]) -> Result<(), NetError> {
        while !data.is_empty() {
            match self.write(data) {
                Ok(n) => data = &data[n..],
                Err(NetError::WouldBlock) => {
                    // Two distinct reasons to be blocked: an empty token
                    // bucket (sleep out the refill interval) or a full
                    // kernel send buffer (poll for POLLOUT). A rate-limited
                    // endpoint can hit the latter with a full bucket —
                    // `write` refunds tokens on EAGAIN — so a zero refill
                    // wait must still fall through to the POLLOUT wait, or
                    // this loop would spin hot until the peer drains.
                    let refill = self
                        .rate
                        .as_ref()
                        .map(|bucket| bucket.next_available(data.len()))
                        .unwrap_or(Duration::ZERO);
                    if refill.is_zero() {
                        sys::wait_ready(self.fd(), sys::POLLOUT, Duration::from_millis(100));
                    } else {
                        std::thread::sleep(refill.min(Duration::from_millis(5)));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    pub(crate) fn read(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        loop {
            match (&self.inner.stream).read(buf) {
                Ok(0) if !buf.is_empty() => return Err(NetError::Closed),
                Ok(n) => {
                    StackCosts::charge(self.inner.costs.io_cost(false, n));
                    self.inner.stats.record_read(n);
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(map_io(e)),
            }
        }
    }

    pub(crate) fn read_timeout(
        &self,
        buf: &mut [u8],
        timeout: Duration,
    ) -> Result<usize, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.read(buf) {
                Err(NetError::WouldBlock) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(NetError::TimedOut);
                    }
                    sys::wait_ready(self.fd(), sys::POLLIN, deadline - now);
                }
                other => return other,
            }
        }
    }

    /// Probes the socket without consuming data: `recv(MSG_PEEK)`.
    /// Returns `(readable, eof)`.
    fn peek(&self) -> (bool, bool) {
        let mut probe = 0u8;
        let rc = unsafe { sys::recv(self.fd(), &mut probe, 1, sys::MSG_PEEK | sys::MSG_DONTWAIT) };
        match rc {
            0 => (true, true), // EOF is observable: a read makes progress.
            n if n > 0 => (true, false),
            _ => {
                // A hard error (e.g. ECONNRESET) makes a read "progress"
                // (it fails fast) and means the peer is gone — matching
                // the sim transport, where a dead peer reports
                // `peer_closed`. Only EAGAIN means "nothing yet".
                let gone = sys::errno() != sys::EAGAIN;
                (gone, gone)
            }
        }
    }

    pub(crate) fn readable(&self) -> bool {
        self.inner.stats.record_readable_poll();
        self.peek().0
    }

    /// `true` if a write could make progress: kernel send-buffer space
    /// (`POLLOUT` with a zero timeout) or a fail-fast close. Matches the
    /// simulated pipes' contract — a rate limiter alone never makes this
    /// `false`.
    pub(crate) fn writable(&self) -> bool {
        self.inner.stats.record_writable_poll();
        if self.inner.closed.load(Ordering::Acquire) {
            return true;
        }
        sys::wait_ready(self.fd(), sys::POLLOUT, Duration::ZERO)
    }

    pub(crate) fn stats(&self) -> &Arc<NetStats> {
        &self.inner.stats
    }

    pub(crate) fn pending(&self) -> usize {
        let mut available: sys::c_int = 0;
        let rc = unsafe { sys::ioctl(self.fd(), sys::FIONREAD, &mut available) };
        if rc == 0 {
            available.max(0) as usize
        } else {
            0
        }
    }

    pub(crate) fn peer_closed(&self) -> bool {
        self.peek().1
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    pub(crate) fn register(&self, poller: &Poller, token: Token, interest: Interest) {
        let reactor = poller.os_reactor();
        // A cross-shard handoff re-registers on the new shard's poller —
        // and therefore a different reactor: move the direction(s) off the
        // old reactor first so a socket is never watched twice.
        self.inner
            .reactors
            .lock()
            .migrate(self.fd(), interest, &reactor);
        reactor.register(self.fd(), poller, token, interest);
        // Level-triggered at registration: post the current state so bytes
        // that arrived before (or during) the registration — e.g. across a
        // cross-shard handoff — are observed. Writable interest is posted
        // unconditionally (a fresh socket is almost always writable, and
        // spurious events are allowed).
        let mut readiness = Readiness::default();
        if interest.is_readable() {
            readiness.readable = true;
        }
        if interest.is_writable() {
            readiness.writable = true;
        }
        poller.post(token, readiness);
    }

    pub(crate) fn deregister(&self, poller: &Poller) {
        self.deregister_interest(poller, Interest::BOTH);
    }

    pub(crate) fn deregister_interest(&self, poller: &Poller, interest: Interest) {
        let reactor = poller.os_reactor();
        reactor.deregister(self.fd(), poller, interest);
        self.inner.reactors.lock().clear(interest, &reactor);
    }

    pub(crate) fn close(&self) {
        if self.inner.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        StackCosts::charge(self.inner.costs.teardown);
        // Forget *before* shutdown/close: removing the registration entry
        // first is what arms the stale-generation guard against an
        // in-flight epoll batch racing the fd recycle.
        for reactor in self.inner.reactors.lock().take_distinct() {
            reactor.forget(self.fd());
        }
        let _ = self.inner.stream.shutdown(std::net::Shutdown::Both);
        self.inner.stats.record_close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Endpoint;

    fn stack() -> Arc<TcpStack> {
        TcpStack::new(StackModel::Free)
    }

    fn local(port: u16) -> String {
        format!("127.0.0.1:{port}")
    }

    fn pair(stack: &Arc<TcpStack>) -> (TcpListener, Endpoint, Endpoint) {
        let listener = stack.listen("127.0.0.1:0").unwrap();
        let client = stack.connect(&local(listener.port())).unwrap();
        let server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        (listener, client, server)
    }

    #[test]
    fn connect_accept_roundtrip() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        client.write_all(b"over the wire").unwrap();
        let mut buf = [0u8; 32];
        let n = server
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf[..n], b"over the wire");
        assert_eq!(stack.stats().snapshot().connections_opened, 2);
    }

    #[test]
    fn empty_read_would_block_and_close_gives_eof() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf), Err(NetError::WouldBlock));
        client.write(b"bye").unwrap();
        client.close();
        let mut seen = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match server.read(&mut buf) {
                Ok(n) => seen.extend_from_slice(&buf[..n]),
                Err(NetError::WouldBlock) => {
                    assert!(Instant::now() < deadline, "EOF never arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(NetError::Closed) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(seen, b"bye");
    }

    #[test]
    fn registered_conn_gets_readable_events() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        let poller = Poller::new();
        server.register(&poller, Token(1), Interest::READABLE);
        // Drain the synthetic level-trigger event first.
        let _ = poller.wait(Duration::from_millis(50));
        client.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let events = poller.wait(Duration::from_millis(100));
            if events
                .iter()
                .any(|e| e.token == Token(1) && e.readiness.readable)
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "no readable event for real bytes"
            );
        }
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn listener_registration_posts_accept_events() {
        let stack = stack();
        let listener = stack.listen("127.0.0.1:0").unwrap();
        let poller = Poller::new();
        listener.register(&poller, Token(9));
        let _ = poller.wait(Duration::from_millis(50)); // synthetic level-trigger
        let _client = stack.connect(&local(listener.port())).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let events = poller.wait(Duration::from_millis(100));
            if events.iter().any(|e| e.token == Token(9)) {
                break;
            }
            assert!(Instant::now() < deadline, "no accept event");
        }
        assert!(listener.try_accept().is_ok());
    }

    #[test]
    fn closed_listener_refuses_and_releases_the_port() {
        let stack = stack();
        let listener = stack.listen("127.0.0.1:0").unwrap();
        let port = listener.port();
        listener.close();
        assert!(listener.is_closed());
        assert_eq!(
            listener.try_accept().map(|_| ()),
            Err(NetError::ListenerClosed)
        );
        // The port can be bound again.
        let _second = stack.listen(&local(port)).unwrap();
    }

    #[test]
    fn readable_polls_are_counted_for_os_sockets() {
        let stack = stack();
        let (_listener, _client, server) = pair(&stack);
        assert!(!server.readable());
        assert!(!server.readable());
        assert_eq!(stack.stats().snapshot().readable_polls, 2);
    }

    /// A rate-limited endpoint whose kernel send buffer fills must block
    /// in the POLLOUT wait (not spin on acquire/EAGAIN/refund) and still
    /// deliver every byte once the reader drains.
    #[test]
    fn rate_limited_write_all_survives_a_full_send_buffer() {
        const TOTAL: usize = 4 * 1024 * 1024;
        let stack = stack();
        let (_listener, mut client, server) = pair(&stack);
        // Generous rate and burst: the bottleneck is the stalled reader,
        // not the bucket — the regression this test pins down.
        client.set_write_rate(Arc::new(TokenBucket::new_bits_per_sec(
            10_000_000_000,
            1 << 20,
        )));
        let reader = std::thread::spawn(move || {
            // Let the writer slam into a full send buffer first.
            std::thread::sleep(Duration::from_millis(50));
            let mut buf = [0u8; 64 * 1024];
            let mut total = 0usize;
            while total < TOTAL {
                match server.read_timeout(&mut buf, Duration::from_secs(10)) {
                    Ok(n) => total += n,
                    Err(e) => panic!("reader failed after {total} bytes: {e}"),
                }
            }
            total
        });
        client.write_all(&vec![0x42u8; TOTAL]).unwrap();
        assert_eq!(reader.join().unwrap(), TOTAL);
    }

    /// The stale-token guard, deterministically: an epoll event carrying a
    /// generation that no longer matches the live registration (the fd was
    /// recycled while the batch was in flight) must resolve to no wakes —
    /// a stale HUP would otherwise tear down the recycled fd's healthy new
    /// connection.
    #[test]
    fn stale_generation_events_resolve_to_no_wakes() {
        let stack = stack();
        let (_listener, _client, server_ep) = pair(&stack);
        // Reach the raw conn via a fresh wrap of a second socket so the
        // module-private fields are accessible.
        drop(server_ep);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let conn = stack.wrap(stream, crate::conn::Side::Client).unwrap();
        let poller = Poller::new();
        conn.register(&poller, Token(7), Interest::READABLE);
        let _ = poller.wait(Duration::from_millis(50)); // synthetic level-trigger
        let reactor = poller.os_reactor();
        let gen = reactor.registrations.lock().get(&conn.fd()).unwrap().gen;
        let live = sys::epoll_event {
            events: sys::EPOLLIN,
            u64: pack_userdata(gen, conn.fd()),
        };
        let stale = sys::epoll_event {
            events: sys::EPOLLIN | sys::EPOLLHUP,
            u64: pack_userdata(gen.wrapping_add(1), conn.fd()),
        };
        assert!(
            reactor.resolve_batch(&[stale]).is_empty(),
            "stale-generation event must be dropped"
        );
        let wakes = reactor.resolve_batch(&[live]);
        assert_eq!(wakes.len(), 1);
        assert!(wakes[0].1.readable && !wakes[0].1.closed);
    }

    #[test]
    fn listen_group_shares_one_port_across_sockets() {
        let stack = stack();
        let group = stack.listen_group("127.0.0.1:0", 2).unwrap();
        assert_eq!(group[0].port(), group[1].port());
        let clients: Vec<_> = (0..8)
            .map(|_| stack.connect(&local(group[0].port())).unwrap())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut served = Vec::new();
        while served.len() < clients.len() {
            assert!(Instant::now() < deadline, "accepts never arrived");
            for listener in &group {
                match listener.try_accept() {
                    Ok(conn) => served.push(conn),
                    Err(NetError::WouldBlock) => {}
                    Err(e) => panic!("unexpected accept error: {e}"),
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn vectored_write_lands_as_one_contiguous_stream() {
        let stack = stack();
        let listener = stack.listen("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(("127.0.0.1", listener.port())).unwrap();
        let client = stack.wrap(stream, crate::conn::Side::Client).unwrap();
        let server = listener.accept_timeout(Duration::from_secs(5)).unwrap();
        let n = client
            .write_vectored(&[b"HTTP/1.1 200 OK\r\n\r\n", b"hello body"])
            .unwrap();
        assert_eq!(n, 29);
        let mut buf = [0u8; 64];
        let mut seen = Vec::new();
        while seen.len() < n {
            let got = server
                .read_timeout(&mut buf, Duration::from_secs(5))
                .unwrap();
            seen.extend_from_slice(&buf[..got]);
        }
        assert_eq!(&seen, b"HTTP/1.1 200 OK\r\n\r\nhello body");
        let snap = stack.stats().snapshot();
        assert_eq!(snap.vectored_writes, 1);
        assert_eq!(snap.vectored_segments, 2);
    }

    /// Dropping a poller shuts its reactor down: the event thread exits
    /// and later batches stop arriving, while sockets registered there
    /// keep working through plain reads.
    #[test]
    fn dropping_the_poller_stops_its_reactor() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        let poller = Poller::new();
        server.register(&poller, Token(3), Interest::READABLE);
        let reactor = poller.os_reactor();
        // Deregistering drops the reactor's waker back-reference, so the
        // poller's drop below is the last one and triggers the shutdown.
        server.deregister(&poller);
        drop(poller);
        // The shutdown flag is set synchronously by the poller's drop.
        assert!(reactor.shutdown.load(Ordering::Acquire));
        // The socket itself is still alive and readable directly.
        client.write_all(b"still here").unwrap();
        let mut buf = [0u8; 16];
        let n = server
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf[..n], b"still here");
    }

    #[test]
    fn pending_reports_buffered_bytes() {
        let stack = stack();
        let (_listener, client, server) = pair(&stack);
        client.write_all(b"12345").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.pending() < 5 {
            assert!(Instant::now() < deadline, "bytes never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(server.readable());
    }
}
