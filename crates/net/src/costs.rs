//! Transport-stack cost models.
//!
//! The paper's comparison between the kernel TCP stack and mTCP/DPDK hinges
//! on their very different per-connection and per-call costs (§5, §6.3): the
//! kernel pays for VFS socket setup/teardown and user/kernel mode switches
//! on every socket call, while mTCP amortises these in user space. The
//! simulated substrate charges these costs as real CPU time (a calibrated
//! busy-wait), so that the middlebox's measured throughput and latency
//! respond to the stack model the same way the paper's testbed did.
//!
//! Calibration: the paper reports, for the FLICK static web server,
//! ~306 krps (kernel) vs ~380 krps (mTCP) with persistent connections and
//! ~45 krps vs ~193 krps with one connection per request. Solving those four
//! observations for a per-request cost and a per-connection cost gives
//! roughly 1.4 µs/request + ~19 µs/connection for the kernel stack and
//! ~0.9 µs/request + ~2.6 µs/connection for mTCP; the constants below follow
//! those ratios.

use std::time::{Duration, Instant};

/// Which transport stack the middlebox is using.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StackModel {
    /// The Linux kernel TCP stack (sockets + epoll through the VFS).
    #[default]
    Kernel,
    /// The modified mTCP user-space stack running over DPDK.
    Mtcp,
    /// A zero-cost stack used by unit tests and functional examples.
    Free,
}

impl StackModel {
    /// Returns the calibrated cost table for this stack.
    pub fn costs(self) -> StackCosts {
        match self {
            StackModel::Kernel => StackCosts {
                accept: Duration::from_nanos(9_000),
                connect: Duration::from_nanos(9_000),
                teardown: Duration::from_nanos(5_000),
                read_call: Duration::from_nanos(450),
                write_call: Duration::from_nanos(450),
                per_kilobyte: Duration::from_nanos(60),
            },
            StackModel::Mtcp => StackCosts {
                accept: Duration::from_nanos(1_300),
                connect: Duration::from_nanos(1_300),
                teardown: Duration::from_nanos(700),
                read_call: Duration::from_nanos(150),
                write_call: Duration::from_nanos(150),
                per_kilobyte: Duration::from_nanos(40),
            },
            StackModel::Free => StackCosts::free(),
        }
    }

    /// Short label used in benchmark output ("kernel", "mtcp", "free").
    pub fn label(self) -> &'static str {
        match self {
            StackModel::Kernel => "kernel",
            StackModel::Mtcp => "mtcp",
            StackModel::Free => "free",
        }
    }
}

/// Per-operation costs of a transport stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackCosts {
    /// Cost of accepting a new connection on the middlebox side.
    pub accept: Duration,
    /// Cost of establishing an outgoing connection.
    pub connect: Duration,
    /// Cost of tearing a connection down (close + time-wait bookkeeping).
    pub teardown: Duration,
    /// Fixed cost of one read call (mode switch, socket locking).
    pub read_call: Duration,
    /// Fixed cost of one write call.
    pub write_call: Duration,
    /// Additional cost per kilobyte copied across the interface.
    pub per_kilobyte: Duration,
}

impl StackCosts {
    /// A cost table where every operation is free. Used by unit tests.
    pub const fn free() -> Self {
        StackCosts {
            accept: Duration::ZERO,
            connect: Duration::ZERO,
            teardown: Duration::ZERO,
            read_call: Duration::ZERO,
            write_call: Duration::ZERO,
            per_kilobyte: Duration::ZERO,
        }
    }

    /// Returns the cost of a read or write moving `bytes` bytes.
    pub fn io_cost(&self, write: bool, bytes: usize) -> Duration {
        let base = if write {
            self.write_call
        } else {
            self.read_call
        };
        base + Duration::from_nanos((self.per_kilobyte.as_nanos() as u64 * bytes as u64) / 1024)
    }

    /// Charges a cost by busy-waiting for the given duration.
    ///
    /// Busy-waiting (rather than sleeping) is deliberate: the costs being
    /// modelled are CPU work performed by the stack on the middlebox's
    /// cores, so they must consume CPU time that competes with task
    /// execution, exactly as the real stacks do.
    pub fn charge(duration: Duration) {
        if duration.is_zero() {
            return;
        }
        let start = Instant::now();
        while start.elapsed() < duration {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_more_expensive_than_mtcp() {
        let k = StackModel::Kernel.costs();
        let m = StackModel::Mtcp.costs();
        assert!(k.accept > m.accept);
        assert!(k.read_call > m.read_call);
        assert!(k.teardown > m.teardown);
        // The connection-path ratio is the headline of Figure 4c/4d: roughly 4-8x.
        let k_conn = k.accept + k.teardown;
        let m_conn = m.accept + m.teardown;
        let ratio = k_conn.as_nanos() as f64 / m_conn.as_nanos() as f64;
        assert!(ratio > 3.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn free_model_costs_nothing() {
        let f = StackModel::Free.costs();
        assert_eq!(f.io_cost(true, 4096), Duration::ZERO);
        assert_eq!(f.accept, Duration::ZERO);
    }

    #[test]
    fn io_cost_scales_with_bytes() {
        let k = StackModel::Kernel.costs();
        assert!(k.io_cost(false, 16 * 1024) > k.io_cost(false, 1024));
        assert!(k.io_cost(true, 0) == k.write_call);
    }

    #[test]
    fn charge_spins_for_roughly_the_requested_time() {
        let start = Instant::now();
        StackCosts::charge(Duration::from_micros(200));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(200));
        // Not a tight bound (CI machines vary), just a sanity ceiling.
        assert!(elapsed < Duration::from_millis(50));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StackModel::Kernel.label(), "kernel");
        assert_eq!(StackModel::Mtcp.label(), "mtcp");
        assert_eq!(StackModel::Free.label(), "free");
    }
}
