//! The FLICK network substrate.
//!
//! The paper evaluates FLICK on a 10 GbE testbed with two transport stacks:
//! the Linux kernel TCP stack and a modified mTCP user-space stack on DPDK.
//! Neither is available in this reproduction environment, so this crate
//! provides a *simulated* substrate with the properties that matter for the
//! evaluation (see `DESIGN.md` §3, substitution 1):
//!
//! * connections are in-memory full-duplex byte streams
//!   ([`conn::Endpoint`]) with the same non-blocking semantics as sockets;
//! * every socket operation is charged a cost taken from a
//!   [`costs::StackCosts`] model — [`costs::StackModel::Kernel`] and
//!   [`costs::StackModel::Mtcp`] are calibrated from the per-connection and
//!   per-request overhead ratios the paper reports;
//! * links can be rate-limited ([`ratelimit::TokenBucket`]) to model the
//!   1 Gbps client/back-end NICs of the testbed;
//! * [`SimNetwork`] plays the role of the switch fabric: listeners bind to
//!   ports and connects are routed to them;
//! * [`poller::Poller`] is the epoll stand-in: endpoints and listeners
//!   register wakeup slots so consumers block on readiness events instead
//!   of re-scanning idle connections.
//!
//! Compute inside the middlebox is real Rust running on real threads; only
//! the wire is synthetic.
//!
//! Since the OS transport landed the wire can also be real: [`tcp`]
//! provides kernel TCP sockets ([`TcpStack`], [`TcpListener`],
//! [`TcpConn`]) behind the *same* [`Endpoint`]/[`Listener`]/[`Poller`]
//! contract, driven by a process-wide epoll reactor (DESIGN.md §10).
//! Everything above the substrate is transport-blind.
//!
//! # Examples
//!
//! ```
//! use flick_net::{SimNetwork, StackModel};
//!
//! let net = SimNetwork::new(StackModel::Free);
//! let listener = net.listen(8080).unwrap();
//! let client = net.connect(8080).unwrap();
//! let server = listener.accept().unwrap();
//!
//! client.write(b"ping").unwrap();
//! let mut buf = [0u8; 16];
//! let n = server.read(&mut buf).unwrap();
//! assert_eq!(&buf[..n], b"ping");
//! ```

pub mod buf;
pub mod conn;
pub mod costs;
pub mod error;
pub mod listener;
pub mod poller;
pub mod ratelimit;
pub mod rng;
pub mod stats;
mod sys;
pub mod tcp;

pub use buf::SharedBuf;
pub use conn::{Endpoint, SimEndpoint};
pub use costs::{StackCosts, StackModel};
pub use error::NetError;
pub use listener::{Listener, SimListener, SimNetwork};
pub use poller::{Event, Interest, Poller, Readiness, Token};
pub use ratelimit::TokenBucket;
pub use rng::SimRng;
pub use stats::{NetStats, StatsSnapshot};
pub use tcp::{TcpConn, TcpListener, TcpStack};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_roundtrip() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(9000).unwrap();
        let client = net.connect(9000).unwrap();
        let server = listener.accept().unwrap();
        client.write(b"hello").unwrap();
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }
}
