//! Deterministic seeded randomness for the simulation harness.
//!
//! Every random choice in a simulated run — workload mixes, fault timing,
//! placement decisions — must derive from one `u64` scenario seed, so that
//! a failing run replays bit-identically from its seed alone. [`SimRng`] is
//! that derivation point: a splitmix64 generator (the same stream as the
//! `rand` shim's `StdRng`, so swapping it into existing generators changes
//! nothing) plus *order-stable forking*. A fork is keyed by a label or an
//! index and derived from the parent's **seed**, not its stream position:
//! two components forking the same parent get the same sub-streams no
//! matter which forks first, which is what keeps concurrent consumers
//! (mapper threads, client fleets) deterministic.

use rand::{RngCore, SeedableRng};

/// splitmix64 finaliser: a bijective avalanche mix, used both as the
/// generator step and to derive fork seeds.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, for label-keyed forks.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic, forkable RNG seeded from a single `u64`.
///
/// The raw stream is identical to the shimmed `StdRng::seed_from_u64`
/// stream, so [`SimRng`] is a drop-in replacement wherever the workload
/// generators previously constructed a `StdRng` ad hoc.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: u64,
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng { seed, state: seed }
    }

    /// The seed this generator (or fork) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream keyed by `label`.
    ///
    /// Forks depend only on the parent's seed and the label — not on how
    /// many values the parent has produced — so the set of sub-streams a
    /// scenario uses is stable regardless of evaluation order.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(mix64(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Derives an independent sub-stream keyed by `index` (per-client,
    /// per-mapper, per-shard streams).
    pub fn fork_indexed(&self, index: u64) -> SimRng {
        // The golden-ratio increment decorrelates adjacent indices before
        // the avalanche mix.
        SimRng::new(mix64(
            self.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        ))
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `[0, n)`. Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty range");
        (self.next_u64() % n as u64) as usize
    }
}

impl RngCore for SimRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64: same stream as the shimmed StdRng for equal seeds.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }
}

impl SeedableRng for SimRng {
    fn seed_from_u64(seed: u64) -> Self {
        SimRng::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;

    #[test]
    fn matches_the_std_rng_stream_for_equal_seeds() {
        let mut sim = SimRng::new(12345);
        let mut std = StdRng::seed_from_u64(12345);
        for _ in 0..256 {
            assert_eq!(sim.next_u64(), std.next_u64());
        }
    }

    #[test]
    fn forks_are_order_stable() {
        let root = SimRng::new(7);
        let mut a_first = root.fork("alpha");
        let _ = root.fork("beta");
        // Re-fork after the parent has been used for other forks — and
        // even after the parent has generated values.
        let mut used = root.clone();
        let _ = used.next_u64();
        let mut a_second = used.fork("alpha");
        for _ in 0..64 {
            assert_eq!(a_first.next_u64(), a_second.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let root = SimRng::new(7);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        let mut i0 = root.fork_indexed(0);
        let mut i1 = root.fork_indexed(1);
        assert_ne!(a.next_u64(), b.next_u64());
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut rng = SimRng::new(99);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(rng.pick(1) == 0);
    }

    #[test]
    fn same_seed_same_choices() {
        let mut a = SimRng::new(0xF11C);
        let mut b = SimRng::new(0xF11C);
        for _ in 0..100 {
            assert_eq!(a.pick(13), b.pick(13));
            assert_eq!(a.chance(0.3), b.chance(0.3));
        }
    }
}
