//! Readiness notification: the substrate's stand-in for epoll.
//!
//! The paper's platform multiplexes thousands of connections through one
//! dispatcher thread blocked in epoll. This module provides the equivalent
//! for the simulated substrate (DESIGN.md §3, readiness model): a
//! [`Poller`] owns a queue of ready [`Token`]s fed by *wakers* that the
//! event sources ([`crate::Endpoint`] pipes, [`crate::SimListener`] accept
//! queues) invoke on every state transition — bytes arriving, buffer space
//! freed, EOF, a new pending accept. Consumers block in [`Poller::wait`]
//! instead of re-scanning idle connections.
//!
//! Invariants:
//!
//! * **No lost wakeups.** Every state transition that could unblock a
//!   registered consumer enqueues that registration's token, and
//!   registration itself enqueues the token if the source is *already*
//!   ready (level-triggered at registration, edge-triggered afterwards).
//!   A consumer that drains its source to `WouldBlock` after each event is
//!   therefore guaranteed to observe all data and the final EOF.
//! * **Spurious wakeups allowed.** An event only means "worth checking":
//!   the consumer must be prepared for the source to yield `WouldBlock`.
//! * **Coalescing.** A token is queued at most once until delivered; the
//!   readiness flags of coalesced events are OR-ed together.
//! * **Handoff safety.** Re-registering a source with a different poller
//!   (the sharded runtime's accept → place → register path) installs the
//!   new waker and re-runs the level-triggered readiness check under the
//!   *source's* lock, so a transition racing the handoff lands in the old
//!   poller or the new one — never in neither. A consumer that drains to
//!   `WouldBlock` after taking over a registration therefore observes
//!   every byte and the final EOF, no matter how often the registration
//!   moves (see `handoff_between_pollers_loses_no_wakeups` in the conn
//!   tests). Events already queued in the old poller are not retracted;
//!   stale consumers must tolerate spurious events, per the second
//!   invariant.
//!
//! # Examples
//!
//! ```
//! use flick_net::{Interest, Poller, SimNetwork, StackModel, Token};
//! use std::time::Duration;
//!
//! let net = SimNetwork::new(StackModel::Free);
//! let listener = net.listen(7000).unwrap();
//! let client = net.connect(7000).unwrap();
//! let server = listener.accept().unwrap();
//!
//! let poller = Poller::new();
//! server.register(&poller, Token(1), Interest::READABLE);
//!
//! client.write(b"ping").unwrap();
//! let events = poller.wait(Duration::from_secs(1));
//! assert_eq!(events[0].token, Token(1));
//! assert!(events[0].readiness.readable);
//! ```

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies one registered event source within a [`Poller`].
///
/// Tokens are chosen by the consumer (the dispatcher uses them as keys into
/// its watcher map); the poller never interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which transitions a registration wants to observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Wake when data (or EOF) becomes available to read.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Wake when buffer space frees up (or the peer closes).
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Does this interest include readability?
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Does this interest include writability?
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// The readiness flags carried by one [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Readiness {
    /// A read would make progress (data buffered or EOF observable).
    pub readable: bool,
    /// A write would make progress (space available or the write would
    /// fail fast because the peer closed).
    pub writable: bool,
    /// The transition involved a close (EOF, peer gone, listener closed).
    pub closed: bool,
}

impl Readiness {
    /// Readiness with only the `readable` flag set.
    pub fn readable() -> Self {
        Readiness {
            readable: true,
            ..Default::default()
        }
    }

    /// Readiness with only the `writable` flag set.
    pub fn writable() -> Self {
        Readiness {
            writable: true,
            ..Default::default()
        }
    }

    /// Marks the readiness as involving a close.
    pub fn with_closed(mut self) -> Self {
        self.closed = true;
        self
    }

    fn merge(&mut self, other: Readiness) {
        self.readable |= other.readable;
        self.writable |= other.writable;
        self.closed |= other.closed;
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the source was registered with.
    pub token: Token,
    /// OR of the readiness flags of all coalesced transitions.
    pub readiness: Readiness,
}

struct PollState {
    /// Delivery order of ready tokens.
    queue: VecDeque<Token>,
    /// Coalesced readiness per queued token; a token appears in `queue`
    /// exactly when it has an entry here.
    pending: HashMap<Token, Readiness>,
    /// Manual [`Poller::wake`] calls not yet consumed by a `wait`.
    wakeups: u64,
}

pub(crate) struct PollerInner {
    state: Mutex<PollState>,
    cond: Condvar,
    /// The kernel reactor owned by this poller, created lazily the first
    /// time an OS socket registers here. One reactor per poller means one
    /// epoll instance + thread per shard — registrations never leave the
    /// owning shard (DESIGN.md §13).
    os_reactor: std::sync::OnceLock<Arc<crate::tcp::OsReactor>>,
}

impl PollerInner {
    pub(crate) fn post(&self, token: Token, readiness: Readiness) {
        let mut state = self.state.lock();
        Self::post_locked(&mut state, token, readiness);
        self.cond.notify_one();
    }

    fn post_locked(state: &mut PollState, token: Token, readiness: Readiness) {
        if let Some(existing) = state.pending.get_mut(&token) {
            existing.merge(readiness);
        } else {
            state.pending.insert(token, readiness);
            state.queue.push_back(token);
        }
    }
}

impl Drop for PollerInner {
    fn drop(&mut self) {
        // The last reference to this poller is gone: no registration can
        // post here again, so the shard's reactor thread (if one was ever
        // started) can exit instead of leaking a thread + epoll fd per
        // short-lived poller.
        if let Some(reactor) = self.os_reactor.get() {
            reactor.initiate_shutdown();
        }
    }
}

/// Delivers one `epoll_wait` batch of wakes with one lock acquisition and
/// one condvar notify per destination poller, instead of one of each per
/// event. The batch is grouped by destination in place; relative order
/// within one poller is preserved (stable sort), which keeps delivery
/// order deterministic for a single-shard reactor.
pub(crate) fn wake_batch(mut wakes: Vec<(WakerSlot, Readiness)>) {
    wakes.sort_by_key(|(slot, _)| Arc::as_ptr(&slot.inner) as usize);
    let mut idx = 0;
    while idx < wakes.len() {
        let inner = Arc::clone(&wakes[idx].0.inner);
        {
            let mut state = inner.state.lock();
            while idx < wakes.len() && Arc::ptr_eq(&wakes[idx].0.inner, &inner) {
                let (slot, readiness) = &wakes[idx];
                PollerInner::post_locked(&mut state, slot.token, *readiness);
                idx += 1;
            }
        }
        inner.cond.notify_one();
    }
}

/// A waker handle an event source holds for one registration.
///
/// Invoking [`WakerSlot::wake`] enqueues the registration's token; it is
/// safe to call while holding the source's own lock (the poller uses its
/// own, and lock ordering is always source → poller).
#[derive(Clone)]
pub(crate) struct WakerSlot {
    inner: Arc<PollerInner>,
    token: Token,
}

impl WakerSlot {
    pub(crate) fn wake(&self, readiness: Readiness) {
        self.inner.post(self.token, readiness);
    }

    /// `true` if this slot posts into `poller` (used by deregistration).
    pub(crate) fn belongs_to(&self, poller: &Poller) -> bool {
        Arc::ptr_eq(&self.inner, &poller.inner)
    }
}

/// The readiness queue consumers block on.
///
/// Cheap to clone; clones share the same queue (the dispatcher thread
/// waits, service handles clone it to [`Poller::wake`] on shutdown).
#[derive(Clone)]
pub struct Poller {
    inner: Arc<PollerInner>,
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("Poller")
            .field("queued", &state.queue.len())
            .finish()
    }
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> Self {
        Poller {
            inner: Arc::new(PollerInner {
                state: Mutex::new(PollState {
                    queue: VecDeque::new(),
                    pending: HashMap::new(),
                    wakeups: 0,
                }),
                cond: Condvar::new(),
                os_reactor: std::sync::OnceLock::new(),
            }),
        }
    }

    /// The kernel reactor owned by this poller, started on first use. All
    /// OS-socket registrations made through this poller land in its epoll
    /// set; the reactor thread shuts down when the poller is dropped.
    pub(crate) fn os_reactor(&self) -> Arc<crate::tcp::OsReactor> {
        Arc::clone(
            self.inner
                .os_reactor
                .get_or_init(crate::tcp::OsReactor::start),
        )
    }

    /// Blocks until at least one event (or a manual [`Poller::wake`])
    /// arrives, or `timeout` elapses. Returns every queued event, oldest
    /// first; an empty vector means the wait timed out or was woken.
    pub fn wait(&self, timeout: Duration) -> Vec<Event> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if !state.queue.is_empty() || state.wakeups > 0 {
                state.wakeups = 0;
                let tokens: Vec<Token> = state.queue.drain(..).collect();
                return tokens
                    .into_iter()
                    .map(|token| Event {
                        token,
                        readiness: state.pending.remove(&token).unwrap_or_default(),
                    })
                    .collect();
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            self.inner.cond.wait_for(&mut state, deadline - now);
        }
    }

    /// Enqueues a user-generated event (the dispatcher uses this for
    /// task-exit notifications that do not originate in the substrate).
    pub fn post(&self, token: Token, readiness: Readiness) {
        self.inner.post(token, readiness);
    }

    /// Unblocks a concurrent (or the next) [`Poller::wait`] without
    /// delivering an event. Used to make shutdown prompt.
    pub fn wake(&self) {
        let mut state = self.inner.state.lock();
        state.wakeups += 1;
        self.inner.cond.notify_all();
    }

    /// Number of events currently queued (diagnostics).
    pub fn queued(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    pub(crate) fn slot(&self, token: Token) -> WakerSlot {
        WakerSlot {
            inner: Arc::clone(&self.inner),
            token,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::pair;
    use crate::costs::StackCosts;
    use crate::error::NetError;

    #[test]
    fn post_then_wait_delivers_in_order() {
        let poller = Poller::new();
        poller.post(Token(1), Readiness::readable());
        poller.post(Token(2), Readiness::writable());
        let events = poller.wait(Duration::from_millis(10));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].token, Token(1));
        assert!(events[0].readiness.readable && !events[0].readiness.writable);
        assert_eq!(events[1].token, Token(2));
        assert!(events[1].readiness.writable);
    }

    #[test]
    fn events_for_one_token_coalesce() {
        let poller = Poller::new();
        poller.post(Token(7), Readiness::readable());
        poller.post(Token(7), Readiness::writable().with_closed());
        let events = poller.wait(Duration::from_millis(10));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readiness.readable);
        assert!(events[0].readiness.writable);
        assert!(events[0].readiness.closed);
    }

    #[test]
    fn wait_times_out_empty() {
        let poller = Poller::new();
        let start = Instant::now();
        let events = poller.wait(Duration::from_millis(20));
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn wake_unblocks_wait_without_events() {
        let poller = Poller::new();
        let waker = poller.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            waker.wake();
        });
        let start = Instant::now();
        let events = poller.wait(Duration::from_secs(5));
        assert!(events.is_empty());
        assert!(start.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn wake_before_wait_is_not_lost() {
        let poller = Poller::new();
        poller.wake();
        let start = Instant::now();
        assert!(poller.wait(Duration::from_secs(5)).is_empty());
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn cross_thread_post_wakes_waiter() {
        let poller = Poller::new();
        let producer = poller.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            producer.post(Token(3), Readiness::readable());
        });
        let events = poller.wait(Duration::from_secs(5));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(3));
        handle.join().unwrap();
    }

    #[test]
    fn wake_batch_groups_by_destination_and_coalesces() {
        let a = Poller::new();
        let b = Poller::new();
        wake_batch(vec![
            (a.slot(Token(1)), Readiness::readable()),
            (b.slot(Token(2)), Readiness::writable()),
            (a.slot(Token(1)), Readiness::writable()),
            (a.slot(Token(3)), Readiness::readable()),
        ]);
        let events_a = a.wait(Duration::from_millis(10));
        assert_eq!(events_a.len(), 2);
        assert_eq!(events_a[0].token, Token(1));
        assert!(events_a[0].readiness.readable && events_a[0].readiness.writable);
        assert_eq!(events_a[1].token, Token(3));
        let events_b = b.wait(Duration::from_millis(10));
        assert_eq!(events_b.len(), 1);
        assert_eq!(events_b[0].token, Token(2));
        assert!(events_b[0].readiness.writable);
    }

    /// The lost-wakeup stress test of the readiness layer: N writer threads
    /// (each racing a closer) against one `Poller::wait` consumer. Every
    /// byte and every EOF must eventually be observed; a lost wakeup shows
    /// up as the consumer timing out with connections still open.
    #[test]
    fn stress_no_lost_wakeups() {
        const WRITERS: usize = 8;
        const BYTES_PER_WRITER: usize = 64 * 1024;

        let poller = Poller::new();
        let mut readers = Vec::new();
        let mut handles = Vec::new();
        for i in 0..WRITERS {
            let (client, server) = pair(
                i as u64,
                StackCosts::free(),
                None,
                // Small pipes force many buffer-full / buffer-drained
                // transitions per connection.
                4 * 1024,
            );
            server.register(&poller, Token(i as u64), Interest::READABLE);
            readers.push(server);
            handles.push(std::thread::spawn(move || {
                let chunk = [0x5au8; 997];
                let mut sent = 0usize;
                while sent < BYTES_PER_WRITER {
                    let n = (BYTES_PER_WRITER - sent).min(chunk.len());
                    client.write_all(&chunk[..n]).expect("peer stays open");
                    sent += n;
                }
                // The closer races the consumer's final reads.
                client.close();
            }));
        }

        let mut received = vec![0usize; WRITERS];
        let mut eof = vec![false; WRITERS];
        let mut buf = [0u8; 2048];
        let deadline = Instant::now() + Duration::from_secs(30);
        while eof.iter().any(|done| !done) {
            assert!(
                Instant::now() < deadline,
                "lost wakeup: received {received:?}, eof {eof:?}"
            );
            for event in poller.wait(Duration::from_millis(100)) {
                let idx = event.token.0 as usize;
                loop {
                    match readers[idx].read(&mut buf) {
                        Ok(n) => received[idx] += n,
                        Err(NetError::WouldBlock) => break,
                        Err(NetError::Closed) => {
                            eof[idx] = true;
                            break;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
        for (i, handle) in handles.into_iter().enumerate() {
            handle.join().unwrap();
            assert_eq!(received[i], BYTES_PER_WRITER, "writer {i}");
        }
    }
}
