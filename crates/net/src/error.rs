//! Error type for the simulated network substrate.

use std::fmt;

/// Errors returned by network operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The operation would block (no data to read, or the peer's receive
    /// buffer / link budget is full). Mirrors `EWOULDBLOCK`.
    WouldBlock,
    /// The connection has been closed by the peer and all buffered data has
    /// already been consumed.
    Closed,
    /// No listener is bound to the requested port.
    ConnectionRefused,
    /// A listener is already bound to the requested port.
    AddrInUse,
    /// The listener has been shut down.
    ListenerClosed,
    /// A blocking operation timed out.
    TimedOut,
    /// The process (or kernel) is temporarily out of resources —
    /// `EMFILE`/`ENFILE`/`ENOBUFS`/`ENOMEM` on an accept, or an injected
    /// exhaustion fault on the simulated substrate. The operation may
    /// succeed later; accept loops must back off and retry, never die.
    Resources,
    /// An OS-level I/O error from the real-socket transport that has no
    /// simulated counterpart (the common socket failures — would-block,
    /// resets, refusals — are mapped onto the variants above).
    Io(std::io::ErrorKind),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetError::WouldBlock => "operation would block",
            NetError::Closed => "connection closed by peer",
            NetError::ConnectionRefused => "connection refused: no listener on port",
            NetError::AddrInUse => "address already in use",
            NetError::ListenerClosed => "listener closed",
            NetError::TimedOut => "operation timed out",
            NetError::Resources => "temporarily out of resources (fd or buffer exhaustion)",
            NetError::Io(kind) => return write!(f, "os io error: {kind}"),
        };
        f.write_str(s)
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert_eq!(NetError::WouldBlock.to_string(), "operation would block");
        assert!(NetError::ConnectionRefused.to_string().contains("refused"));
    }
}
