//! Substrate-wide counters used by the benchmark harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counters describing everything that crossed the substrate.
///
/// The counters are updated with relaxed atomics on the data path and read
/// by the harness after (or during) a run; exactness under concurrent reads
/// is not required, monotonicity is.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections successfully established.
    pub connections_opened: AtomicU64,
    /// Connections fully closed.
    pub connections_closed: AtomicU64,
    /// Bytes written into the substrate (all connections, both directions).
    pub bytes_sent: AtomicU64,
    /// Bytes read out of the substrate.
    pub bytes_received: AtomicU64,
    /// Read calls issued (including ones that returned `WouldBlock`).
    pub read_calls: AtomicU64,
    /// Write calls issued.
    pub write_calls: AtomicU64,
    /// `Endpoint::readable` checks issued. The poll-mode dispatcher pays
    /// one per watched connection per tick; the event-driven dispatcher
    /// pays none, which is what the idle-service tests assert.
    pub readable_polls: AtomicU64,
    /// `Endpoint::writable` checks issued (the write-side counterpart of
    /// `readable_polls`: the poll-mode dispatcher scans them, the event
    /// backend relies on writable-interest registrations instead).
    pub writable_polls: AtomicU64,
    /// Vectored (`writev`-style) write calls: writes that handed the
    /// substrate more than one segment in one call — the batched-syscall
    /// output path, where header+body leave together without a staging
    /// copy. Every vectored write is also counted in `write_calls` and its
    /// bytes in `bytes_sent`, so the byte-conservation law is unchanged.
    pub vectored_writes: AtomicU64,
    /// Segments carried by those vectored writes (≥ one per call).
    pub vectored_segments: AtomicU64,
    /// Ingest-buffer copy events: fills of a [`crate::SharedBuf`] that had
    /// to carry live bytes to a new (or compacted) chunk. Zero on the
    /// shared-buffer fast path — the regression assertion behind the
    /// zero-copy data plane.
    pub ingest_copies: AtomicU64,
    /// Bytes moved by those ingest copy events.
    pub ingest_copied_bytes: AtomicU64,
    /// Connections terminated because their byte stream failed to parse
    /// (a malformed or over-limit frame). Each such close also appears in
    /// `connections_closed`; this counter isolates the hostile-traffic
    /// blast radius so the sim battery can assert it stays confined to
    /// the offending connections.
    pub malformed_closes: AtomicU64,
}

impl NetStats {
    /// Creates a fresh, shareable counter block.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(NetStats::default())
    }

    /// Records an opened connection.
    pub fn record_open(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection.
    pub fn record_close(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write of `n` bytes.
    pub fn record_write(&self, n: usize) {
        self.write_calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records a read of `n` bytes.
    pub fn record_read(&self, n: usize) {
        self.read_calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one `Endpoint::readable` poll.
    pub fn record_readable_poll(&self) {
        self.readable_polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `Endpoint::writable` poll.
    pub fn record_writable_poll(&self) {
        self.writable_polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one vectored write that carried `segments` segments (call
    /// [`NetStats::record_write`] separately for the bytes, as the scalar
    /// path does — the vectored counters only add the shape).
    pub fn record_vectored(&self, segments: usize) {
        self.vectored_writes.fetch_add(1, Ordering::Relaxed);
        self.vectored_segments
            .fetch_add(segments as u64, Ordering::Relaxed);
    }

    /// Records one ingest-buffer carry of `n` live bytes.
    pub fn record_ingest_copy(&self, n: usize) {
        self.ingest_copies.fetch_add(1, Ordering::Relaxed);
        self.ingest_copied_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one connection close caused by a malformed stream. Call
    /// *after* the close itself has been recorded, so a snapshot (which
    /// loads this counter before `connections_closed`) can never observe
    /// the malformed close without its plain close.
    pub fn record_malformed_close(&self) {
        self.malformed_closes.fetch_add(1, Ordering::Release);
    }

    /// A point-in-time copy of all counters.
    ///
    /// `bytes_received` is loaded *before* `bytes_sent` (and closes before
    /// opens): senders record under the pipe lock before their reader can
    /// observe the bytes, so this load order means a concurrent transfer
    /// can only ever inflate the "sent" side of a snapshot — which keeps
    /// [`StatsSnapshot::check_conservation`] free of false positives while
    /// traffic is in flight.
    pub fn snapshot(&self) -> StatsSnapshot {
        // Loaded before `connections_closed`: a malformed close records the
        // plain close first, so the close counter can only be inflated
        // relative to this one, keeping `malformed_closes ≤
        // connections_closed` sound mid-flight.
        let malformed_closes = self.malformed_closes.load(Ordering::Acquire);
        let bytes_received = self.bytes_received.load(Ordering::Acquire);
        let connections_closed = self.connections_closed.load(Ordering::Acquire);
        StatsSnapshot {
            malformed_closes,
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed,
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received,
            read_calls: self.read_calls.load(Ordering::Relaxed),
            write_calls: self.write_calls.load(Ordering::Relaxed),
            readable_polls: self.readable_polls.load(Ordering::Relaxed),
            writable_polls: self.writable_polls.load(Ordering::Relaxed),
            vectored_writes: self.vectored_writes.load(Ordering::Relaxed),
            vectored_segments: self.vectored_segments.load(Ordering::Relaxed),
            ingest_copies: self.ingest_copies.load(Ordering::Relaxed),
            ingest_copied_bytes: self.ingest_copied_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`NetStats`] taken at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections successfully established.
    pub connections_opened: u64,
    /// Connections fully closed.
    pub connections_closed: u64,
    /// Bytes written into the substrate.
    pub bytes_sent: u64,
    /// Bytes read out of the substrate.
    pub bytes_received: u64,
    /// Read calls issued.
    pub read_calls: u64,
    /// Write calls issued.
    pub write_calls: u64,
    /// `Endpoint::readable` checks issued.
    pub readable_polls: u64,
    /// `Endpoint::writable` checks issued.
    pub writable_polls: u64,
    /// Vectored write calls (see [`NetStats::vectored_writes`]).
    pub vectored_writes: u64,
    /// Segments carried by vectored writes.
    pub vectored_segments: u64,
    /// Ingest-buffer carry events (see [`NetStats::ingest_copies`]).
    pub ingest_copies: u64,
    /// Bytes moved by ingest carries.
    pub ingest_copied_bytes: u64,
    /// Connections closed due to malformed input (see
    /// [`NetStats::malformed_closes`]).
    pub malformed_closes: u64,
}

impl StatsSnapshot {
    /// Megabits represented by `bytes_received`, convenient for Figure 6.
    pub fn received_megabits(&self) -> f64 {
        self.bytes_received as f64 * 8.0 / 1_000_000.0
    }

    /// Checks the substrate's conservation laws, shared by the simulation
    /// harness's tick checks and the end-to-end suite so counter math is
    /// derived in exactly one place:
    ///
    /// * bytes cannot be read that were never written
    ///   (`bytes_received ≤ bytes_sent` — a pipe may still hold or drop
    ///   buffered bytes at close, never invent them);
    /// * a connection has two endpoints, each closed at most once
    ///   (`connections_closed ≤ 2 × connections_opened`);
    /// * ingest-copy events and the bytes they moved appear together;
    /// * the writev path is a subset of the write path: every vectored
    ///   write is also a write call (`vectored_writes ≤ write_calls`) and
    ///   carries at least one segment
    ///   (`vectored_segments ≥ vectored_writes`) — so bytes leaving as
    ///   vectored writes are already inside `bytes_sent` and the bytes-out
    ///   law above covers them.
    ///
    /// Counters are written with relaxed atomics. The checks stay sound
    /// under concurrency because every receive is preceded by its send and
    /// [`NetStats::snapshot`] reads `bytes_received` before `bytes_sent`:
    /// a concurrent transfer can only inflate the right-hand side of the
    /// inequality, never the left.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.bytes_received > self.bytes_sent {
            return Err(format!(
                "byte conservation violated: received {} > sent {}",
                self.bytes_received, self.bytes_sent
            ));
        }
        if self.connections_closed > 2 * self.connections_opened {
            return Err(format!(
                "connection conservation violated: {} closes for {} opens \
                 (max 2 per connection)",
                self.connections_closed, self.connections_opened
            ));
        }
        if self.vectored_writes > self.write_calls {
            return Err(format!(
                "writev conservation violated: {} vectored writes > {} write calls \
                 (a vectored write must be recorded as a write call)",
                self.vectored_writes, self.write_calls
            ));
        }
        if self.vectored_segments < self.vectored_writes {
            return Err(format!(
                "writev conservation violated: {} segments < {} vectored writes \
                 (every vectored write carries at least one segment)",
                self.vectored_segments, self.vectored_writes
            ));
        }
        if (self.ingest_copies == 0) != (self.ingest_copied_bytes == 0) {
            return Err(format!(
                "ingest accounting inconsistent: {} copy events moved {} bytes",
                self.ingest_copies, self.ingest_copied_bytes
            ));
        }
        if self.malformed_closes > self.connections_closed {
            return Err(format!(
                "malformed-close conservation violated: {} malformed closes > {} closes \
                 (every malformed close is a close)",
                self.malformed_closes, self.connections_closed
            ));
        }
        Ok(())
    }

    /// The zero-copy data-plane gate: no ingest-buffer carries at all.
    pub fn check_zero_copy(&self) -> Result<(), String> {
        if self.ingest_copies != 0 {
            return Err(format!(
                "zero-copy ingest violated: {} copy events moved {} bytes",
                self.ingest_copies, self.ingest_copied_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = NetStats::default();
        stats.record_open();
        stats.record_write(100);
        stats.record_write(50);
        stats.record_read(100);
        stats.record_close();
        let snap = stats.snapshot();
        assert_eq!(snap.connections_opened, 1);
        assert_eq!(snap.connections_closed, 1);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.bytes_received, 100);
        assert_eq!(snap.write_calls, 2);
    }

    #[test]
    fn conservation_accepts_a_real_run_shape() {
        let snap = StatsSnapshot {
            connections_opened: 10,
            connections_closed: 18,
            bytes_sent: 4096,
            bytes_received: 4096,
            ..Default::default()
        };
        snap.check_conservation().unwrap();
        snap.check_zero_copy().unwrap();
    }

    #[test]
    fn conservation_rejects_invented_bytes() {
        let snap = StatsSnapshot {
            bytes_sent: 100,
            bytes_received: 101,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("byte conservation"), "{err}");
    }

    #[test]
    fn conservation_rejects_excess_closes() {
        let snap = StatsSnapshot {
            connections_opened: 3,
            connections_closed: 7,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("connection conservation"), "{err}");
    }

    #[test]
    fn conservation_rejects_vectored_writes_outside_write_calls() {
        let snap = StatsSnapshot {
            write_calls: 2,
            vectored_writes: 3,
            vectored_segments: 6,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("writev conservation"), "{err}");
    }

    #[test]
    fn conservation_rejects_fewer_segments_than_vectored_writes() {
        let snap = StatsSnapshot {
            write_calls: 5,
            vectored_writes: 3,
            vectored_segments: 2,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("at least one segment"), "{err}");
    }

    #[test]
    fn conservation_accepts_a_vectored_run_shape() {
        let snap = StatsSnapshot {
            bytes_sent: 1000,
            bytes_received: 1000,
            connections_opened: 2,
            write_calls: 10,
            vectored_writes: 4,
            vectored_segments: 8,
            ..Default::default()
        };
        snap.check_conservation().unwrap();
    }

    #[test]
    fn conservation_rejects_inconsistent_ingest_accounting() {
        let snap = StatsSnapshot {
            ingest_copies: 2,
            ingest_copied_bytes: 0,
            ..Default::default()
        };
        assert!(snap.check_conservation().is_err());
        let snap = StatsSnapshot {
            ingest_copies: 0,
            ingest_copied_bytes: 5,
            ..Default::default()
        };
        assert!(snap.check_conservation().is_err());
    }

    #[test]
    fn conservation_rejects_malformed_closes_outside_closes() {
        let snap = StatsSnapshot {
            connections_opened: 2,
            connections_closed: 1,
            malformed_closes: 2,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("malformed-close conservation"), "{err}");
    }

    #[test]
    fn malformed_close_is_recorded_alongside_the_close() {
        let stats = NetStats::default();
        stats.record_open();
        stats.record_close();
        stats.record_malformed_close();
        let snap = stats.snapshot();
        assert_eq!(snap.malformed_closes, 1);
        snap.check_conservation().unwrap();
    }

    #[test]
    fn zero_copy_gate_reports_copies() {
        let snap = StatsSnapshot {
            ingest_copies: 1,
            ingest_copied_bytes: 512,
            ..Default::default()
        };
        let err = snap.check_zero_copy().unwrap_err();
        assert!(err.contains("512 bytes"), "{err}");
    }

    #[test]
    fn megabit_conversion() {
        let snap = StatsSnapshot {
            bytes_received: 1_000_000,
            ..Default::default()
        };
        assert!((snap.received_megabits() - 8.0).abs() < 1e-9);
    }
}
