//! Token-bucket rate limiting for simulated links.
//!
//! The paper's testbed connects clients and back-ends over 1 Gbps NICs while
//! the FLICK middlebox has a 10 Gbps NIC; the Hadoop experiment (Figure 6)
//! is explicitly bounded by the 8×1 Gbps mapper links. A [`TokenBucket`]
//! models such a link: writers acquire tokens (bytes) and are either made to
//! wait or told how many bytes they may send now.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// A token bucket expressed in bytes per second.
#[derive(Debug)]
pub struct TokenBucket {
    state: Mutex<BucketState>,
    bytes_per_sec: f64,
    burst: f64,
    created: Instant,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
    /// Total budget ever handed out by `try_acquire`.
    granted: f64,
    /// Total budget actually credited back by `refund` (capped at what the
    /// bucket could absorb, so the conservation bound stays tight).
    refunded: f64,
}

impl TokenBucket {
    /// Creates a bucket with the given sustained rate in bits per second and
    /// a burst allowance of `burst_bytes`.
    pub fn new_bits_per_sec(bits_per_sec: u64, burst_bytes: usize) -> Self {
        let bytes_per_sec = bits_per_sec as f64 / 8.0;
        let now = Instant::now();
        TokenBucket {
            state: Mutex::new(BucketState {
                tokens: burst_bytes as f64,
                last_refill: now,
                granted: 0.0,
                refunded: 0.0,
            }),
            bytes_per_sec,
            burst: burst_bytes as f64,
            created: now,
        }
    }

    /// Creates a 1 Gbps bucket with a 64 KiB burst, the shape of the
    /// testbed's client/back-end NICs.
    pub fn one_gbps() -> Self {
        TokenBucket::new_bits_per_sec(1_000_000_000, 64 * 1024)
    }

    /// The configured sustained rate in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    fn refill(&self, state: &mut BucketState) {
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_refill).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.bytes_per_sec).min(self.burst);
        state.last_refill = now;
    }

    /// Attempts to acquire up to `wanted` bytes of budget without waiting.
    ///
    /// Returns how many bytes may be sent now (possibly 0).
    pub fn try_acquire(&self, wanted: usize) -> usize {
        let mut state = self.state.lock();
        self.refill(&mut state);
        let granted = (wanted as f64).min(state.tokens).floor();
        state.tokens -= granted;
        state.granted += granted;
        granted as usize
    }

    /// Returns `unused` bytes of previously acquired budget to the bucket
    /// (capped at the burst size, like any refill).
    ///
    /// The OS transport needs this: unlike the simulated pipes, the number
    /// of bytes the kernel will accept is unknowable before the `write`
    /// call, so a writer acquires for the attempt and refunds what the
    /// socket did not take — otherwise a full send buffer would silently
    /// burn link budget.
    pub fn refund(&self, unused: usize) {
        let mut state = self.state.lock();
        let credited = (state.tokens + unused as f64).min(self.burst) - state.tokens;
        state.tokens += credited;
        state.refunded += credited;
    }

    /// How long until `wanted` bytes (capped at the burst size) could be
    /// acquired at the sustained rate; [`Duration::ZERO`] if at least that
    /// many tokens are available now.
    ///
    /// Rate-limited writers use this as their backoff hint: sleeping for
    /// the actual refill interval instead of a fixed quantum means they
    /// wake exactly when the budget exists, neither spinning nor
    /// oversleeping.
    pub fn next_available(&self, wanted: usize) -> Duration {
        let mut state = self.state.lock();
        self.refill(&mut state);
        let target = (wanted as f64).min(self.burst).max(1.0);
        let deficit = target - state.tokens;
        if deficit <= 0.0 {
            return Duration::ZERO;
        }
        if self.bytes_per_sec <= 0.0 {
            // A zero-rate bucket never refills; report a bounded wait so
            // callers stay responsive to shutdown.
            return Duration::from_millis(5);
        }
        Duration::from_secs_f64(deficit / self.bytes_per_sec)
    }

    /// A consistent point-in-time view of the bucket's accounting, taken
    /// under the state lock so concurrent acquires cannot skew it.
    pub fn audit(&self) -> BucketAudit {
        let state = self.state.lock();
        BucketAudit {
            granted: state.granted,
            refunded: state.refunded,
            tokens: state.tokens,
            elapsed: self.created.elapsed(),
            burst: self.burst,
            bytes_per_sec: self.bytes_per_sec,
        }
    }

    /// Checks token conservation: the total budget ever granted can never
    /// exceed the initial burst plus what the clock has refilled plus what
    /// writers credited back. A violation means the bucket minted link
    /// budget out of thin air (or lost track of a refund).
    pub fn check_conservation(&self) -> Result<(), String> {
        self.audit().check_conservation()
    }

    /// Acquires exactly `wanted` bytes, sleeping until the budget is
    /// available. Used by (client-side) blocking writers.
    pub fn acquire_blocking(&self, wanted: usize) {
        let mut remaining = wanted;
        while remaining > 0 {
            let granted = self.try_acquire(remaining);
            remaining -= granted;
            if remaining > 0 {
                // Sleep for the actual refill interval, capped so that
                // shutdown remains responsive.
                let wait = self
                    .next_available(remaining)
                    .clamp(Duration::from_micros(50), Duration::from_millis(5));
                std::thread::sleep(wait);
            }
        }
    }
}

/// Point-in-time accounting view of a [`TokenBucket`], for the harness's
/// token-conservation invariant.
#[derive(Debug, Clone, Copy)]
pub struct BucketAudit {
    /// Total bytes of budget ever granted.
    pub granted: f64,
    /// Total bytes of budget credited back by refunds.
    pub refunded: f64,
    /// Tokens currently in the bucket.
    pub tokens: f64,
    /// Time since the bucket was created.
    pub elapsed: std::time::Duration,
    /// Burst allowance in bytes.
    pub burst: f64,
    /// Sustained rate in bytes per second.
    pub bytes_per_sec: f64,
}

impl BucketAudit {
    /// The conservation check: `granted ≤ burst + rate·elapsed + refunded`
    /// (plus a float-rounding slack of one byte per million granted).
    ///
    /// The elapsed time is measured *after* the grant totals were read, so
    /// the budget side of the inequality can only be over-, never
    /// under-estimated — the check has no false positives under
    /// concurrency.
    pub fn check_conservation(&self) -> Result<(), String> {
        let budget = self.burst + self.bytes_per_sec * self.elapsed.as_secs_f64() + self.refunded;
        let slack = 1.0 + self.granted * 1e-6;
        if self.granted <= budget + slack {
            Ok(())
        } else {
            Err(format!(
                "token bucket over-granted: granted {:.0} B > burst {:.0} B \
                 + {:.0} B/s x {:.3}s + refunded {:.0} B",
                self.granted,
                self.burst,
                self.bytes_per_sec,
                self.elapsed.as_secs_f64(),
                self.refunded,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_available_immediately() {
        let bucket = TokenBucket::new_bits_per_sec(8_000, 1000);
        assert_eq!(bucket.try_acquire(500), 500);
        assert_eq!(bucket.try_acquire(500), 500);
        // Burst exhausted; the 1 kB/s rate grants almost nothing instantly.
        assert!(bucket.try_acquire(500) < 10);
    }

    #[test]
    fn rate_limits_sustained_throughput() {
        // 8 Mbit/s = 1 MB/s; sending 120 kB should take roughly 0.1 s.
        let bucket = TokenBucket::new_bits_per_sec(8_000_000, 20 * 1024);
        let start = Instant::now();
        let mut sent = 0usize;
        while sent < 120 * 1024 {
            let granted = bucket.try_acquire(8 * 1024);
            sent += granted;
            if granted == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed > 0.05, "sent {sent} bytes too fast: {elapsed}s");
        assert!(elapsed < 1.0, "rate limiter far too slow: {elapsed}s");
    }

    #[test]
    fn acquire_blocking_waits_for_budget() {
        let bucket = TokenBucket::new_bits_per_sec(80_000_000, 1024);
        let start = Instant::now();
        // 100 kB at 10 MB/s is about 10 ms.
        bucket.acquire_blocking(100 * 1024);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn next_available_reports_the_refill_interval() {
        // 1 MB/s, burst exhausted: 1000 bytes should be ~1 ms away.
        let bucket = TokenBucket::new_bits_per_sec(8_000_000, 1000);
        assert_eq!(bucket.try_acquire(1000), 1000);
        let wait = bucket.next_available(1000);
        assert!(wait > Duration::from_micros(500), "{wait:?}");
        assert!(wait < Duration::from_millis(5), "{wait:?}");
        // With tokens in hand the wait is zero.
        std::thread::sleep(wait);
        assert_eq!(bucket.next_available(500), Duration::ZERO);
    }

    #[test]
    fn next_available_caps_the_target_at_the_burst() {
        let bucket = TokenBucket::new_bits_per_sec(8_000, 100);
        assert_eq!(bucket.try_acquire(100), 100);
        // Asking for far more than the burst must not report an unbounded
        // wait: the bucket can never hold more than `burst` tokens.
        let wait = bucket.next_available(1_000_000);
        assert!(wait <= Duration::from_secs_f64(100.0 / 1000.0) + Duration::from_millis(1));
    }

    #[test]
    fn refund_returns_budget_up_to_the_burst() {
        let bucket = TokenBucket::new_bits_per_sec(8_000, 1000);
        assert_eq!(bucket.try_acquire(1000), 1000);
        bucket.refund(400);
        assert_eq!(bucket.try_acquire(1000), 400);
        // Refunds never overfill past the burst allowance.
        bucket.refund(5000);
        assert_eq!(bucket.try_acquire(2000), 1000);
    }

    #[test]
    fn one_gbps_preset() {
        let bucket = TokenBucket::one_gbps();
        assert!((bucket.bytes_per_sec() - 125_000_000.0).abs() < 1.0);
    }

    #[test]
    fn conservation_holds_under_acquire_refund_churn() {
        let bucket = TokenBucket::new_bits_per_sec(80_000_000, 16 * 1024);
        for i in 0..2000 {
            let got = bucket.try_acquire(1024);
            if i % 7 == 0 && got > 0 {
                bucket.refund(got / 2);
            }
            bucket.check_conservation().unwrap();
        }
        let audit = bucket.audit();
        assert!(audit.granted > 0.0);
        assert!(audit.tokens <= audit.burst);
    }

    #[test]
    fn conservation_holds_under_concurrent_writers() {
        let bucket = std::sync::Arc::new(TokenBucket::new_bits_per_sec(800_000_000, 64 * 1024));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let bucket = std::sync::Arc::clone(&bucket);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let got = bucket.try_acquire(4096);
                        if got > 2048 {
                            bucket.refund(got - 2048);
                        }
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            bucket.check_conservation().unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        for h in handles {
            h.join().unwrap();
        }
        bucket.check_conservation().unwrap();
    }

    #[test]
    fn conservation_detects_a_cooked_audit() {
        // A hand-built audit claiming more grants than burst + refill +
        // refunds could cover must be rejected — the detector side of the
        // invariant has to actually fire.
        let audit = BucketAudit {
            granted: 1_000_000.0,
            refunded: 0.0,
            tokens: 0.0,
            elapsed: Duration::from_millis(10),
            burst: 1000.0,
            bytes_per_sec: 1000.0,
        };
        assert!(audit.check_conservation().is_err());
    }
}
