//! Pre-allocated pools: backend connections and byte buffers.
//!
//! §5 of the paper stresses that the platform avoids dynamic allocation on
//! the data path: buffers are drawn from a pre-allocated pool, and the graph
//! dispatcher maintains pre-created resources to avoid per-connection setup
//! costs. This module provides both pools; the dispatch ablation benchmark
//! (`benches/dispatch.rs`) measures their effect.

use crate::error::RuntimeError;
use flick_net::{Endpoint, SimNetwork, TcpStack};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A pool of reusable byte buffers.
///
/// Buffers are handed out with their previous contents cleared and returned
/// to the pool after use; if the pool is empty a new buffer is allocated (the
/// pool is an optimisation, not a correctness requirement).
#[derive(Debug)]
pub struct BufferPool {
    buffers: Mutex<Vec<Vec<u8>>>,
    buffer_capacity: usize,
    max_pooled: usize,
}

impl BufferPool {
    /// Creates a pool that pre-allocates `count` buffers of `buffer_capacity`
    /// bytes and keeps at most `count` buffers around.
    pub fn new(count: usize, buffer_capacity: usize) -> Arc<Self> {
        let buffers = (0..count)
            .map(|_| Vec::with_capacity(buffer_capacity))
            .collect();
        Arc::new(BufferPool {
            buffers: Mutex::new(buffers),
            buffer_capacity,
            max_pooled: count,
        })
    }

    /// Takes a buffer from the pool (or allocates one if the pool is empty).
    pub fn get(&self) -> Vec<u8> {
        match self.buffers.lock().pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(self.buffer_capacity),
        }
    }

    /// Returns a buffer to the pool.
    pub fn put(&self, buf: Vec<u8>) {
        let mut buffers = self.buffers.lock();
        if buffers.len() < self.max_pooled {
            buffers.push(buf);
        }
    }

    /// Number of buffers currently available.
    pub fn available(&self) -> usize {
        self.buffers.lock().len()
    }
}

/// One back-end a [`BackendPool`] can connect to: a port on the simulated
/// fabric or a socket address reached through an OS TCP stack. The pool —
/// and everything above it — treats both identically; the returned
/// [`Endpoint`] is the same transport-neutral handle either way.
#[derive(Clone)]
pub enum BackendTarget {
    /// A listener on the simulated network.
    Sim {
        /// The fabric the backend lives on.
        net: Arc<SimNetwork>,
        /// The backend's port.
        port: u16,
    },
    /// A real TCP server reached through the kernel.
    Tcp {
        /// The stack connections are opened on.
        stack: Arc<TcpStack>,
        /// The backend's socket address (e.g. `127.0.0.1:8100`).
        addr: String,
    },
}

impl BackendTarget {
    /// A human-readable address label for diagnostics.
    pub fn label(&self) -> String {
        match self {
            BackendTarget::Sim { port, .. } => format!("sim:{port}"),
            BackendTarget::Tcp { addr, .. } => format!("tcp:{addr}"),
        }
    }

    fn connect(&self) -> Result<Endpoint, RuntimeError> {
        match self {
            BackendTarget::Sim { net, port } => Ok(net.connect(*port)?),
            BackendTarget::Tcp { stack, addr } => Ok(stack.connect(addr)?),
        }
    }
}

/// Access to a service's back-end servers, over either transport.
///
/// `connect` always establishes a fresh connection (paying the stack's
/// connect cost); `checkout`/`checkin` maintain a pool of pre-established
/// connections per backend, which the dispatch ablation compares against.
/// Targets may be simulated ports, real TCP addresses, or a mix — a
/// TCP-fronted service can pool kernel-socket back-ends and complete the
/// all-TCP `client → LB → backend` path.
pub struct BackendPool {
    targets: Vec<BackendTarget>,
    pooled: Vec<Mutex<VecDeque<Endpoint>>>,
    pooling_enabled: bool,
}

impl std::fmt::Debug for BackendPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendPool")
            .field(
                "targets",
                &self.targets.iter().map(|t| t.label()).collect::<Vec<_>>(),
            )
            .field("pooling", &self.pooling_enabled)
            .finish()
    }
}

impl BackendPool {
    /// Creates a backend pool over ports of the simulated network.
    pub fn new(net: Arc<SimNetwork>, ports: Vec<u16>, pooling_enabled: bool) -> Arc<Self> {
        let targets = ports
            .into_iter()
            .map(|port| BackendTarget::Sim {
                net: Arc::clone(&net),
                port,
            })
            .collect();
        Self::over(targets, pooling_enabled)
    }

    /// Creates a backend pool over real TCP addresses.
    pub fn new_tcp(stack: Arc<TcpStack>, addrs: Vec<String>, pooling_enabled: bool) -> Arc<Self> {
        let targets = addrs
            .into_iter()
            .map(|addr| BackendTarget::Tcp {
                stack: Arc::clone(&stack),
                addr,
            })
            .collect();
        Self::over(targets, pooling_enabled)
    }

    /// Creates a backend pool over an explicit (possibly mixed-transport)
    /// target list.
    pub fn over(targets: Vec<BackendTarget>, pooling_enabled: bool) -> Arc<Self> {
        let pooled = targets
            .iter()
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        Arc::new(BackendPool {
            targets,
            pooled,
            pooling_enabled,
        })
    }

    /// Number of configured back-ends.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if no back-ends are configured.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The configured backend targets.
    pub fn targets(&self) -> &[BackendTarget] {
        &self.targets
    }

    /// Establishes a fresh connection to backend `idx`.
    pub fn connect(&self, idx: usize) -> Result<Endpoint, RuntimeError> {
        self.targets
            .get(idx)
            .ok_or_else(|| RuntimeError::Config(format!("backend index {idx} out of range")))?
            .connect()
    }

    /// Obtains a connection to backend `idx`, reusing a pooled one if
    /// pooling is enabled and one is available.
    pub fn checkout(&self, idx: usize) -> Result<Endpoint, RuntimeError> {
        if self.pooling_enabled {
            if let Some(slot) = self.pooled.get(idx) {
                if let Some(endpoint) = slot.lock().pop_front() {
                    if !endpoint.is_closed() && !endpoint.peer_closed() {
                        return Ok(endpoint);
                    }
                }
            }
        }
        self.connect(idx)
    }

    /// Returns a still-usable connection to the pool.
    pub fn checkin(&self, idx: usize, endpoint: Endpoint) {
        if !self.pooling_enabled || endpoint.is_closed() || endpoint.peer_closed() {
            return;
        }
        if let Some(slot) = self.pooled.get(idx) {
            slot.lock().push_back(endpoint);
        }
    }

    /// Number of pooled connections for backend `idx`.
    pub fn pooled_count(&self, idx: usize) -> usize {
        self.pooled.get(idx).map(|s| s.lock().len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_net::StackModel;

    #[test]
    fn buffer_pool_reuses_buffers() {
        let pool = BufferPool::new(2, 1024);
        assert_eq!(pool.available(), 2);
        let mut a = pool.get();
        a.extend_from_slice(b"junk");
        pool.put(a);
        let b = pool.get();
        assert!(b.is_empty(), "returned buffers must be cleared");
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn buffer_pool_caps_pooled_buffers() {
        let pool = BufferPool::new(1, 64);
        let a = pool.get();
        let b = pool.get();
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn backend_pool_connects_to_each_port() {
        let net = SimNetwork::new(StackModel::Free);
        let l1 = net.listen(9001).unwrap();
        let l2 = net.listen(9002).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9001, 9002], false);
        assert_eq!(pool.len(), 2);
        let _c1 = pool.connect(0).unwrap();
        let _c2 = pool.connect(1).unwrap();
        assert_eq!(l1.backlog(), 1);
        assert_eq!(l2.backlog(), 1);
        assert!(pool.connect(5).is_err());
    }

    #[test]
    fn checkout_reuses_checked_in_connections() {
        let net = SimNetwork::new(StackModel::Free);
        let _listener = net.listen(9003).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9003], true);
        let conn = pool.checkout(0).unwrap();
        let id = conn.id();
        pool.checkin(0, conn);
        assert_eq!(pool.pooled_count(0), 1);
        let again = pool.checkout(0).unwrap();
        assert_eq!(again.id(), id, "pooled connection should be reused");
        assert_eq!(pool.pooled_count(0), 0);
    }

    #[test]
    fn closed_connections_are_not_pooled() {
        let net = SimNetwork::new(StackModel::Free);
        let _listener = net.listen(9004).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9004], true);
        let conn = pool.checkout(0).unwrap();
        conn.close();
        pool.checkin(0, conn);
        assert_eq!(pool.pooled_count(0), 0);
    }

    #[test]
    fn pooling_disabled_always_connects_fresh() {
        let net = SimNetwork::new(StackModel::Free);
        let _listener = net.listen(9005).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9005], false);
        let conn = pool.checkout(0).unwrap();
        let id = conn.id();
        pool.checkin(0, conn);
        let again = pool.checkout(0).unwrap();
        assert_ne!(again.id(), id);
    }
}
