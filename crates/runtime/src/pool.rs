//! Pre-allocated pools: backend connections and byte buffers.
//!
//! §5 of the paper stresses that the platform avoids dynamic allocation on
//! the data path: buffers are drawn from a pre-allocated pool, and the graph
//! dispatcher maintains pre-created resources to avoid per-connection setup
//! costs. This module provides both pools; the dispatch ablation benchmark
//! (`benches/dispatch.rs`) measures their effect.

use crate::error::RuntimeError;
use crate::metrics::RuntimeMetrics;
use flick_net::{Endpoint, SimNetwork, TcpStack};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A pool of reusable byte buffers.
///
/// Buffers are handed out with their previous contents cleared and returned
/// to the pool after use; if the pool is empty a new buffer is allocated (the
/// pool is an optimisation, not a correctness requirement).
#[derive(Debug)]
pub struct BufferPool {
    buffers: Mutex<Vec<Vec<u8>>>,
    buffer_capacity: usize,
    max_pooled: usize,
}

impl BufferPool {
    /// Creates a pool that pre-allocates `count` buffers of `buffer_capacity`
    /// bytes and keeps at most `count` buffers around.
    pub fn new(count: usize, buffer_capacity: usize) -> Arc<Self> {
        let buffers = (0..count)
            .map(|_| Vec::with_capacity(buffer_capacity))
            .collect();
        Arc::new(BufferPool {
            buffers: Mutex::new(buffers),
            buffer_capacity,
            max_pooled: count,
        })
    }

    /// Takes a buffer from the pool (or allocates one if the pool is empty).
    pub fn get(&self) -> Vec<u8> {
        match self.buffers.lock().pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(self.buffer_capacity),
        }
    }

    /// Returns a buffer to the pool.
    pub fn put(&self, buf: Vec<u8>) {
        let mut buffers = self.buffers.lock();
        if buffers.len() < self.max_pooled {
            buffers.push(buf);
        }
    }

    /// Number of buffers currently available.
    pub fn available(&self) -> usize {
        self.buffers.lock().len()
    }
}

/// One back-end a [`BackendPool`] can connect to: a port on the simulated
/// fabric or a socket address reached through an OS TCP stack. The pool —
/// and everything above it — treats both identically; the returned
/// [`Endpoint`] is the same transport-neutral handle either way.
#[derive(Clone)]
pub enum BackendTarget {
    /// A listener on the simulated network.
    Sim {
        /// The fabric the backend lives on.
        net: Arc<SimNetwork>,
        /// The backend's port.
        port: u16,
    },
    /// A real TCP server reached through the kernel.
    Tcp {
        /// The stack connections are opened on.
        stack: Arc<TcpStack>,
        /// The backend's socket address (e.g. `127.0.0.1:8100`).
        addr: String,
    },
}

impl BackendTarget {
    /// A human-readable address label for diagnostics.
    pub fn label(&self) -> String {
        match self {
            BackendTarget::Sim { port, .. } => format!("sim:{port}"),
            BackendTarget::Tcp { addr, .. } => format!("tcp:{addr}"),
        }
    }

    fn connect(&self) -> Result<Endpoint, RuntimeError> {
        match self {
            BackendTarget::Sim { net, port } => Ok(net.connect(*port)?),
            BackendTarget::Tcp { stack, addr } => Ok(stack.connect(addr)?),
        }
    }
}

/// How a [`BackendPool`] orders candidate back-ends for a checkout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rotate over the targets, starting from the caller's hint (the
    /// connection-hash distribution) or an internal cursor.
    #[default]
    RoundRobin,
    /// Start from the target with the fewest outstanding checked-out
    /// connections (ties broken by index).
    LeastLoaded,
}

/// Backend health and retry policy.
///
/// Following the policy/mechanism separation argument, everything here is
/// *policy*: which backend to try first, how many failures eject one, how
/// long it sits out, and how many extra attempts a single checkout may
/// spend. The parsing bounds ([`flick_grammar::ParseLimits`]-style hard
/// mechanism limits) are enforced elsewhere regardless of this policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendPolicy {
    /// Candidate ordering.
    pub route: RoutePolicy,
    /// Consecutive connect/IO failures after which a backend is ejected
    /// from rotation.
    pub eject_after: u32,
    /// How long an ejected backend sits out before a readmit probe may
    /// try it again.
    pub eject_for: Duration,
    /// Extra connection attempts (against further targets) one
    /// [`BackendPool::checkout_healthy`] call may spend after its first
    /// pick fails. `0` fails fast.
    pub retry_budget: u32,
}

impl Default for BackendPolicy {
    fn default() -> Self {
        BackendPolicy {
            route: RoutePolicy::RoundRobin,
            eject_after: 2,
            eject_for: Duration::from_millis(250),
            retry_budget: 2,
        }
    }
}

/// Per-backend passive health state.
#[derive(Debug, Default)]
struct HealthSlot {
    state: Mutex<HealthState>,
    /// Connections handed out by `checkout_healthy` minus those returned
    /// via `checkin`/`release` — the least-loaded signal. Callers that
    /// never return connections degrade it to cumulative-assignment
    /// balancing, which still spreads load evenly across healthy targets.
    outstanding: AtomicU64,
}

#[derive(Debug, Default)]
struct HealthState {
    consecutive_failures: u32,
    /// `Some` while ejected: no regular traffic until the deadline, after
    /// which the backend becomes a probe candidate. Cleared (with a
    /// readmit) by the first success.
    ejected_until: Option<Instant>,
}

/// Access to a service's back-end servers, over either transport.
///
/// `connect` always establishes a fresh connection (paying the stack's
/// connect cost); `checkout`/`checkin` maintain a pool of pre-established
/// connections per backend, which the dispatch ablation compares against.
/// Targets may be simulated ports, real TCP addresses, or a mix — a
/// TCP-fronted service can pool kernel-socket back-ends and complete the
/// all-TCP `client → LB → backend` path.
///
/// [`BackendPool::checkout_healthy`] adds passive failure detection on
/// top: connect failures are remembered per backend, a backend that fails
/// [`BackendPolicy::eject_after`] times in a row is ejected for
/// [`BackendPolicy::eject_for`], one checkout spends at most
/// [`BackendPolicy::retry_budget`] extra attempts, and candidate order is
/// set by [`RoutePolicy`].
pub struct BackendPool {
    targets: Vec<BackendTarget>,
    pooled: Vec<Mutex<VecDeque<Endpoint>>>,
    pooling_enabled: bool,
    policy: BackendPolicy,
    health: Vec<HealthSlot>,
    cursor: AtomicUsize,
    metrics: Option<Arc<RuntimeMetrics>>,
}

impl std::fmt::Debug for BackendPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendPool")
            .field(
                "targets",
                &self.targets.iter().map(|t| t.label()).collect::<Vec<_>>(),
            )
            .field("pooling", &self.pooling_enabled)
            .finish()
    }
}

impl BackendPool {
    /// Creates a backend pool over ports of the simulated network.
    pub fn new(net: Arc<SimNetwork>, ports: Vec<u16>, pooling_enabled: bool) -> Arc<Self> {
        let targets = ports
            .into_iter()
            .map(|port| BackendTarget::Sim {
                net: Arc::clone(&net),
                port,
            })
            .collect();
        Self::over(targets, pooling_enabled)
    }

    /// Creates a backend pool over real TCP addresses.
    pub fn new_tcp(stack: Arc<TcpStack>, addrs: Vec<String>, pooling_enabled: bool) -> Arc<Self> {
        let targets = addrs
            .into_iter()
            .map(|addr| BackendTarget::Tcp {
                stack: Arc::clone(&stack),
                addr,
            })
            .collect();
        Self::over(targets, pooling_enabled)
    }

    /// Creates a backend pool over an explicit (possibly mixed-transport)
    /// target list, with the default [`BackendPolicy`] and no metrics.
    pub fn over(targets: Vec<BackendTarget>, pooling_enabled: bool) -> Arc<Self> {
        Self::configured(targets, pooling_enabled, BackendPolicy::default(), None)
    }

    /// Creates a backend pool with an explicit health/routing policy and
    /// an optional metrics block to record checkouts, retries, ejections
    /// and readmits into.
    pub fn configured(
        targets: Vec<BackendTarget>,
        pooling_enabled: bool,
        policy: BackendPolicy,
        metrics: Option<Arc<RuntimeMetrics>>,
    ) -> Arc<Self> {
        let pooled = targets
            .iter()
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        let health = targets.iter().map(|_| HealthSlot::default()).collect();
        Arc::new(BackendPool {
            targets,
            pooled,
            pooling_enabled,
            policy,
            health,
            cursor: AtomicUsize::new(0),
            metrics,
        })
    }

    /// The health/routing policy in effect.
    pub fn policy(&self) -> &BackendPolicy {
        &self.policy
    }

    /// Number of configured back-ends.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if no back-ends are configured.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The configured backend targets.
    pub fn targets(&self) -> &[BackendTarget] {
        &self.targets
    }

    /// Establishes a fresh connection to backend `idx`.
    pub fn connect(&self, idx: usize) -> Result<Endpoint, RuntimeError> {
        self.targets
            .get(idx)
            .ok_or_else(|| RuntimeError::Config(format!("backend index {idx} out of range")))?
            .connect()
    }

    /// Obtains a connection to backend `idx`, reusing a pooled one if
    /// pooling is enabled and one is available.
    pub fn checkout(&self, idx: usize) -> Result<Endpoint, RuntimeError> {
        if self.pooling_enabled {
            if let Some(slot) = self.pooled.get(idx) {
                if let Some(endpoint) = slot.lock().pop_front() {
                    if !endpoint.is_closed() && !endpoint.peer_closed() {
                        return Ok(endpoint);
                    }
                }
            }
        }
        self.connect(idx)
    }

    /// Returns a still-usable connection to the pool.
    pub fn checkin(&self, idx: usize, endpoint: Endpoint) {
        self.release(idx);
        if !self.pooling_enabled || endpoint.is_closed() || endpoint.peer_closed() {
            return;
        }
        if let Some(slot) = self.pooled.get(idx) {
            slot.lock().push_back(endpoint);
        }
    }

    /// Number of pooled connections for backend `idx`.
    pub fn pooled_count(&self, idx: usize) -> usize {
        self.pooled.get(idx).map(|s| s.lock().len()).unwrap_or(0)
    }

    // --- passive health -------------------------------------------------

    /// Obtains a connection to a *healthy* backend, retrying within the
    /// policy's budget.
    ///
    /// Candidates are ordered by [`RoutePolicy`] (round-robin starts at
    /// `hint % len` when a hint is given — the connection-hash
    /// distribution — or at an internal cursor otherwise), backends under
    /// an unexpired ejection are skipped, and a failed connect advances to
    /// the next candidate *within this same call*, so one dead backend
    /// never turns into a failed request while a sibling is up. Each extra
    /// attempt after the first consumes retry budget; when the budget (or
    /// the candidate list) is exhausted the last error is returned.
    ///
    /// A backend whose ejection period has expired is a probe candidate:
    /// it rejoins the candidate order, a success readmits it, a failure
    /// re-arms its ejection without a fresh ejection transition.
    ///
    /// When *every* backend is under an unexpired ejection there is
    /// nothing left to protect, so the ejection filter is dropped and the
    /// call routes over the full candidate order anyway — the checkout
    /// doubles as a probe, and a fleet that has come back is rediscovered
    /// on the first request instead of after the longest sit-out.
    ///
    /// Returns the backend index alongside the endpoint so the caller can
    /// [`BackendPool::checkin`] or [`BackendPool::release`] it later.
    pub fn checkout_healthy(&self, hint: Option<usize>) -> Result<(usize, Endpoint), RuntimeError> {
        let len = self.targets.len();
        if len == 0 {
            return Err(RuntimeError::Config("no backends configured".into()));
        }
        if let Some(m) = &self.metrics {
            RuntimeMetrics::add(&m.backend_checkouts, 1);
        }
        let order: Vec<usize> = match self.policy.route {
            RoutePolicy::RoundRobin => {
                let start = hint
                    .map(|h| h % len)
                    .unwrap_or_else(|| self.cursor.fetch_add(1, Ordering::Relaxed) % len);
                (0..len).map(|i| (start + i) % len).collect()
            }
            RoutePolicy::LeastLoaded => {
                let mut idxs: Vec<usize> = (0..len).collect();
                idxs.sort_by_key(|&i| (self.outstanding(i), i));
                idxs
            }
        };
        let now = Instant::now();
        let mut routable: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&idx| self.may_route_to(idx, now))
            .collect();
        if routable.is_empty() {
            // All ejected: last-resort probing over the full order.
            routable = order;
        }
        let max_attempts = len.min(self.policy.retry_budget as usize + 1);
        let mut attempts = 0usize;
        let mut last_err = None;
        for &idx in &routable {
            if attempts >= max_attempts {
                break;
            }
            attempts += 1;
            if attempts > 1 {
                if let Some(m) = &self.metrics {
                    RuntimeMetrics::add(&m.backend_retries, 1);
                }
            }
            match self.checkout(idx) {
                Ok(endpoint) => {
                    self.report_success(idx);
                    if let Some(slot) = self.health.get(idx) {
                        slot.outstanding.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((idx, endpoint));
                }
                Err(err) => {
                    self.report_failure(idx);
                    last_err = Some(err);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            RuntimeError::Config("all backends are ejected; none available".into())
        }))
    }

    /// Drops the outstanding-connection count for backend `idx` without
    /// returning a connection — for callers that close an endpoint
    /// obtained from [`BackendPool::checkout_healthy`] instead of checking
    /// it in.
    pub fn release(&self, idx: usize) {
        if let Some(slot) = self.health.get(idx) {
            let _ = slot
                .outstanding
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        }
    }

    /// Outstanding checked-out connections for backend `idx` (the
    /// least-loaded routing signal).
    pub fn outstanding(&self, idx: usize) -> u64 {
        self.health
            .get(idx)
            .map(|s| s.outstanding.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records an IO success against backend `idx`, resetting its failure
    /// streak and readmitting it if it was ejected.
    pub fn report_success(&self, idx: usize) {
        let Some(slot) = self.health.get(idx) else {
            return;
        };
        let mut state = slot.state.lock();
        state.consecutive_failures = 0;
        if state.ejected_until.take().is_some() {
            if let Some(m) = &self.metrics {
                RuntimeMetrics::add(&m.backend_readmits, 1);
            }
        }
    }

    /// Records a connect/IO failure against backend `idx` — the passive
    /// detection input. Crossing the policy's threshold ejects the
    /// backend; a failure while ejected (a failed readmit probe) re-arms
    /// the ejection deadline.
    pub fn report_failure(&self, idx: usize) {
        let Some(slot) = self.health.get(idx) else {
            return;
        };
        let mut state = slot.state.lock();
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if state.consecutive_failures >= self.policy.eject_after {
            let newly_ejected = state.ejected_until.is_none();
            state.ejected_until = Some(Instant::now() + self.policy.eject_for);
            if newly_ejected {
                if let Some(m) = &self.metrics {
                    RuntimeMetrics::add(&m.backend_ejections, 1);
                }
            }
        }
    }

    /// Returns `true` if backend `idx` is currently ejected (its sit-out
    /// period has not expired).
    pub fn is_ejected(&self, idx: usize) -> bool {
        self.health
            .get(idx)
            .map(|slot| {
                slot.state
                    .lock()
                    .ejected_until
                    .is_some_and(|until| until > Instant::now())
            })
            .unwrap_or(false)
    }

    /// Regular traffic goes to non-ejected backends; an expired ejection
    /// makes the backend a probe candidate again.
    fn may_route_to(&self, idx: usize, now: Instant) -> bool {
        self.health
            .get(idx)
            .map(|slot| {
                slot.state
                    .lock()
                    .ejected_until
                    .map_or(true, |until| until <= now)
            })
            .unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_net::StackModel;

    #[test]
    fn buffer_pool_reuses_buffers() {
        let pool = BufferPool::new(2, 1024);
        assert_eq!(pool.available(), 2);
        let mut a = pool.get();
        a.extend_from_slice(b"junk");
        pool.put(a);
        let b = pool.get();
        assert!(b.is_empty(), "returned buffers must be cleared");
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn buffer_pool_caps_pooled_buffers() {
        let pool = BufferPool::new(1, 64);
        let a = pool.get();
        let b = pool.get();
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn backend_pool_connects_to_each_port() {
        let net = SimNetwork::new(StackModel::Free);
        let l1 = net.listen(9001).unwrap();
        let l2 = net.listen(9002).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9001, 9002], false);
        assert_eq!(pool.len(), 2);
        let _c1 = pool.connect(0).unwrap();
        let _c2 = pool.connect(1).unwrap();
        assert_eq!(l1.backlog(), 1);
        assert_eq!(l2.backlog(), 1);
        assert!(pool.connect(5).is_err());
    }

    #[test]
    fn checkout_reuses_checked_in_connections() {
        let net = SimNetwork::new(StackModel::Free);
        let _listener = net.listen(9003).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9003], true);
        let conn = pool.checkout(0).unwrap();
        let id = conn.id();
        pool.checkin(0, conn);
        assert_eq!(pool.pooled_count(0), 1);
        let again = pool.checkout(0).unwrap();
        assert_eq!(again.id(), id, "pooled connection should be reused");
        assert_eq!(pool.pooled_count(0), 0);
    }

    #[test]
    fn closed_connections_are_not_pooled() {
        let net = SimNetwork::new(StackModel::Free);
        let _listener = net.listen(9004).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9004], true);
        let conn = pool.checkout(0).unwrap();
        conn.close();
        pool.checkin(0, conn);
        assert_eq!(pool.pooled_count(0), 0);
    }

    #[test]
    fn pooling_disabled_always_connects_fresh() {
        let net = SimNetwork::new(StackModel::Free);
        let _listener = net.listen(9005).unwrap();
        let pool = BackendPool::new(Arc::clone(&net), vec![9005], false);
        let conn = pool.checkout(0).unwrap();
        let id = conn.id();
        pool.checkin(0, conn);
        let again = pool.checkout(0).unwrap();
        assert_ne!(again.id(), id);
    }

    fn sim_targets(net: &Arc<SimNetwork>, ports: &[u16]) -> Vec<BackendTarget> {
        ports
            .iter()
            .map(|&port| BackendTarget::Sim {
                net: Arc::clone(net),
                port,
            })
            .collect()
    }

    /// The satellite fix: a failed connect advances past the dead target
    /// *within the same request* — the caller gets a sibling's connection,
    /// not an error.
    #[test]
    fn failed_connect_advances_past_dead_backend_in_the_same_call() {
        let net = SimNetwork::new(StackModel::Free);
        let _live = net.listen(9011).unwrap(); // 9010 has no listener
        let metrics = RuntimeMetrics::new_shared();
        let pool = BackendPool::configured(
            sim_targets(&net, &[9010, 9011]),
            false,
            BackendPolicy::default(),
            Some(Arc::clone(&metrics)),
        );
        let (idx, _conn) = pool.checkout_healthy(Some(0)).unwrap();
        assert_eq!(idx, 1, "checkout must advance past the dead target");
        let snap = metrics.snapshot();
        assert_eq!(snap.backend_checkouts, 1);
        assert_eq!(snap.backend_retries, 1);
        snap.check_retry_budget(pool.policy().retry_budget as u64)
            .unwrap();
    }

    #[test]
    fn repeated_failures_eject_then_probe_readmits() {
        let net = SimNetwork::new(StackModel::Free);
        let _live = net.listen(9013).unwrap();
        let metrics = RuntimeMetrics::new_shared();
        let policy = BackendPolicy {
            eject_after: 2,
            eject_for: Duration::from_millis(40),
            ..BackendPolicy::default()
        };
        let pool = BackendPool::configured(
            sim_targets(&net, &[9012, 9013]),
            false,
            policy,
            Some(Arc::clone(&metrics)),
        );
        // Two failed picks of backend 0 cross the threshold.
        for _ in 0..2 {
            let (idx, _conn) = pool.checkout_healthy(Some(0)).unwrap();
            assert_eq!(idx, 1);
        }
        assert!(pool.is_ejected(0));
        assert_eq!(metrics.snapshot().backend_ejections, 1);
        // While ejected, backend 0 is skipped without spending retries.
        let before = metrics.snapshot().backend_retries;
        let (idx, _conn) = pool.checkout_healthy(Some(0)).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(metrics.snapshot().backend_retries, before);
        // After the sit-out the backend comes back up; the probe readmits.
        std::thread::sleep(Duration::from_millis(50));
        let _revived = net.listen(9012).unwrap();
        let (idx, _conn) = pool.checkout_healthy(Some(0)).unwrap();
        assert_eq!(idx, 0);
        assert!(!pool.is_ejected(0));
        let snap = metrics.snapshot();
        assert_eq!(snap.backend_readmits, 1);
        snap.check_conservation().unwrap();
    }

    #[test]
    fn failed_probe_rearms_ejection_without_a_new_transition() {
        let net = SimNetwork::new(StackModel::Free);
        let _live = net.listen(9015).unwrap();
        let metrics = RuntimeMetrics::new_shared();
        let policy = BackendPolicy {
            eject_after: 1,
            eject_for: Duration::from_millis(20),
            ..BackendPolicy::default()
        };
        let pool = BackendPool::configured(
            sim_targets(&net, &[9014, 9015]),
            false,
            policy,
            Some(Arc::clone(&metrics)),
        );
        let _ = pool.checkout_healthy(Some(0)).unwrap();
        assert!(pool.is_ejected(0));
        std::thread::sleep(Duration::from_millis(25));
        // Probe fails (still no listener): the deadline re-arms but the
        // ejection count stays at one.
        let (idx, _conn) = pool.checkout_healthy(Some(0)).unwrap();
        assert_eq!(idx, 1);
        assert!(pool.is_ejected(0));
        assert_eq!(metrics.snapshot().backend_ejections, 1);
    }

    #[test]
    fn zero_retry_budget_fails_fast() {
        let net = SimNetwork::new(StackModel::Free);
        let _live = net.listen(9017).unwrap();
        let policy = BackendPolicy {
            retry_budget: 0,
            ..BackendPolicy::default()
        };
        let pool = BackendPool::configured(sim_targets(&net, &[9016, 9017]), false, policy, None);
        assert!(
            pool.checkout_healthy(Some(0)).is_err(),
            "budget 0 must not fail over"
        );
        // But a hint pointing at the live backend still succeeds.
        let (idx, _conn) = pool.checkout_healthy(Some(1)).unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn all_backends_ejected_falls_back_to_probing() {
        let net = SimNetwork::new(StackModel::Free);
        let policy = BackendPolicy {
            eject_after: 1,
            eject_for: Duration::from_secs(60),
            ..BackendPolicy::default()
        };
        let pool = BackendPool::configured(sim_targets(&net, &[9018]), false, policy, None);
        assert!(pool.checkout_healthy(None).is_err()); // fails and ejects
        assert!(pool.is_ejected(0));
        // With every target ejected the filter is dropped: the checkout
        // probes the dead backend (and still fails)...
        assert!(pool.checkout_healthy(None).is_err());
        // ...but the same last-resort probe rediscovers a revived fleet
        // immediately, without waiting out the 60s ejection.
        let _revived = net.listen(9018).unwrap();
        let (idx, _conn) = pool.checkout_healthy(None).unwrap();
        assert_eq!(idx, 0);
        assert!(!pool.is_ejected(0));
    }

    #[test]
    fn least_loaded_routes_to_the_idle_backend() {
        let net = SimNetwork::new(StackModel::Free);
        let _l1 = net.listen(9020).unwrap();
        let _l2 = net.listen(9021).unwrap();
        let policy = BackendPolicy {
            route: RoutePolicy::LeastLoaded,
            ..BackendPolicy::default()
        };
        let pool = BackendPool::configured(sim_targets(&net, &[9020, 9021]), false, policy, None);
        let (first, conn_a) = pool.checkout_healthy(None).unwrap();
        assert_eq!(first, 0, "ties break by index");
        let (second, _conn_b) = pool.checkout_healthy(None).unwrap();
        assert_eq!(second, 1, "the loaded backend is passed over");
        assert_eq!(pool.outstanding(0), 1);
        // Returning the first connection makes backend 0 least loaded again.
        drop(conn_a);
        pool.release(0);
        let (third, _conn_c) = pool.checkout_healthy(None).unwrap();
        assert_eq!(third, 0);
    }

    #[test]
    fn round_robin_without_hint_rotates() {
        let net = SimNetwork::new(StackModel::Free);
        let _l1 = net.listen(9022).unwrap();
        let _l2 = net.listen(9023).unwrap();
        let pool = BackendPool::configured(
            sim_targets(&net, &[9022, 9023]),
            false,
            BackendPolicy::default(),
            None,
        );
        let (a, _ca) = pool.checkout_healthy(None).unwrap();
        let (b, _cb) = pool.checkout_healthy(None).unwrap();
        assert_ne!(a, b, "cursor must rotate across calls");
    }
}
