//! The FLICK platform: sharded schedulers + substrate + deployed services.
//!
//! A [`Platform`] owns one [`crate::shard::Shard`] per configured core —
//! each with its own scheduler pool, dispatcher thread and poller — the
//! simulated network, and the global task-id allocator. Services are
//! deployed from a [`ServiceSpec`]; the spec's [`GraphFactory`] is invoked
//! by a shard dispatcher whenever enough client connections have arrived
//! to instantiate a new task graph (one connection for the HTTP and
//! Memcached services, all the mapper connections for the Hadoop
//! aggregator). Which shard a graph lands on is decided by the configured
//! [`Placement`] policy; idle shards additionally steal runnable tasks
//! from loaded ones through the scheduler's
//! [`steal`](crate::scheduler::steal) path.

use crate::dispatcher::{run_shard_dispatcher, DeployedService, DispatcherBackend, ServiceShared};
use crate::error::RuntimeError;
use crate::graph::{GraphInstance, TaskIdAllocator};
use crate::metrics::RuntimeMetrics;
use crate::pool::{BackendPolicy, BackendPool, BackendTarget};
use crate::scheduler::{Scheduler, StealGroup};
use crate::shard::{Placement, Shard, ShardCommand, ShardSet, ShardStatus};
use crate::task::{SchedulingPolicy, TaskId};
use crate::tasks::{ExecMode, OutputMode};
use crate::value::SharedDict;
use flick_net::{Endpoint, Interest, Listener, SimNetwork, StackModel, TcpStack};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// The default shard count: one per available core, as the paper sizes its
/// runtime ("the number of worker threads matches the number of cores").
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Configuration of a [`Platform`].
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Total worker threads, split across the shards (each shard keeps at
    /// least one; when the shard count divides into `workers` the split is
    /// exact, so the cores axis of the figure experiments stays honest).
    pub workers: usize,
    /// Number of shards (per-core scheduler + dispatcher + poller units).
    /// `0` (the default) means *auto*: one shard per available core, but
    /// never more shards than `workers` — a platform asked for 2 workers
    /// on a 16-core host runs 2 shards of 1 worker, not 16. See
    /// [`PlatformConfig::resolved_shards`].
    pub shards: usize,
    /// How new task graphs are placed onto shards.
    pub placement: Placement,
    /// Scheduling policy (cooperative with a 10–100 µs timeslice by default).
    pub policy: SchedulingPolicy,
    /// Transport-stack cost model for every connection.
    pub stack: StackModel,
    /// Which dispatcher implementation shards run (wakeup-based reactor
    /// by default; the sleep-poll loop remains available for ablations).
    pub dispatcher: DispatcherBackend,
    /// For [`DispatcherBackend::Poll`]: how often the dispatcher re-scans
    /// connections for readability. For [`DispatcherBackend::Event`] this
    /// is demoted to a lower bound on the drain/teardown heartbeat — the
    /// reactor blocks on events and never scans. Kept as a field so
    /// existing call sites compile unchanged.
    pub poll_interval: Duration,
    /// Capacity of task channels created by graph factories.
    pub channel_capacity: usize,
    /// Whether backend connections are drawn from a pre-established pool.
    pub backend_pooling: bool,
    /// Backend health/routing policy: candidate ordering, passive
    /// ejection thresholds and the per-checkout retry budget.
    pub backend_policy: BackendPolicy,
    /// How output tasks behave when a write blocks (wakeup-driven parking
    /// by default; the busy-retry loop remains available for ablations).
    pub output_mode: OutputMode,
    /// How compiled service logic executes (bytecode VM by default; the
    /// tree-walking interpreter remains available for ablations).
    pub exec_mode: ExecMode,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            workers: 4,
            shards: 0,
            placement: Placement::default(),
            policy: SchedulingPolicy::default(),
            stack: StackModel::Free,
            dispatcher: DispatcherBackend::default(),
            poll_interval: Duration::from_micros(50),
            channel_capacity: 1024,
            backend_pooling: false,
            backend_policy: BackendPolicy::default(),
            output_mode: OutputMode::default(),
            exec_mode: ExecMode::default(),
        }
    }
}

impl PlatformConfig {
    /// Convenience constructor used by the benchmark harness.
    pub fn new(workers: usize, stack: StackModel) -> Self {
        PlatformConfig {
            workers,
            stack,
            ..Default::default()
        }
    }

    /// The shard count this configuration resolves to: the explicit value
    /// if non-zero, otherwise one shard per available core capped at the
    /// worker count (so the configured `workers` total is always honoured
    /// exactly under the auto default).
    pub fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            default_shard_count().min(self.workers.max(1))
        } else {
            self.shards
        }
    }

    /// Worker threads of shard `shard` under this configuration: `workers`
    /// split across the shards with the remainder going to the lowest
    /// shards, floor one per shard. The per-shard counts sum to `workers`
    /// whenever the resolved shard count does not exceed it.
    pub fn workers_for_shard(&self, shard: usize) -> usize {
        let shards = self.resolved_shards();
        let base = self.workers / shards;
        let extra = usize::from(shard < self.workers % shards);
        (base + extra).max(1)
    }
}

/// Everything a [`GraphFactory`] may need while assembling a graph.
pub struct ServiceEnv {
    /// The network substrate (for opening backend connections directly).
    pub net: Arc<SimNetwork>,
    /// The service-wide shared dictionary backing FLICK `global` state.
    pub globals: SharedDict,
    /// The configured back-ends of the service.
    pub backends: Arc<BackendPool>,
    /// Allocator for task ids (pass to [`crate::graph::GraphBuilder`]).
    pub allocator: Arc<TaskIdAllocator>,
    /// Capacity to use for task channels.
    pub channel_capacity: usize,
    /// Blocked-write behaviour factories should install on the output
    /// tasks they build ([`crate::tasks::OutputTask::set_mode`]).
    pub output_mode: OutputMode,
    /// Execution mode compiled-service factories should build their
    /// compute logic for (bytecode VM or tree-walking interpreter).
    pub exec_mode: ExecMode,
}

/// One readiness watch a graph asks its dispatcher to maintain: when
/// `endpoint` transitions per `interest`, schedule `task`.
///
/// Input tasks watch readable transitions; output tasks watch writable
/// ones, which is what lets a blocked writer park instead of busy-retrying
/// — writable interest is a first-class dispatcher event on both
/// transports.
#[derive(Clone)]
pub struct Watch {
    /// The task to schedule.
    pub task: TaskId,
    /// The endpoint whose transitions are watched.
    pub endpoint: Endpoint,
    /// Which transitions matter.
    pub interest: Interest,
}

impl Watch {
    /// A readable watch (input tasks).
    pub fn readable(task: TaskId, endpoint: Endpoint) -> Self {
        Watch {
            task,
            endpoint,
            interest: Interest::READABLE,
        }
    }

    /// A writable watch (output tasks).
    pub fn writable(task: TaskId, endpoint: Endpoint) -> Self {
        Watch {
            task,
            endpoint,
            interest: Interest::WRITABLE,
        }
    }
}

/// A graph produced by a factory, plus the bookkeeping the dispatcher needs.
pub struct BuiltGraph {
    /// The assembled graph.
    pub graph: GraphInstance,
    /// Tasks to wake on endpoint readiness transitions (readable for
    /// input tasks, writable for output tasks).
    pub watchers: Vec<Watch>,
    /// Tasks to schedule immediately after registration.
    pub initial: Vec<TaskId>,
    /// The input tasks bound to *client* connections; when all of them have
    /// finished the dispatcher tears the remaining tasks of the graph down.
    pub client_tasks: Vec<TaskId>,
}

/// Builds task-graph instances for one service.
///
/// Implemented by the compiler crate for FLICK programs and by hand for the
/// baseline systems.
pub trait GraphFactory: Send + Sync {
    /// How many client connections one graph instance serves (1 for the
    /// HTTP load balancer and Memcached proxy; the number of mappers for the
    /// Hadoop aggregator).
    fn connections_per_graph(&self) -> usize {
        1
    }

    /// Assembles a graph for the given client connections.
    fn build(&self, clients: Vec<Endpoint>, env: &ServiceEnv) -> Result<BuiltGraph, RuntimeError>;
}

/// Description of a deployable service.
#[derive(Clone)]
pub struct ServiceSpec {
    /// Service name (diagnostics only).
    pub name: String,
    /// Port the application dispatcher listens on.
    pub port: u16,
    /// Ports of the service's back-end servers on the simulated fabric.
    pub backends: Vec<u16>,
    /// Socket addresses of real TCP back-end servers (reached through the
    /// platform's OS stack). May be combined with `backends`; the pool
    /// indexes simulated targets first, then TCP targets.
    pub tcp_backends: Vec<String>,
    /// The graph factory.
    pub factory: Arc<dyn GraphFactory>,
    /// Per-service execution-mode override; `None` inherits
    /// [`PlatformConfig::exec_mode`].
    pub exec_mode: Option<ExecMode>,
}

impl std::fmt::Debug for ServiceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceSpec")
            .field("name", &self.name)
            .field("port", &self.port)
            .field("backends", &self.backends)
            .field("tcp_backends", &self.tcp_backends)
            .finish()
    }
}

impl ServiceSpec {
    /// Creates a spec with no back-ends.
    pub fn new(name: impl Into<String>, port: u16, factory: Arc<dyn GraphFactory>) -> Self {
        ServiceSpec {
            name: name.into(),
            port,
            backends: Vec::new(),
            tcp_backends: Vec::new(),
            factory,
            exec_mode: None,
        }
    }

    /// Sets the back-end ports on the simulated fabric.
    pub fn with_backends(mut self, backends: Vec<u16>) -> Self {
        self.backends = backends;
        self
    }

    /// Sets real TCP back-end addresses (e.g. `127.0.0.1:8100`). The
    /// service's [`BackendPool`] connects to them through the platform's
    /// kernel-socket stack — the all-TCP `client → LB → backend` path.
    pub fn with_tcp_backends(mut self, addrs: Vec<String>) -> Self {
        self.tcp_backends = addrs;
        self
    }

    /// Overrides the execution mode for this service only (e.g. pinning
    /// one deployment to the interpreter while the platform default is the
    /// bytecode VM).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = Some(mode);
        self
    }
}

/// The running FLICK platform.
pub struct Platform {
    net: Arc<SimNetwork>,
    /// The OS-socket stack, created on the first [`Platform::deploy_tcp`]
    /// (or [`Platform::tcp_stack`]) call.
    tcp: OnceLock<Arc<TcpStack>>,
    allocator: Arc<TaskIdAllocator>,
    metrics: Arc<RuntimeMetrics>,
    set: Arc<ShardSet>,
    dispatchers: Vec<JoinHandle<()>>,
    next_service: AtomicU64,
    config: PlatformConfig,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("config", &self.config)
            .field("shards", &self.set.len())
            .finish()
    }
}

impl Platform {
    /// Starts a platform with its own simulated network.
    pub fn new(config: PlatformConfig) -> Self {
        let net = SimNetwork::new(config.stack);
        Self::with_network(config, net)
    }

    /// Starts a platform over an existing network (so that workload
    /// generators and back-end servers share the same fabric).
    pub fn with_network(config: PlatformConfig, net: Arc<SimNetwork>) -> Self {
        let metrics = RuntimeMetrics::new_shared();
        let shard_count = config.resolved_shards();
        let group = StealGroup::new();
        let shards: Vec<Arc<Shard>> = (0..shard_count)
            .map(|id| {
                let scheduler = Arc::new(Scheduler::start_sharded(
                    config.workers_for_shard(id),
                    config.policy,
                    Arc::clone(&metrics),
                    &group,
                    id,
                ));
                Arc::new(Shard::new(id, scheduler))
            })
            .collect();
        let set = ShardSet::new(shards, config.placement.build());
        let dispatchers = set
            .shards()
            .iter()
            .map(|shard| {
                let set = Arc::clone(&set);
                let shard = Arc::clone(shard);
                let backend = config.dispatcher;
                let poll_interval = config.poll_interval;
                std::thread::Builder::new()
                    .name(format!("flick-dispatch-{}", shard.id()))
                    .spawn(move || run_shard_dispatcher(set, shard, backend, poll_interval))
                    .expect("spawning a shard dispatcher thread")
            })
            .collect();
        Platform {
            net,
            tcp: OnceLock::new(),
            allocator: Arc::new(TaskIdAllocator::new()),
            metrics,
            set,
            dispatchers,
            next_service: AtomicU64::new(0),
            config,
        }
    }

    /// The simulated network this platform is attached to.
    pub fn net(&self) -> Arc<SimNetwork> {
        Arc::clone(&self.net)
    }

    /// The scheduler of shard 0 (kept for single-shard callers and tests;
    /// multi-shard introspection goes through [`Platform::shard_status`]).
    pub fn scheduler(&self) -> Arc<Scheduler> {
        Arc::clone(self.set.shards()[0].scheduler())
    }

    /// The platform-wide runtime metrics (shared by every shard).
    pub fn metrics(&self) -> Arc<RuntimeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.set.len()
    }

    /// Per-shard status: graphs built, scheduler load and steal counters.
    /// One entry per shard, in shard order — the source of the fig5
    /// per-shard utilization table.
    pub fn shard_status(&self) -> Vec<ShardStatus> {
        self.set
            .shards()
            .iter()
            .map(|shard| ShardStatus {
                shard: shard.id(),
                graphs_built: shard.graphs_built(),
                load: shard.scheduler().load(),
            })
            .collect()
    }

    /// Total registered tasks across every shard.
    pub fn task_count(&self) -> usize {
        self.set
            .shards()
            .iter()
            .map(|shard| shard.scheduler().task_count())
            .sum()
    }

    /// The global task-id allocator.
    pub fn allocator(&self) -> Arc<TaskIdAllocator> {
        Arc::clone(&self.allocator)
    }

    /// The OS-socket stack of this platform, created on first use.
    ///
    /// Real sockets pay the real kernel's costs, so the stack runs the
    /// free cost model regardless of the simulated [`PlatformConfig::stack`]
    /// — layering the calibrated busy-wait on top of actual syscalls would
    /// double-charge. Its [`flick_net::NetStats`] counters account OS
    /// traffic with the same vocabulary as the simulated substrate.
    pub fn tcp_stack(&self) -> Arc<TcpStack> {
        Arc::clone(self.tcp.get_or_init(|| TcpStack::new(StackModel::Free)))
    }

    /// Deploys a service on a real OS socket: binds `addr` (use
    /// `127.0.0.1:0` for an ephemeral port, then read it back from
    /// [`DeployedService::port`]), homes the listener on a shard and starts
    /// accepting kernel connections. Everything past the listener — graph
    /// placement, readiness, teardown — is shared with [`Platform::deploy`];
    /// OS and simulated sources multiplex on the same shard pollers, so a
    /// single service may read from a TCP client while talking to
    /// simulated back-ends.
    pub fn deploy_tcp(
        &self,
        spec: ServiceSpec,
        addr: &str,
    ) -> Result<DeployedService, RuntimeError> {
        // Kernel accept sharding: one SO_REUSEPORT socket per shard, so
        // every shard's dispatcher drains its own kernel accept queue and
        // new connections never funnel through a single thread. On one
        // shard this degenerates to a plain listener.
        let listeners = self.tcp_stack().listen_group(addr, self.set.len())?;
        let port = listeners[0].port();
        self.deploy_on_listeners(
            spec,
            listeners.into_iter().map(Listener::from).collect(),
            port,
        )
    }

    /// Deploys a service: binds its simulated port, homes its listener on
    /// a shard and starts accepting. Task graphs instantiated for the
    /// service are placed across shards by the configured [`Placement`]
    /// policy.
    pub fn deploy(&self, spec: ServiceSpec) -> Result<DeployedService, RuntimeError> {
        let listener = self.net.listen(spec.port)?;
        let port = spec.port;
        self.deploy_on_listeners(spec, vec![Listener::from(listener)], port)
    }

    /// The transport-independent tail of service deployment. One listener
    /// is homed on a single shard; a listener *group* (accept sharding)
    /// assigns listener `i` to shard `i` and announces the service to
    /// every one of those shards.
    fn deploy_on_listeners(
        &self,
        spec: ServiceSpec,
        listeners: Vec<Listener>,
        port: u16,
    ) -> Result<DeployedService, RuntimeError> {
        let globals = SharedDict::new();
        // Simulated targets first, then TCP targets, so existing
        // port-indexed services are unaffected and mixed-transport pools
        // keep a stable order.
        let mut targets: Vec<BackendTarget> = spec
            .backends
            .iter()
            .map(|port| BackendTarget::Sim {
                net: Arc::clone(&self.net),
                port: *port,
            })
            .collect();
        if !spec.tcp_backends.is_empty() {
            let stack = self.tcp_stack();
            targets.extend(spec.tcp_backends.iter().map(|addr| BackendTarget::Tcp {
                stack: Arc::clone(&stack),
                addr: addr.clone(),
            }));
        }
        let backends = BackendPool::configured(
            targets,
            self.config.backend_pooling,
            self.config.backend_policy,
            Some(Arc::clone(&self.metrics)),
        );
        // The poll backend has no writable-event path (it is the
        // historical sleep-poll baseline), so its output tasks keep the
        // historical busy-retry behaviour; parking them would strand a
        // blocked writer until graph teardown. Wakeup-driven output is an
        // event-dispatcher capability.
        let output_mode = if self.config.dispatcher == DispatcherBackend::Poll {
            OutputMode::BusyRetry
        } else {
            self.config.output_mode
        };
        let env = ServiceEnv {
            net: Arc::clone(&self.net),
            globals: globals.clone(),
            backends,
            allocator: Arc::clone(&self.allocator),
            channel_capacity: self.config.channel_capacity,
            output_mode,
            exec_mode: spec.exec_mode.unwrap_or(self.config.exec_mode),
        };
        let id = self.next_service.fetch_add(1, Ordering::Relaxed);
        // Single listeners rotate over the shards so multiple services do
        // not all funnel their accept paths through shard 0.
        let home_shard = (id as usize) % self.set.len();
        let accept_shards: Vec<usize> = if listeners.len() == 1 {
            vec![home_shard]
        } else {
            (0..listeners.len().min(self.set.len())).collect()
        };
        let shared = Arc::new(ServiceShared::new(
            id,
            spec.name.clone(),
            listeners,
            spec.factory,
            env,
            home_shard,
        ));
        for shard in accept_shards {
            self.set
                .send(shard, ShardCommand::AddService(Arc::clone(&shared)));
        }
        Ok(DeployedService::new(
            port,
            globals,
            shared,
            Arc::clone(&self.set),
        ))
    }
}

impl Drop for Platform {
    fn drop(&mut self) {
        self.set.request_stop();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_starts_and_exposes_components() {
        let platform = Platform::new(PlatformConfig::default());
        assert_eq!(platform.config().workers, 4);
        assert_eq!(platform.net().model(), StackModel::Free);
        assert_eq!(platform.scheduler().task_count(), 0);
        assert_eq!(platform.task_count(), 0);
        assert!(platform.shard_count() >= 1);
        assert_eq!(platform.shard_status().len(), platform.shard_count());
        let id_a = platform.allocator().allocate();
        let id_b = platform.allocator().allocate();
        assert_ne!(id_a, id_b);
    }

    #[test]
    fn deploy_binds_the_port() {
        let platform = Platform::new(PlatformConfig::default());

        struct NeverFactory;
        impl GraphFactory for NeverFactory {
            fn build(
                &self,
                _clients: Vec<Endpoint>,
                _env: &ServiceEnv,
            ) -> Result<BuiltGraph, RuntimeError> {
                Err(RuntimeError::Config("not used in this test".into()))
            }
        }

        let spec = ServiceSpec::new("noop", 4242, Arc::new(NeverFactory));
        let service = platform.deploy(spec).unwrap();
        assert_eq!(service.port(), 4242);
        // The port is now taken.
        assert!(platform.net().listen(4242).is_err());
    }

    #[test]
    fn config_constructor_sets_fields() {
        let cfg = PlatformConfig::new(8, StackModel::Mtcp);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.stack, StackModel::Mtcp);
        assert!(!cfg.backend_pooling);
    }

    #[test]
    fn workers_split_across_shards_with_a_floor_of_one() {
        let cfg = PlatformConfig {
            workers: 8,
            shards: 4,
            ..Default::default()
        };
        assert_eq!(cfg.resolved_shards(), 4);
        assert!((0..4).all(|i| cfg.workers_for_shard(i) == 2));
        // Remainders go to the lowest shards; the total stays exact.
        let cfg = PlatformConfig {
            workers: 5,
            shards: 4,
            ..Default::default()
        };
        let split: Vec<usize> = (0..4).map(|i| cfg.workers_for_shard(i)).collect();
        assert_eq!(split, vec![2, 1, 1, 1]);
        // More shards than workers: floor of one worker per shard.
        let cfg = PlatformConfig {
            workers: 2,
            shards: 8,
            ..Default::default()
        };
        assert!((0..8).all(|i| cfg.workers_for_shard(i) == 1));
    }

    #[test]
    fn auto_sharding_never_exceeds_the_worker_budget() {
        // The auto default (shards == 0) caps the shard count at the
        // worker count, so the configured total worker threads is always
        // honoured exactly — the cores axis of fig4/fig6 stays valid on
        // any host.
        for workers in 1..6 {
            let cfg = PlatformConfig {
                workers,
                ..Default::default()
            };
            let shards = cfg.resolved_shards();
            assert!(shards >= 1 && shards <= workers);
            let total: usize = (0..shards).map(|i| cfg.workers_for_shard(i)).sum();
            assert_eq!(total, workers, "auto split must preserve the budget");
        }
    }

    #[test]
    fn services_home_shards_rotate() {
        let platform = Platform::new(PlatformConfig {
            shards: 2,
            ..Default::default()
        });

        struct NeverFactory;
        impl GraphFactory for NeverFactory {
            fn build(
                &self,
                _clients: Vec<Endpoint>,
                _env: &ServiceEnv,
            ) -> Result<BuiltGraph, RuntimeError> {
                Err(RuntimeError::Config("not used in this test".into()))
            }
        }

        let a = platform
            .deploy(ServiceSpec::new("a", 4301, Arc::new(NeverFactory)))
            .unwrap();
        let b = platform
            .deploy(ServiceSpec::new("b", 4302, Arc::new(NeverFactory)))
            .unwrap();
        let c = platform
            .deploy(ServiceSpec::new("c", 4303, Arc::new(NeverFactory)))
            .unwrap();
        assert_eq!(a.home_shard(), 0);
        assert_eq!(b.home_shard(), 1);
        assert_eq!(c.home_shard(), 0);
    }
}
