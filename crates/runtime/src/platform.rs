//! The FLICK platform: scheduler + substrate + deployed services.
//!
//! A [`Platform`] owns the worker-thread [`Scheduler`], the simulated
//! network, and the global task-id allocator. Services are deployed from a
//! [`ServiceSpec`]; the spec's [`GraphFactory`] is invoked by the dispatcher
//! whenever enough client connections have arrived to instantiate a new task
//! graph (one connection for the HTTP and Memcached services, all the mapper
//! connections for the Hadoop aggregator).

use crate::dispatcher::{run_dispatcher, DeployedService, DispatcherBackend, DispatcherShared};
use crate::error::RuntimeError;
use crate::graph::{GraphInstance, TaskIdAllocator};
use crate::metrics::RuntimeMetrics;
use crate::pool::BackendPool;
use crate::scheduler::Scheduler;
use crate::task::{SchedulingPolicy, TaskId};
use crate::value::SharedDict;
use flick_net::{Endpoint, SimNetwork, StackModel};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`Platform`].
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Number of worker threads (the paper uses one per CPU core).
    pub workers: usize,
    /// Scheduling policy (cooperative with a 10–100 µs timeslice by default).
    pub policy: SchedulingPolicy,
    /// Transport-stack cost model for every connection.
    pub stack: StackModel,
    /// Which dispatcher implementation services run (wakeup-based reactor
    /// by default; the sleep-poll loop remains available for ablations).
    pub dispatcher: DispatcherBackend,
    /// For [`DispatcherBackend::Poll`]: how often the dispatcher re-scans
    /// connections for readability. For [`DispatcherBackend::Event`] this
    /// is demoted to a lower bound on the drain/teardown heartbeat — the
    /// reactor blocks on events and never scans. Kept as a field so
    /// existing call sites compile unchanged.
    pub poll_interval: Duration,
    /// Capacity of task channels created by graph factories.
    pub channel_capacity: usize,
    /// Whether backend connections are drawn from a pre-established pool.
    pub backend_pooling: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            workers: 4,
            policy: SchedulingPolicy::default(),
            stack: StackModel::Free,
            dispatcher: DispatcherBackend::default(),
            poll_interval: Duration::from_micros(50),
            channel_capacity: 1024,
            backend_pooling: false,
        }
    }
}

impl PlatformConfig {
    /// Convenience constructor used by the benchmark harness.
    pub fn new(workers: usize, stack: StackModel) -> Self {
        PlatformConfig {
            workers,
            stack,
            ..Default::default()
        }
    }
}

/// Everything a [`GraphFactory`] may need while assembling a graph.
pub struct ServiceEnv {
    /// The network substrate (for opening backend connections directly).
    pub net: Arc<SimNetwork>,
    /// The service-wide shared dictionary backing FLICK `global` state.
    pub globals: SharedDict,
    /// The configured back-ends of the service.
    pub backends: Arc<BackendPool>,
    /// Allocator for task ids (pass to [`crate::graph::GraphBuilder`]).
    pub allocator: Arc<TaskIdAllocator>,
    /// Capacity to use for task channels.
    pub channel_capacity: usize,
}

/// A graph produced by a factory, plus the bookkeeping the dispatcher needs.
pub struct BuiltGraph {
    /// The assembled graph.
    pub graph: GraphInstance,
    /// Input tasks to wake when their endpoint becomes readable.
    pub watchers: Vec<(TaskId, Endpoint)>,
    /// Tasks to schedule immediately after registration.
    pub initial: Vec<TaskId>,
    /// The input tasks bound to *client* connections; when all of them have
    /// finished the dispatcher tears the remaining tasks of the graph down.
    pub client_tasks: Vec<TaskId>,
}

/// Builds task-graph instances for one service.
///
/// Implemented by the compiler crate for FLICK programs and by hand for the
/// baseline systems.
pub trait GraphFactory: Send + Sync {
    /// How many client connections one graph instance serves (1 for the
    /// HTTP load balancer and Memcached proxy; the number of mappers for the
    /// Hadoop aggregator).
    fn connections_per_graph(&self) -> usize {
        1
    }

    /// Assembles a graph for the given client connections.
    fn build(&self, clients: Vec<Endpoint>, env: &ServiceEnv) -> Result<BuiltGraph, RuntimeError>;
}

/// Description of a deployable service.
#[derive(Clone)]
pub struct ServiceSpec {
    /// Service name (diagnostics only).
    pub name: String,
    /// Port the application dispatcher listens on.
    pub port: u16,
    /// Ports of the service's back-end servers.
    pub backends: Vec<u16>,
    /// The graph factory.
    pub factory: Arc<dyn GraphFactory>,
}

impl std::fmt::Debug for ServiceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceSpec")
            .field("name", &self.name)
            .field("port", &self.port)
            .field("backends", &self.backends)
            .finish()
    }
}

impl ServiceSpec {
    /// Creates a spec with no back-ends.
    pub fn new(name: impl Into<String>, port: u16, factory: Arc<dyn GraphFactory>) -> Self {
        ServiceSpec {
            name: name.into(),
            port,
            backends: Vec::new(),
            factory,
        }
    }

    /// Sets the back-end ports.
    pub fn with_backends(mut self, backends: Vec<u16>) -> Self {
        self.backends = backends;
        self
    }
}

/// The running FLICK platform.
pub struct Platform {
    net: Arc<SimNetwork>,
    scheduler: Arc<Scheduler>,
    allocator: Arc<TaskIdAllocator>,
    config: PlatformConfig,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("config", &self.config)
            .finish()
    }
}

impl Platform {
    /// Starts a platform with its own simulated network.
    pub fn new(config: PlatformConfig) -> Self {
        let net = SimNetwork::new(config.stack);
        Self::with_network(config, net)
    }

    /// Starts a platform over an existing network (so that workload
    /// generators and back-end servers share the same fabric).
    pub fn with_network(config: PlatformConfig, net: Arc<SimNetwork>) -> Self {
        let metrics = RuntimeMetrics::new_shared();
        let scheduler = Arc::new(Scheduler::start(config.workers, config.policy, metrics));
        Platform {
            net,
            scheduler,
            allocator: Arc::new(TaskIdAllocator::new()),
            config,
        }
    }

    /// The simulated network this platform is attached to.
    pub fn net(&self) -> Arc<SimNetwork> {
        Arc::clone(&self.net)
    }

    /// The task scheduler.
    pub fn scheduler(&self) -> Arc<Scheduler> {
        Arc::clone(&self.scheduler)
    }

    /// The runtime metrics.
    pub fn metrics(&self) -> Arc<RuntimeMetrics> {
        self.scheduler.metrics()
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The global task-id allocator.
    pub fn allocator(&self) -> Arc<TaskIdAllocator> {
        Arc::clone(&self.allocator)
    }

    /// Deploys a service: binds its port and starts its dispatcher thread.
    pub fn deploy(&self, spec: ServiceSpec) -> Result<DeployedService, RuntimeError> {
        let listener = self.net.listen(spec.port)?;
        let globals = SharedDict::new();
        let backends = BackendPool::new(
            Arc::clone(&self.net),
            spec.backends.clone(),
            self.config.backend_pooling,
        );
        let env = ServiceEnv {
            net: Arc::clone(&self.net),
            globals: globals.clone(),
            backends,
            allocator: Arc::clone(&self.allocator),
            channel_capacity: self.config.channel_capacity,
        };
        let shared = Arc::new(DispatcherShared::new(
            spec.name.clone(),
            listener,
            spec.factory,
            env,
            Arc::clone(&self.scheduler),
            self.config.dispatcher,
            self.config.poll_interval,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_shared = Arc::clone(&shared);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("flick-dispatch-{}", spec.name))
            .spawn(move || run_dispatcher(thread_shared, thread_stop))
            .map_err(|e| RuntimeError::Config(format!("could not spawn dispatcher: {e}")))?;
        Ok(DeployedService::new(
            spec.name, spec.port, stop, handle, globals, shared,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_starts_and_exposes_components() {
        let platform = Platform::new(PlatformConfig::default());
        assert_eq!(platform.config().workers, 4);
        assert_eq!(platform.net().model(), StackModel::Free);
        assert_eq!(platform.scheduler().task_count(), 0);
        let id_a = platform.allocator().allocate();
        let id_b = platform.allocator().allocate();
        assert_ne!(id_a, id_b);
    }

    #[test]
    fn deploy_binds_the_port() {
        let platform = Platform::new(PlatformConfig::default());

        struct NeverFactory;
        impl GraphFactory for NeverFactory {
            fn build(
                &self,
                _clients: Vec<Endpoint>,
                _env: &ServiceEnv,
            ) -> Result<BuiltGraph, RuntimeError> {
                Err(RuntimeError::Config("not used in this test".into()))
            }
        }

        let spec = ServiceSpec::new("noop", 4242, Arc::new(NeverFactory));
        let service = platform.deploy(spec).unwrap();
        assert_eq!(service.port(), 4242);
        // The port is now taken.
        assert!(platform.net().listen(4242).is_err());
    }

    #[test]
    fn config_constructor_sets_fields() {
        let cfg = PlatformConfig::new(8, StackModel::Mtcp);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.stack, StackModel::Mtcp);
        assert!(!cfg.backend_pooling);
    }
}
