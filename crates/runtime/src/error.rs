//! Runtime error type.

use flick_grammar::GrammarError;
use flick_net::NetError;
use std::fmt;

/// Errors surfaced by the FLICK runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A wire-format parse or serialise error from the grammar engine.
    Grammar(GrammarError),
    /// A substrate error that is not part of normal flow control
    /// (`WouldBlock` and EOF are handled internally and never surfaced).
    Net(NetError),
    /// A task channel was used after being closed.
    ChannelClosed,
    /// A bounded task channel is full and the producer cannot make progress.
    ChannelFull,
    /// A service was configured inconsistently (e.g. no backends where one
    /// is required).
    Config(String),
    /// An error raised by service compute logic.
    Logic(String),
    /// The platform is shutting down.
    ShuttingDown,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Grammar(e) => write!(f, "grammar error: {e}"),
            RuntimeError::Net(e) => write!(f, "network error: {e}"),
            RuntimeError::ChannelClosed => write!(f, "task channel closed"),
            RuntimeError::ChannelFull => write!(f, "task channel full"),
            RuntimeError::Config(msg) => write!(f, "configuration error: {msg}"),
            RuntimeError::Logic(msg) => write!(f, "service logic error: {msg}"),
            RuntimeError::ShuttingDown => write!(f, "platform is shutting down"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<GrammarError> for RuntimeError {
    fn from(e: GrammarError) -> Self {
        RuntimeError::Grammar(e)
    }
}

impl From<NetError> for RuntimeError {
    fn from(e: NetError) -> Self {
        RuntimeError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = NetError::ConnectionRefused.into();
        assert!(e.to_string().contains("refused"));
        let g: RuntimeError = GrammarError::malformed("cmd", "bad").into();
        assert!(g.to_string().contains("malformed"));
        assert!(RuntimeError::Config("no backends".into())
            .to_string()
            .contains("no backends"));
    }
}
