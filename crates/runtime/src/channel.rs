//! Bounded task channels.
//!
//! Task channels move [`Value`]s between the tasks of a graph. They are
//! bounded (FLICK guarantees bounded resource usage per §3.2/§4.3), multiple
//! producer / single consumer, and record which task consumes them so that a
//! producer can ask the scheduler to wake that task after pushing.

use crate::task::TaskId;
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default per-channel capacity, in values.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

struct Inner {
    queue: Mutex<VecDeque<Value>>,
    capacity: usize,
    /// Number of producer handles still alive (or explicitly not closed).
    producers: AtomicUsize,
    closed: AtomicBool,
    consumer: TaskId,
}

/// A task channel: create with [`TaskChannel::bounded`], then hand the
/// producer and consumer halves to the producing and consuming tasks.
#[derive(Debug)]
pub struct TaskChannel;

impl TaskChannel {
    /// Creates a bounded channel whose consumer is the task `consumer`.
    ///
    /// Returns the producer and consumer halves.
    pub fn bounded(capacity: usize, consumer: TaskId) -> (ChannelProducer, ChannelConsumer) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            capacity,
            producers: AtomicUsize::new(1),
            closed: AtomicBool::new(false),
            consumer,
        });
        (
            ChannelProducer {
                inner: Arc::clone(&inner),
                handle_closed: AtomicBool::new(false),
            },
            ChannelConsumer { inner },
        )
    }

    /// Creates a channel with the default capacity.
    pub fn with_default_capacity(consumer: TaskId) -> (ChannelProducer, ChannelConsumer) {
        Self::bounded(DEFAULT_CHANNEL_CAPACITY, consumer)
    }
}

/// The producing half of a task channel.
pub struct ChannelProducer {
    inner: Arc<Inner>,
    /// Whether this particular handle has already called [`Self::close`].
    handle_closed: AtomicBool,
}

impl std::fmt::Debug for ChannelProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelProducer")
            .field("consumer", &self.inner.consumer)
            .finish()
    }
}

impl Clone for ChannelProducer {
    fn clone(&self) -> Self {
        self.inner.producers.fetch_add(1, Ordering::AcqRel);
        ChannelProducer {
            inner: Arc::clone(&self.inner),
            handle_closed: AtomicBool::new(false),
        }
    }
}

impl ChannelProducer {
    /// The task that consumes from this channel (to be woken after a push).
    pub fn consumer(&self) -> TaskId {
        self.inner.consumer
    }

    /// Pushes a value.
    ///
    /// Returns `Err(value)` (giving the value back) if the channel is full or
    /// already fully closed, so the producer can retry on its next timeslice
    /// without losing data.
    pub fn push(&self, value: Value) -> Result<(), Value> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let mut queue = self.inner.queue.lock();
        if queue.len() >= self.inner.capacity {
            return Err(value);
        }
        queue.push_back(value);
        Ok(())
    }

    /// Returns `true` if a push would currently succeed.
    pub fn has_space(&self) -> bool {
        !self.inner.closed.load(Ordering::Acquire)
            && self.inner.queue.lock().len() < self.inner.capacity
    }

    /// Marks this producer as finished. When the last producer closes, the
    /// consumer observes end-of-stream after draining. Closing the same
    /// handle more than once is a no-op.
    pub fn close(&self) {
        if self.handle_closed.swap(true, Ordering::AcqRel) {
            return;
        }
        if self.inner.producers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.inner.closed.store(true, Ordering::Release);
        }
    }
}

/// The consuming half of a task channel.
pub struct ChannelConsumer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ChannelConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelConsumer")
            .field("consumer", &self.inner.consumer)
            .field("len", &self.len())
            .finish()
    }
}

impl ChannelConsumer {
    /// Pops the next value, or `None` if the channel is currently empty.
    pub fn pop(&self) -> Option<Value> {
        self.inner.queue.lock().pop_front()
    }

    /// Number of values currently buffered.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Returns `true` if no values are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.queue.lock().is_empty()
    }

    /// Returns `true` once every producer has closed *and* the buffer has
    /// been drained: no more values will ever arrive.
    pub fn is_finished(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire) && self.is_empty()
    }

    /// Returns `true` if all producers have closed (there may still be
    /// buffered values to drain).
    pub fn producers_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// The id of the consuming task.
    pub fn consumer(&self) -> TaskId {
        self.inner.consumer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_in_order() {
        let (tx, rx) = TaskChannel::bounded(4, TaskId(1));
        tx.push(Value::Int(1)).unwrap();
        tx.push(Value::Int(2)).unwrap();
        assert_eq!(rx.pop(), Some(Value::Int(1)));
        assert_eq!(rx.pop(), Some(Value::Int(2)));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn bounded_capacity_rejects_push() {
        let (tx, rx) = TaskChannel::bounded(2, TaskId(1));
        tx.push(Value::Int(1)).unwrap();
        tx.push(Value::Int(2)).unwrap();
        let rejected = tx.push(Value::Int(3)).unwrap_err();
        assert_eq!(rejected, Value::Int(3));
        assert!(!tx.has_space());
        rx.pop();
        assert!(tx.has_space());
    }

    #[test]
    fn close_signals_end_of_stream_after_drain() {
        let (tx, rx) = TaskChannel::bounded(4, TaskId(2));
        tx.push(Value::Int(1)).unwrap();
        tx.close();
        assert!(rx.producers_closed());
        assert!(!rx.is_finished(), "still has a buffered value");
        assert_eq!(rx.pop(), Some(Value::Int(1)));
        assert!(rx.is_finished());
    }

    #[test]
    fn multiple_producers_must_all_close() {
        let (tx1, rx) = TaskChannel::bounded(4, TaskId(3));
        let tx2 = tx1.clone();
        tx1.close();
        assert!(!rx.producers_closed());
        tx2.close();
        assert!(rx.is_finished());
    }

    #[test]
    fn push_after_full_close_returns_value() {
        let (tx, rx) = TaskChannel::bounded(4, TaskId(4));
        tx.close();
        let back = tx.push(Value::Int(9)).unwrap_err();
        assert_eq!(back, Value::Int(9));
        assert!(rx.is_finished());
    }

    #[test]
    fn consumer_id_is_recorded() {
        let (tx, rx) = TaskChannel::with_default_capacity(TaskId(42));
        assert_eq!(tx.consumer(), TaskId(42));
        assert_eq!(rx.consumer(), TaskId(42));
    }
}
