//! Values exchanged between tasks and the shared-state dictionary.

use bytes::Bytes;
use flick_grammar::Message;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed value flowing through a task graph.
///
/// Application messages parsed by input tasks travel as [`Value::Msg`];
/// FLICK-level primitives (integers, strings, booleans, lists) appear when
/// compute logic builds intermediate results.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A string (bounded by construction in FLICK programs).
    Str(String),
    /// Raw bytes.
    Bytes(Bytes),
    /// A parsed application message (record value).
    Msg(Message),
    /// A finite list of values.
    List(Vec<Value>),
    /// The `None` value used for absent dictionary entries.
    None,
}

impl Value {
    /// Returns the message if this value is one.
    pub fn as_msg(&self) -> Option<&Message> {
        match self {
            Value::Msg(m) => Some(m),
            _ => None,
        }
    }

    /// Consumes the value and returns the message if it is one.
    pub fn into_msg(self) -> Option<Message> {
        match self {
            Value::Msg(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the integer if this value is numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Re-owns every shared byte region inside the value (see
    /// [`Message::compact`]): byte values and message fields parsed
    /// zero-copy stop pinning the connection's ingest chunk.
    pub fn compact(&mut self) {
        match self {
            Value::Msg(msg) => msg.compact(),
            Value::Bytes(bytes) => *bytes = Bytes::copy_from_slice(bytes),
            Value::List(items) => items.iter_mut().for_each(Value::compact),
            _ => {}
        }
    }

    /// Returns the string slice for string-like values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Bytes(b) => std::str::from_utf8(b).ok(),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, Value::None)
    }

    /// Truthiness used by interpreted FLICK conditionals.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::None | Value::Unit => false,
            Value::Str(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Msg(_) => true,
        }
    }

    /// An approximate in-memory size in bytes, used by the resource-sharing
    /// micro-benchmark and by channel accounting.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) | Value::None => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Msg(m) => m
                .wire_len()
                .unwrap_or_else(|| m.iter().map(|(_, v)| v.byte_len().max(8)).sum()),
            Value::List(l) => l.iter().map(Value::approx_size).sum(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Msg(m) => write!(f, "{m}"),
            Value::List(l) => write!(f, "[{} values]", l.len()),
            Value::None => write!(f, "None"),
        }
    }
}

impl From<Message> for Value {
    fn from(m: Message) -> Self {
        Value::Msg(m)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The per-program shared dictionary backing FLICK `global` declarations.
///
/// The paper exposes long-term state to task-graph instances through a
/// key/value abstraction shared by all instances of a service (§4.3); this
/// is that abstraction. It is freely cloneable; clones share storage.
#[derive(Debug, Clone, Default)]
pub struct SharedDict {
    inner: Arc<RwLock<HashMap<String, Value>>>,
}

impl SharedDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        SharedDict::default()
    }

    /// Looks up a key, returning [`Value::None`] when absent.
    pub fn get(&self, key: &str) -> Value {
        self.inner.read().get(key).cloned().unwrap_or(Value::None)
    }

    /// Inserts or replaces a key.
    ///
    /// The stored value is compacted first ([`Value::compact`]): shared
    /// dictionaries are long-lived retention (FLICK `global` state, e.g.
    /// the memcached router's response cache), and a zero-copy parsed
    /// message must not pin its connection's whole ingest chunk for the
    /// lifetime of a cache entry.
    pub fn set(&self, key: impl Into<String>, value: Value) {
        let mut value = value;
        value.compact();
        self.inner.write().insert(key.into(), value);
    }

    /// Removes a key, returning its previous value if any.
    pub fn remove(&self, key: &str) -> Option<Value> {
        self.inner.write().remove(key)
    }

    /// Returns `true` if the key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.read().contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Returns `true` when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Clears all entries.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_grammar::MsgValue;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_int(), Some(1));
        assert!(Value::None.is_none());
        let m = Message::new("cmd");
        assert!(Value::from(m.clone()).as_msg().is_some());
        assert_eq!(Value::Msg(m.clone()).into_msg(), Some(m));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::None.truthy());
        assert!(!Value::List(vec![]).truthy());
    }

    #[test]
    fn approx_size_scales_with_payload() {
        assert_eq!(
            Value::Bytes(Bytes::from(vec![0u8; 1024])).approx_size(),
            1024
        );
        let mut m = Message::new("cmd");
        m.set("value", MsgValue::Bytes(Bytes::from(vec![0u8; 100])));
        assert!(Value::Msg(m).approx_size() >= 100);
    }

    #[test]
    fn shared_dict_is_shared_between_clones() {
        let d = SharedDict::new();
        let d2 = d.clone();
        d.set("key", Value::Int(1));
        assert_eq!(d2.get("key"), Value::Int(1));
        assert!(d2.contains("key"));
        assert_eq!(d2.len(), 1);
        assert_eq!(d.get("missing"), Value::None);
        d2.remove("key");
        assert!(d.is_empty());
    }

    #[test]
    fn shared_dict_clear() {
        let d = SharedDict::new();
        d.set("a", Value::Int(1));
        d.set("b", Value::Int(2));
        d.clear();
        assert!(d.is_empty());
    }

    /// Retention must not pin the ingest chunk: storing a zero-copy
    /// parsed message into a shared dictionary (the FLICK `global` cache
    /// pattern) compacts it, releasing the connection's buffer for
    /// in-place reuse.
    #[test]
    fn shared_dict_compacts_stored_messages_off_the_ingest_chunk() {
        use flick_grammar::http::{self, HttpCodec};
        use flick_grammar::{ParseOutcome, WireCodec};
        use flick_net::SharedBuf;

        let codec = HttpCodec::new();
        let mut wire = Vec::new();
        codec
            .serialize(&http::response(200, b"cache me"), &mut wire)
            .unwrap();
        let mut buf = SharedBuf::new(64);
        let (tail, _) = buf.tail_mut(wire.len());
        tail[..wire.len()].copy_from_slice(&wire);
        buf.commit(wire.len());
        let view = buf.view();
        let ParseOutcome::Complete { message, consumed } = codec.parse_bytes(&view, None).unwrap()
        else {
            panic!("complete response expected");
        };
        drop(view);
        buf.consume(consumed);
        assert!(buf.is_shared(), "the parsed message pins the chunk");

        let dict = SharedDict::new();
        dict.set("entry", Value::Msg(message));
        assert!(
            !buf.is_shared(),
            "a stored message must be compacted off the ingest chunk"
        );
        let cached = dict.get("entry");
        let cached = cached.as_msg().expect("cached message");
        assert_eq!(cached.bytes_field("body"), Some(&b"cache me"[..]));
    }
}
