//! Runtime-wide metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing what the runtime has done.
///
/// Updated with relaxed atomics on the hot path; read by the benchmark
/// harness and by tests.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    /// Task executions (one per scheduler dispatch of a task).
    pub task_runs: AtomicU64,
    /// Times a task voluntarily yielded because its timeslice expired.
    pub cooperative_yields: AtomicU64,
    /// Values processed by compute tasks.
    pub values_processed: AtomicU64,
    /// Application messages deserialised by input tasks.
    pub messages_in: AtomicU64,
    /// Application messages serialised by output tasks.
    pub messages_out: AtomicU64,
    /// Task graphs instantiated.
    pub graphs_created: AtomicU64,
    /// Task graphs torn down.
    pub graphs_destroyed: AtomicU64,
    /// Tasks stolen from another worker's queue ("scavenged").
    pub tasks_scavenged: AtomicU64,
    /// Tasks stolen *across shard boundaries*: an idle shard's worker
    /// executed a runnable task belonging to a sibling shard's scheduler.
    pub tasks_stolen: AtomicU64,
    /// Output-task dispatches that ended in a busy retry: the write
    /// blocked and the task asked to be re-run immediately instead of
    /// parking on writable readiness. Zero under the wakeup-driven output
    /// mode while a peer is stalled — the stress tests assert it.
    pub output_busy_retries: AtomicU64,
    /// Health-aware backend checkouts (`BackendPool::checkout_healthy`
    /// calls), each allowed at most the policy's retry budget of extra
    /// attempts.
    pub backend_checkouts: AtomicU64,
    /// Extra connection attempts spent by those checkouts after their
    /// first pick failed. Bounded by `backend_checkouts × retry_budget` —
    /// the no-retry-storm law the sim battery gates.
    pub backend_retries: AtomicU64,
    /// Healthy→ejected transitions: a backend crossed its consecutive-
    /// failure threshold and was taken out of rotation.
    pub backend_ejections: AtomicU64,
    /// Ejected→healthy transitions: a readmit probe against an ejected
    /// backend succeeded and put it back in rotation.
    pub backend_readmits: AtomicU64,
}

impl RuntimeMetrics {
    /// Creates a fresh shareable metrics block.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(RuntimeMetrics::default())
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all counters.
    ///
    /// `backend_retries` is loaded *before* `backend_checkouts`: a
    /// checkout records itself before spending any retry, so this order
    /// can only inflate the checkout side of a concurrent snapshot and
    /// keeps [`MetricsSnapshot::check_retry_budget`] free of false
    /// positives mid-flight (same trick as the substrate counters).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let backend_retries = self.backend_retries.load(Ordering::Acquire);
        let backend_readmits = self.backend_readmits.load(Ordering::Acquire);
        MetricsSnapshot {
            backend_retries,
            backend_readmits,
            backend_checkouts: Self::get(&self.backend_checkouts),
            backend_ejections: Self::get(&self.backend_ejections),
            task_runs: Self::get(&self.task_runs),
            cooperative_yields: Self::get(&self.cooperative_yields),
            values_processed: Self::get(&self.values_processed),
            messages_in: Self::get(&self.messages_in),
            messages_out: Self::get(&self.messages_out),
            graphs_created: Self::get(&self.graphs_created),
            graphs_destroyed: Self::get(&self.graphs_destroyed),
            tasks_scavenged: Self::get(&self.tasks_scavenged),
            tasks_stolen: Self::get(&self.tasks_stolen),
            output_busy_retries: Self::get(&self.output_busy_retries),
        }
    }
}

/// Plain-value snapshot of [`RuntimeMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Task executions.
    pub task_runs: u64,
    /// Cooperative yields.
    pub cooperative_yields: u64,
    /// Values processed by compute tasks.
    pub values_processed: u64,
    /// Messages deserialised.
    pub messages_in: u64,
    /// Messages serialised.
    pub messages_out: u64,
    /// Graphs created.
    pub graphs_created: u64,
    /// Graphs destroyed.
    pub graphs_destroyed: u64,
    /// Tasks scavenged from other workers.
    pub tasks_scavenged: u64,
    /// Tasks stolen across shard boundaries.
    pub tasks_stolen: u64,
    /// Output-task busy retries (blocked write + immediate re-run).
    pub output_busy_retries: u64,
    /// Health-aware backend checkouts.
    pub backend_checkouts: u64,
    /// Extra attempts spent after a failed first pick.
    pub backend_retries: u64,
    /// Backends ejected after repeated failures.
    pub backend_ejections: u64,
    /// Ejected backends readmitted by a successful probe.
    pub backend_readmits: u64,
}

impl MetricsSnapshot {
    /// Graphs currently alive according to this snapshot.
    pub fn live_graphs(&self) -> u64 {
        self.graphs_created.saturating_sub(self.graphs_destroyed)
    }

    /// Checks the runtime's conservation laws — the counterpart of
    /// `StatsSnapshot::check_conservation` on the substrate side, shared
    /// by the simulation harness's tick checks and the end-to-end suite:
    ///
    /// * a graph must be created before it can be destroyed;
    /// * a cooperative yield happens *inside* a task run (the run is
    ///   counted when dispatch starts), so yields can never outnumber
    ///   runs.
    ///
    /// Only inequalities that hold at every instant under concurrent
    /// updates are checked here; point-in-time balance checks (say,
    /// messages in vs. out) belong to quiescent assertions, not tick
    /// checks.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.graphs_destroyed > self.graphs_created {
            return Err(format!(
                "graph conservation violated: {} destroyed > {} created",
                self.graphs_destroyed, self.graphs_created
            ));
        }
        if self.cooperative_yields > self.task_runs {
            return Err(format!(
                "yield conservation violated: {} yields > {} task runs",
                self.cooperative_yields, self.task_runs
            ));
        }
        if self.backend_readmits > self.backend_ejections {
            return Err(format!(
                "backend health conservation violated: {} readmits > {} ejections \
                 (a backend must be ejected before it can be readmitted)",
                self.backend_readmits, self.backend_ejections
            ));
        }
        Ok(())
    }

    /// The no-retry-storm law: every health-aware checkout may spend at
    /// most `budget` extra attempts, so the retry counter is bounded by
    /// the checkout counter. Gated per tick by the sim battery.
    pub fn check_retry_budget(&self, budget: u64) -> Result<(), String> {
        let allowed = self.backend_checkouts.saturating_mul(budget);
        if self.backend_retries > allowed {
            return Err(format!(
                "retry budget exceeded: {} retries > {} checkouts × budget {}",
                self.backend_retries, self.backend_checkouts, budget
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = RuntimeMetrics::default();
        RuntimeMetrics::add(&m.task_runs, 3);
        RuntimeMetrics::add(&m.messages_in, 10);
        let snap = m.snapshot();
        assert_eq!(snap.task_runs, 3);
        assert_eq!(snap.messages_in, 10);
        assert_eq!(snap.messages_out, 0);
    }

    #[test]
    fn conservation_accepts_a_real_shape_and_counts_live_graphs() {
        let snap = MetricsSnapshot {
            task_runs: 100,
            cooperative_yields: 12,
            graphs_created: 5,
            graphs_destroyed: 3,
            ..Default::default()
        };
        snap.check_conservation().unwrap();
        assert_eq!(snap.live_graphs(), 2);
    }

    #[test]
    fn conservation_rejects_destroying_uncreated_graphs() {
        let snap = MetricsSnapshot {
            graphs_created: 1,
            graphs_destroyed: 2,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("graph conservation"), "{err}");
    }

    #[test]
    fn conservation_rejects_excess_yields() {
        let snap = MetricsSnapshot {
            task_runs: 1,
            cooperative_yields: 2,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("yield conservation"), "{err}");
    }

    #[test]
    fn conservation_rejects_readmits_without_ejections() {
        let snap = MetricsSnapshot {
            backend_ejections: 1,
            backend_readmits: 2,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("backend health conservation"), "{err}");
    }

    #[test]
    fn retry_budget_gate() {
        let snap = MetricsSnapshot {
            backend_checkouts: 10,
            backend_retries: 20,
            ..Default::default()
        };
        snap.check_retry_budget(2).unwrap();
        let err = snap.check_retry_budget(1).unwrap_err();
        assert!(err.contains("retry budget exceeded"), "{err}");
    }
}
