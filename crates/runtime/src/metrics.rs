//! Runtime-wide metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing what the runtime has done.
///
/// Updated with relaxed atomics on the hot path; read by the benchmark
/// harness and by tests.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    /// Task executions (one per scheduler dispatch of a task).
    pub task_runs: AtomicU64,
    /// Times a task voluntarily yielded because its timeslice expired.
    pub cooperative_yields: AtomicU64,
    /// Values processed by compute tasks.
    pub values_processed: AtomicU64,
    /// Application messages deserialised by input tasks.
    pub messages_in: AtomicU64,
    /// Application messages serialised by output tasks.
    pub messages_out: AtomicU64,
    /// Task graphs instantiated.
    pub graphs_created: AtomicU64,
    /// Task graphs torn down.
    pub graphs_destroyed: AtomicU64,
    /// Tasks stolen from another worker's queue ("scavenged").
    pub tasks_scavenged: AtomicU64,
    /// Tasks stolen *across shard boundaries*: an idle shard's worker
    /// executed a runnable task belonging to a sibling shard's scheduler.
    pub tasks_stolen: AtomicU64,
    /// Output-task dispatches that ended in a busy retry: the write
    /// blocked and the task asked to be re-run immediately instead of
    /// parking on writable readiness. Zero under the wakeup-driven output
    /// mode while a peer is stalled — the stress tests assert it.
    pub output_busy_retries: AtomicU64,
}

impl RuntimeMetrics {
    /// Creates a fresh shareable metrics block.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(RuntimeMetrics::default())
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            task_runs: Self::get(&self.task_runs),
            cooperative_yields: Self::get(&self.cooperative_yields),
            values_processed: Self::get(&self.values_processed),
            messages_in: Self::get(&self.messages_in),
            messages_out: Self::get(&self.messages_out),
            graphs_created: Self::get(&self.graphs_created),
            graphs_destroyed: Self::get(&self.graphs_destroyed),
            tasks_scavenged: Self::get(&self.tasks_scavenged),
            tasks_stolen: Self::get(&self.tasks_stolen),
            output_busy_retries: Self::get(&self.output_busy_retries),
        }
    }
}

/// Plain-value snapshot of [`RuntimeMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Task executions.
    pub task_runs: u64,
    /// Cooperative yields.
    pub cooperative_yields: u64,
    /// Values processed by compute tasks.
    pub values_processed: u64,
    /// Messages deserialised.
    pub messages_in: u64,
    /// Messages serialised.
    pub messages_out: u64,
    /// Graphs created.
    pub graphs_created: u64,
    /// Graphs destroyed.
    pub graphs_destroyed: u64,
    /// Tasks scavenged from other workers.
    pub tasks_scavenged: u64,
    /// Tasks stolen across shard boundaries.
    pub tasks_stolen: u64,
    /// Output-task busy retries (blocked write + immediate re-run).
    pub output_busy_retries: u64,
}

impl MetricsSnapshot {
    /// Graphs currently alive according to this snapshot.
    pub fn live_graphs(&self) -> u64 {
        self.graphs_created.saturating_sub(self.graphs_destroyed)
    }

    /// Checks the runtime's conservation laws — the counterpart of
    /// `StatsSnapshot::check_conservation` on the substrate side, shared
    /// by the simulation harness's tick checks and the end-to-end suite:
    ///
    /// * a graph must be created before it can be destroyed;
    /// * a cooperative yield happens *inside* a task run (the run is
    ///   counted when dispatch starts), so yields can never outnumber
    ///   runs.
    ///
    /// Only inequalities that hold at every instant under concurrent
    /// updates are checked here; point-in-time balance checks (say,
    /// messages in vs. out) belong to quiescent assertions, not tick
    /// checks.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.graphs_destroyed > self.graphs_created {
            return Err(format!(
                "graph conservation violated: {} destroyed > {} created",
                self.graphs_destroyed, self.graphs_created
            ));
        }
        if self.cooperative_yields > self.task_runs {
            return Err(format!(
                "yield conservation violated: {} yields > {} task runs",
                self.cooperative_yields, self.task_runs
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = RuntimeMetrics::default();
        RuntimeMetrics::add(&m.task_runs, 3);
        RuntimeMetrics::add(&m.messages_in, 10);
        let snap = m.snapshot();
        assert_eq!(snap.task_runs, 3);
        assert_eq!(snap.messages_in, 10);
        assert_eq!(snap.messages_out, 0);
    }

    #[test]
    fn conservation_accepts_a_real_shape_and_counts_live_graphs() {
        let snap = MetricsSnapshot {
            task_runs: 100,
            cooperative_yields: 12,
            graphs_created: 5,
            graphs_destroyed: 3,
            ..Default::default()
        };
        snap.check_conservation().unwrap();
        assert_eq!(snap.live_graphs(), 2);
    }

    #[test]
    fn conservation_rejects_destroying_uncreated_graphs() {
        let snap = MetricsSnapshot {
            graphs_created: 1,
            graphs_destroyed: 2,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("graph conservation"), "{err}");
    }

    #[test]
    fn conservation_rejects_excess_yields() {
        let snap = MetricsSnapshot {
            task_runs: 1,
            cooperative_yields: 2,
            ..Default::default()
        };
        let err = snap.check_conservation().unwrap_err();
        assert!(err.contains("yield conservation"), "{err}");
    }
}
