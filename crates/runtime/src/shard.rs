//! Per-core shards and task-graph placement.
//!
//! The sharded platform (ISSUE: fig5 scaling past a single reactor) splits
//! the runtime into one [`Shard`] per core. Each shard owns
//!
//! * a scheduler pool ([`crate::scheduler::Scheduler`], joined to the
//!   platform-wide [`crate::scheduler::StealGroup`] so idle shards pull
//!   runnable tasks from loaded ones),
//! * a dispatcher thread (the per-shard reactor of
//!   [`crate::dispatcher`]), and
//! * a [`Poller`] — the reactor's event queue, and the *only* poller a
//!   graph placed on this shard ever registers endpoints with.
//!
//! Placement **policy** is deliberately separate from the stealing
//! **mechanism**: a [`PlacementPolicy`] decides which shard a new task
//! graph lands on (round-robin by default, least-loaded as the adaptive
//! alternative), while the steal path in [`crate::scheduler::steal`]
//! corrects residual imbalance at task granularity without ever moving a
//! graph's poller registrations off its owning shard.

use crate::dispatcher::ServiceShared;
use crate::scheduler::{Scheduler, ShardLoad};
use flick_net::{Endpoint, Poller, Readiness, Token};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The token a shard's control-plane events (inbox notifications, service
/// stop sweeps) post under. Listener, watcher and graph tokens are
/// allocated from `1` upwards, so the namespaces never collide.
pub(crate) const CONTROL_TOKEN: Token = Token(0);

/// Chooses the shard each new task graph is placed on.
///
/// Implementations must be cheap: the dispatcher consults the policy once
/// per graph instantiation, on the accept path.
pub trait PlacementPolicy: Send + Sync {
    /// A short label for benchmark output ("round-robin", "least-loaded").
    fn label(&self) -> &'static str;

    /// Whether [`PlacementPolicy::place`] reads the load fields. When
    /// `false` (round-robin) the caller passes placeholder entries instead
    /// of paying for a queue-by-queue load snapshot on the accept path;
    /// the slice length — the shard count — is always accurate.
    fn needs_loads(&self) -> bool {
        true
    }

    /// Returns the index of the shard the next graph should be placed on.
    /// `loads` holds one entry per shard, in shard order (load fields are
    /// only populated when [`PlacementPolicy::needs_loads`] is `true`).
    fn place(&self, loads: &[ShardLoad]) -> usize;
}

/// Deterministic rotation over the shards: graph `i` lands on shard
/// `i mod n`. The default policy — placement is reproducible run to run,
/// and the steal path absorbs any skew the rotation cannot see.
#[derive(Debug, Default)]
pub struct RoundRobinPlacement {
    next: AtomicUsize,
}

impl PlacementPolicy for RoundRobinPlacement {
    fn label(&self) -> &'static str {
        "round-robin"
    }

    fn needs_loads(&self) -> bool {
        false
    }

    fn place(&self, loads: &[ShardLoad]) -> usize {
        if loads.is_empty() {
            return 0;
        }
        self.next.fetch_add(1, Ordering::Relaxed) % loads.len()
    }
}

/// Places each graph on the shard with the fewest runnable-or-registered
/// tasks at the moment of placement. Adaptive, but not deterministic.
#[derive(Debug, Default)]
pub struct LeastLoadedPlacement;

impl PlacementPolicy for LeastLoadedPlacement {
    fn label(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&self, loads: &[ShardLoad]) -> usize {
        loads
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.registered + load.queued)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The placement configuration carried by
/// [`crate::platform::PlatformConfig`].
#[derive(Clone, Default)]
pub enum Placement {
    /// Deterministic rotation (the default).
    #[default]
    RoundRobin,
    /// Pick the least-loaded shard per graph.
    LeastLoaded,
    /// A user-supplied policy.
    Custom(Arc<dyn PlacementPolicy>),
}

impl std::fmt::Debug for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::RoundRobin => f.write_str("RoundRobin"),
            Placement::LeastLoaded => f.write_str("LeastLoaded"),
            Placement::Custom(policy) => write!(f, "Custom({})", policy.label()),
        }
    }
}

impl Placement {
    /// Instantiates the policy object this configuration describes.
    pub fn build(&self) -> Arc<dyn PlacementPolicy> {
        match self {
            Placement::RoundRobin => Arc::new(RoundRobinPlacement::default()),
            Placement::LeastLoaded => Arc::new(LeastLoadedPlacement),
            Placement::Custom(policy) => Arc::clone(policy),
        }
    }
}

/// Work sent to a shard's dispatcher from another thread (the platform's
/// `deploy`, a sibling shard's accept path, or a service handle).
pub(crate) enum ShardCommand {
    /// Home a newly deployed service on this shard: register its listener
    /// with the shard's poller and start accepting.
    AddService(Arc<ServiceShared>),
    /// Instantiate one task graph over `clients` for `service` on this
    /// shard (the cross-shard graph handoff: the clients were accepted on
    /// the service's home shard, and their endpoints are registered with
    /// *this* shard's poller only — level-triggered registration catches
    /// any bytes that arrived during the handoff).
    BuildGraph {
        /// The service the graph belongs to.
        service: Arc<ServiceShared>,
        /// The client connections of the new graph instance.
        clients: Vec<Endpoint>,
    },
}

/// One shard of the platform: a scheduler pool, a dispatcher thread (owned
/// by [`crate::platform::Platform`]) and the shard's poller.
pub struct Shard {
    id: usize,
    scheduler: Arc<Scheduler>,
    poller: Poller,
    inbox: Mutex<VecDeque<ShardCommand>>,
    graphs_built: AtomicU64,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("graphs_built", &self.graphs_built.load(Ordering::Relaxed))
            .finish()
    }
}

impl Shard {
    pub(crate) fn new(id: usize, scheduler: Arc<Scheduler>) -> Self {
        Shard {
            id,
            scheduler,
            poller: Poller::new(),
            inbox: Mutex::new(VecDeque::new()),
            graphs_built: AtomicU64::new(0),
        }
    }

    /// This shard's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This shard's scheduler.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// The shard's reactor event queue.
    pub fn poller(&self) -> &Poller {
        &self.poller
    }

    /// Task graphs instantiated on this shard so far.
    pub fn graphs_built(&self) -> u64 {
        self.graphs_built.load(Ordering::Relaxed)
    }

    pub(crate) fn note_graph_built(&self) {
        self.graphs_built.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn drain_inbox(&self) -> Vec<ShardCommand> {
        let mut inbox = self.inbox.lock();
        inbox.drain(..).collect()
    }
}

/// A point-in-time description of one shard, as reported by
/// [`crate::platform::Platform::shard_status`] and consumed by the fig5
/// per-shard utilization table.
#[derive(Debug, Clone, Copy)]
pub struct ShardStatus {
    /// The shard index.
    pub shard: usize,
    /// Task graphs instantiated on this shard.
    pub graphs_built: u64,
    /// The shard scheduler's load counters.
    pub load: ShardLoad,
}

/// All shards of one platform, plus the placement policy that distributes
/// task graphs over them.
pub struct ShardSet {
    shards: Vec<Arc<Shard>>,
    policy: Arc<dyn PlacementPolicy>,
    stop: AtomicBool,
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy.label())
            .finish()
    }
}

impl ShardSet {
    pub(crate) fn new(shards: Vec<Arc<Shard>>, policy: Arc<dyn PlacementPolicy>) -> Arc<Self> {
        assert!(!shards.is_empty(), "a platform needs at least one shard");
        Arc::new(ShardSet {
            shards,
            policy,
            stop: AtomicBool::new(false),
        })
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `false` — a shard set always has at least one shard.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The placement policy in force.
    pub fn policy(&self) -> &Arc<dyn PlacementPolicy> {
        &self.policy
    }

    /// Asks the placement policy for the shard the next graph lands on.
    /// The per-queue load snapshot is only taken for policies that read
    /// it; the default round-robin pays nothing on the accept path.
    pub(crate) fn place(&self) -> usize {
        let loads: Vec<ShardLoad> = if self.policy.needs_loads() {
            self.shards
                .iter()
                .map(|shard| shard.scheduler.load())
                .collect()
        } else {
            (0..self.shards.len())
                .map(|shard| ShardLoad {
                    shard,
                    ..Default::default()
                })
                .collect()
        };
        self.policy.place(&loads).min(self.shards.len() - 1)
    }

    /// Sends a command to `shard`'s dispatcher and wakes its reactor.
    pub(crate) fn send(&self, shard: usize, command: ShardCommand) {
        let shard = &self.shards[shard];
        shard.inbox.lock().push_back(command);
        shard.poller.post(CONTROL_TOKEN, Readiness::default());
    }

    /// Posts a control event to every shard (service stop, shutdown).
    pub(crate) fn post_control_all(&self) {
        for shard in &self.shards {
            shard.poller.post(CONTROL_TOKEN, Readiness::default());
        }
    }

    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.poller.wake();
        }
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RuntimeMetrics;
    use crate::task::SchedulingPolicy;

    fn loads(n: usize) -> Vec<ShardLoad> {
        (0..n)
            .map(|shard| ShardLoad {
                shard,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn round_robin_rotates_deterministically() {
        let policy = RoundRobinPlacement::default();
        let loads = loads(3);
        let seq: Vec<usize> = (0..7).map(|_| policy.place(&loads)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_prefers_the_idle_shard() {
        let policy = LeastLoadedPlacement;
        let mut loads = loads(3);
        loads[0].registered = 10;
        loads[1].registered = 2;
        loads[1].queued = 1;
        loads[2].registered = 7;
        assert_eq!(policy.place(&loads), 1);
    }

    #[test]
    fn placement_config_builds_the_matching_policy() {
        assert_eq!(Placement::RoundRobin.build().label(), "round-robin");
        assert_eq!(Placement::LeastLoaded.build().label(), "least-loaded");
        let custom = Placement::Custom(Arc::new(LeastLoadedPlacement));
        assert_eq!(custom.build().label(), "least-loaded");
        assert_eq!(format!("{:?}", custom), "Custom(least-loaded)");
    }

    #[test]
    fn shard_set_place_clamps_bogus_policies() {
        struct OutOfRange;
        impl PlacementPolicy for OutOfRange {
            fn label(&self) -> &'static str {
                "out-of-range"
            }
            fn place(&self, _loads: &[ShardLoad]) -> usize {
                99
            }
        }
        let scheduler = Arc::new(Scheduler::start(
            1,
            SchedulingPolicy::default(),
            RuntimeMetrics::new_shared(),
        ));
        let set = ShardSet::new(
            vec![Arc::new(Shard::new(0, scheduler))],
            Arc::new(OutOfRange),
        );
        assert_eq!(set.place(), 0);
    }
}
