//! Task-graph assembly.
//!
//! A [`GraphBuilder`] wires tasks together with bounded channels and produces
//! a [`GraphInstance`]: the set of tasks (with their global [`TaskId`]s)
//! ready to be registered with the scheduler. Graphs are directed and
//! acyclic by construction — channels can only be created from an
//! already-added producer node to an already-added consumer node, and the
//! builder assigns identifiers in topological insertion order.

use crate::channel::{ChannelConsumer, ChannelProducer, TaskChannel, DEFAULT_CHANNEL_CAPACITY};
use crate::task::{Task, TaskId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global task-id allocator shared by all graphs of a platform.
#[derive(Debug, Default)]
pub struct TaskIdAllocator {
    next: AtomicU64,
}

impl TaskIdAllocator {
    /// Creates an allocator starting at id 1.
    pub fn new() -> Self {
        TaskIdAllocator {
            next: AtomicU64::new(1),
        }
    }

    /// Allocates a fresh task id.
    pub fn allocate(&self) -> TaskId {
        TaskId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Identifies a node within a graph being built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub TaskId);

impl NodeId {
    /// The global task id of this node.
    pub fn task_id(&self) -> TaskId {
        self.0
    }
}

/// A graph under construction.
///
/// The builder separates *declaring* nodes (which allocates their task ids
/// and channels) from *installing* the task objects, because a task object
/// usually needs its input consumers and output producers at construction
/// time. The typical sequence is:
///
/// 1. [`GraphBuilder::declare_node`] for every task;
/// 2. [`GraphBuilder::channel`] for every edge, obtaining producer/consumer
///    halves;
/// 3. [`GraphBuilder::install`] each constructed task;
/// 4. [`GraphBuilder::build`].
pub struct GraphBuilder<'a> {
    allocator: &'a TaskIdAllocator,
    name: String,
    declared: Vec<NodeId>,
    tasks: HashMap<TaskId, Box<dyn Task>>,
    channel_capacity: usize,
}

impl<'a> GraphBuilder<'a> {
    /// Starts building a graph named `name`.
    pub fn new(name: impl Into<String>, allocator: &'a TaskIdAllocator) -> Self {
        GraphBuilder {
            allocator,
            name: name.into(),
            declared: Vec::new(),
            tasks: HashMap::new(),
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
        }
    }

    /// Overrides the capacity used for channels created by this builder.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity;
        self
    }

    /// Declares a node, allocating its task id.
    pub fn declare_node(&mut self) -> NodeId {
        let id = NodeId(self.allocator.allocate());
        self.declared.push(id);
        id
    }

    /// Creates a channel whose consumer is `consumer`.
    pub fn channel(&self, consumer: NodeId) -> (ChannelProducer, ChannelConsumer) {
        TaskChannel::bounded(self.channel_capacity, consumer.task_id())
    }

    /// Installs the task object for a declared node.
    ///
    /// # Panics
    ///
    /// Panics if the node was not declared by this builder or was already
    /// installed — both are programming errors in graph-factory code.
    pub fn install(&mut self, node: NodeId, task: Box<dyn Task>) {
        assert!(
            self.declared.contains(&node),
            "node {:?} was not declared by this builder",
            node
        );
        let previous = self.tasks.insert(node.task_id(), task);
        assert!(previous.is_none(), "node {:?} was installed twice", node);
    }

    /// Finishes the graph.
    ///
    /// # Panics
    ///
    /// Panics if any declared node was never installed.
    pub fn build(self) -> GraphInstance {
        for node in &self.declared {
            assert!(
                self.tasks.contains_key(&node.task_id()),
                "node {:?} of graph `{}` was declared but never installed",
                node,
                self.name
            );
        }
        GraphInstance {
            name: self.name,
            tasks: self.tasks.into_iter().collect(),
            entry_tasks: self.declared.iter().map(|n| n.task_id()).collect(),
        }
    }
}

/// A fully assembled task graph, ready to hand to the scheduler.
pub struct GraphInstance {
    name: String,
    tasks: Vec<(TaskId, Box<dyn Task>)>,
    entry_tasks: Vec<TaskId>,
}

impl std::fmt::Debug for GraphInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphInstance")
            .field("name", &self.name)
            .field("tasks", &self.entry_tasks)
            .finish()
    }
}

impl GraphInstance {
    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ids of every task in the graph.
    pub fn task_ids(&self) -> &[TaskId] {
        &self.entry_tasks
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Consumes the graph, yielding its tasks for registration.
    pub fn into_tasks(self) -> Vec<(TaskId, Box<dyn Task>)> {
        self.tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskContext, TaskStatus};

    struct NopTask;
    impl Task for NopTask {
        fn label(&self) -> &str {
            "nop"
        }
        fn run(&mut self, _ctx: &mut TaskContext) -> TaskStatus {
            TaskStatus::Finished
        }
    }

    #[test]
    fn build_two_node_graph() {
        let alloc = TaskIdAllocator::new();
        let mut builder = GraphBuilder::new("g", &alloc);
        let a = builder.declare_node();
        let b = builder.declare_node();
        let (_tx, _rx) = builder.channel(b);
        builder.install(a, Box::new(NopTask));
        builder.install(b, Box::new(NopTask));
        let graph = builder.build();
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.name(), "g");
        assert_eq!(graph.task_ids().len(), 2);
        assert!(!graph.is_empty());
    }

    #[test]
    fn allocator_produces_unique_ids_across_graphs() {
        let alloc = TaskIdAllocator::new();
        let mut b1 = GraphBuilder::new("g1", &alloc);
        let n1 = b1.declare_node();
        let mut b2 = GraphBuilder::new("g2", &alloc);
        let n2 = b2.declare_node();
        assert_ne!(n1.task_id(), n2.task_id());
    }

    #[test]
    #[should_panic(expected = "was not declared")]
    fn installing_undeclared_node_panics() {
        let alloc = TaskIdAllocator::new();
        let mut b1 = GraphBuilder::new("g1", &alloc);
        let mut b2 = GraphBuilder::new("g2", &alloc);
        let foreign = b2.declare_node();
        b1.install(foreign, Box::new(NopTask));
    }

    #[test]
    #[should_panic(expected = "never installed")]
    fn building_with_missing_task_panics() {
        let alloc = TaskIdAllocator::new();
        let mut b = GraphBuilder::new("g", &alloc);
        let _node = b.declare_node();
        let _ = b.build();
    }

    #[test]
    fn channel_consumer_matches_node() {
        let alloc = TaskIdAllocator::new();
        let mut b = GraphBuilder::new("g", &alloc);
        let n = b.declare_node();
        let (tx, rx) = b.channel(n);
        assert_eq!(tx.consumer(), n.task_id());
        assert_eq!(rx.consumer(), n.task_id());
        b.install(n, Box::new(NopTask));
        let _ = b.build();
    }
}
