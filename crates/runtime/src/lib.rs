//! The FLICK platform runtime.
//!
//! This crate reproduces §5 of the paper: the execution environment that
//! runs compiled FLICK programs as *task graphs* — directed acyclic graphs of
//! small, cooperatively scheduled tasks connected by bounded channels.
//!
//! The main pieces are:
//!
//! * [`value::Value`] — the dynamically typed values that flow between tasks
//!   (parsed application messages, integers, strings, lists);
//! * [`channel`] — bounded single-consumer task channels;
//! * [`task`] — the [`task::Task`] trait, the cooperative
//!   [`task::TaskContext`] and the three scheduling policies of §6.4;
//! * [`tasks`] — the concrete task kinds: input (deserialise), compute,
//!   output (serialise), and a synthetic source used by micro-benchmarks;
//! * [`graph`] — task-graph assembly and instances;
//! * [`scheduler`] — the worker-thread pool with per-worker FIFO queues,
//!   work scavenging, the timeslice discipline, and the cross-shard
//!   [`scheduler::steal`] path;
//! * [`shard`] — per-core shards (scheduler pool + dispatcher + poller)
//!   and the pluggable [`shard::PlacementPolicy`] that distributes task
//!   graphs over them;
//! * [`dispatcher`] — the per-shard application dispatcher (connection →
//!   program instance) and graph dispatcher (connection → task graph);
//! * [`platform`] — the top-level [`platform::Platform`] that ties the
//!   shards, the network substrate and deployed services together;
//! * [`pool`] — pre-allocated backend-connection and buffer pools.
//!
//! Services are described by implementing [`platform::GraphFactory`] (done
//! automatically for FLICK programs by the compiler crate, or by hand as the
//! services crate does for its baselines).

pub mod channel;
pub mod dispatcher;
pub mod error;
pub mod graph;
pub mod metrics;
pub mod platform;
pub mod pool;
pub mod scheduler;
pub mod shard;
pub mod task;
pub mod tasks;
pub mod value;

pub use channel::{ChannelConsumer, ChannelProducer, TaskChannel};
pub use dispatcher::{DeployedService, DispatcherBackend};
pub use error::RuntimeError;
pub use graph::{GraphBuilder, GraphInstance, NodeId};
pub use metrics::{MetricsSnapshot, RuntimeMetrics};
pub use platform::{
    default_shard_count, GraphFactory, Platform, PlatformConfig, ServiceEnv, ServiceSpec, Watch,
};
pub use pool::{BackendPolicy, BackendPool, BackendTarget, BufferPool, RoutePolicy};
pub use scheduler::{Scheduler, ShardLoad, StealGroup};
pub use shard::{
    LeastLoadedPlacement, Placement, PlacementPolicy, RoundRobinPlacement, Shard, ShardStatus,
};
pub use task::{SchedulingPolicy, Task, TaskContext, TaskId, TaskStatus};
pub use tasks::{
    ComputeLogic, ComputeTask, ExecMode, InputTask, OutputMode, OutputTask, Outputs, SourceTask,
};
pub use value::{SharedDict, Value};
