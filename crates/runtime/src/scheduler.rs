//! The cooperative task scheduler.
//!
//! §5 of the paper: tasks are cooperatively scheduled onto a fixed pool of
//! worker threads. Each worker owns a FIFO task queue; a task is always
//! hashed to the same worker's queue (to reduce cache misses), workers
//! scavenge work from other queues when their own is empty, and a running
//! task yields control when it exceeds the timeslice threshold (enforced by
//! [`crate::task::TaskContext`] inside every task implementation).
//!
//! In a sharded platform every shard runs its own scheduler; idle shards
//! additionally pull runnable tasks from their siblings through the
//! [`steal`] path (see [`steal::StealGroup`]). A stolen task is executed
//! *through the owning shard's scheduler state* — its task slot, its
//! follow-on wakes, its exit watchers — so waker registrations in the
//! owning shard's poller stay valid no matter which shard's worker ran it.

use crate::graph::GraphInstance;
use crate::metrics::RuntimeMetrics;
use crate::task::{SchedulingPolicy, Task, TaskContext, TaskId, TaskStatus};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub use steal::StealGroup;

struct WorkerQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

struct TaskSlot {
    task: Mutex<Option<Box<dyn Task>>>,
    queued: AtomicBool,
}

/// Callback invoked (once) when a task exits the scheduler — it finished,
/// or was removed during graph teardown.
pub type ExitWatcher = Box<dyn Fn(TaskId) + Send + Sync>;

struct SchedulerInner {
    queues: Vec<WorkerQueue>,
    tasks: RwLock<HashMap<TaskId, Arc<TaskSlot>>>,
    policy: SchedulingPolicy,
    metrics: Arc<RuntimeMetrics>,
    shutdown: AtomicBool,
    exit_watchers: Mutex<HashMap<TaskId, Vec<ExitWatcher>>>,
    /// Which shard this scheduler belongs to (0 outside sharded platforms).
    shard: usize,
    /// The cross-shard steal set, if this scheduler is part of one.
    group: Option<Arc<StealGroup>>,
    /// Bumped on every `schedule`; idle workers re-check work availability
    /// against it before parking so a wakeup posted between their last scan
    /// and the park cannot be lost.
    work_seq: AtomicU64,
    /// Workers with no local or stealable work park here; `schedule`
    /// notifies it so any idle worker (not just the hashed one) picks new
    /// work up immediately instead of after the scavenge heartbeat.
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    /// Number of workers currently parked (or committed to parking) on
    /// `idle_cond`. Lets the schedule hot path skip the lock + notify
    /// entirely while every worker is busy — the common case under load.
    /// SeqCst against `work_seq`: a worker bumps this *before* its final
    /// sequence re-check, and `schedule` bumps the sequence *before*
    /// reading this, so one side always observes the other.
    parked: AtomicUsize,
    /// Tasks of this scheduler executed by any worker (own or thief).
    runs: AtomicU64,
    /// Tasks of this scheduler that a sibling shard's worker executed.
    stolen_out: AtomicU64,
    /// Tasks of sibling shards that this scheduler's workers executed.
    stolen_in: AtomicU64,
}

/// Point-in-time load description of one shard's scheduler, consumed by
/// the least-loaded placement policy and the fig5 per-shard utilization
/// report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard id this scheduler serves.
    pub shard: usize,
    /// Tasks currently registered (alive graphs' tasks).
    pub registered: usize,
    /// Tasks currently queued runnable.
    pub queued: usize,
    /// Task executions attributed to this shard (its own tasks, wherever
    /// they ran).
    pub runs: u64,
    /// This shard's tasks that were executed by a sibling shard's worker.
    pub stolen_out: u64,
    /// Sibling shards' tasks that this shard's workers executed.
    pub stolen_in: u64,
}

impl SchedulerInner {
    fn queue_for(&self, id: TaskId) -> usize {
        // The hash over the task identifier that §5 describes; identifiers
        // are dense integers so a multiplicative hash spreads them well.
        (id.0.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize % self.queues.len()
    }

    fn schedule(&self, id: TaskId) {
        let slot = {
            let tasks = self.tasks.read();
            match tasks.get(&id) {
                Some(slot) => Arc::clone(slot),
                None => return,
            }
        };
        if slot.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        let worker = self.queue_for(id);
        self.queues[worker].queue.lock().push_back(id);
        // Publish the new work, then wake one idle worker — but only if
        // one is (or is about to be) parked; under load every worker is
        // busy and the hot path stays lock-free. The SeqCst pair with the
        // worker's park protocol (bump `parked`, then re-check `work_seq`
        // under `idle_lock`) guarantees that either the parking worker
        // sees this bumped sequence and aborts the park, or this reader
        // sees `parked > 0` and takes the lock to notify.
        self.work_seq.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _guard = self.idle_lock.lock();
            self.idle_cond.notify_one();
        }
    }

    fn pop_own(&self, worker: usize) -> Option<TaskId> {
        self.queues[worker].queue.lock().pop_front()
    }

    fn scavenge(&self, worker: usize) -> Option<TaskId> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(id) = self.queues[victim].queue.lock().pop_front() {
                RuntimeMetrics::add(&self.metrics.tasks_scavenged, 1);
                return Some(id);
            }
        }
        None
    }

    fn run_one(&self, id: TaskId) {
        let slot = {
            let tasks = self.tasks.read();
            match tasks.get(&id) {
                Some(slot) => Arc::clone(slot),
                None => return,
            }
        };
        slot.queued.store(false, Ordering::Release);
        let mut guard = slot.task.lock();
        let Some(task) = guard.as_mut() else {
            return;
        };
        RuntimeMetrics::add(&self.metrics.task_runs, 1);
        self.runs.fetch_add(1, Ordering::Relaxed);
        let mut ctx = TaskContext::new(self.policy, Arc::clone(&self.metrics));
        let status = task.run(&mut ctx);
        drop(guard);
        for wake in ctx.take_wakes() {
            self.schedule(wake);
        }
        match status {
            TaskStatus::Runnable => self.schedule(id),
            TaskStatus::Idle => {}
            TaskStatus::Finished => {
                self.tasks.write().remove(&id);
                self.notify_exit(id);
            }
        }
    }

    /// Fires (and removes) the exit watchers of `id`, if any.
    fn notify_exit(&self, id: TaskId) {
        let watchers = self.exit_watchers.lock().remove(&id);
        if let Some(watchers) = watchers {
            for watcher in watchers {
                watcher(id);
            }
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Snapshot the work sequence *before* scanning so a schedule
            // that races the scan is caught by the re-check below.
            let seq = self.work_seq.load(Ordering::Acquire);
            if let Some(id) = self.pop_own(worker).or_else(|| self.scavenge(worker)) {
                self.run_one(id);
                continue;
            }
            if let Some(group) = &self.group {
                if group.steal_one(self) {
                    continue;
                }
            }
            // Nothing local, nothing stealable: park. The short timeout is
            // only the cross-shard steal heartbeat — local work arrival
            // always wakes an idle worker through `schedule`. The park
            // commitment (`parked` increment) must precede the final
            // sequence re-check; see the SeqCst pairing note on `parked`.
            let mut guard = self.idle_lock.lock();
            self.parked.fetch_add(1, Ordering::SeqCst);
            if self.work_seq.load(Ordering::SeqCst) == seq && !self.shutdown.load(Ordering::Acquire)
            {
                self.idle_cond
                    .wait_for(&mut guard, Duration::from_millis(1));
            }
            self.parked.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The cross-shard work-stealing path.
///
/// A [`StealGroup`] is the *mechanism*: a set of sibling schedulers (one
/// per shard) whose idle workers pull runnable tasks from each other's
/// queues. Placement *policy* — which shard a task graph lands on in the
/// first place — lives in [`crate::shard::PlacementPolicy`], keeping the
/// two separable as in warehouse-scale scheduler designs.
///
/// The safety guard: a stolen task is executed via the **owning** shard's
/// [`SchedulerInner`] (`run_one` on the victim), so the task slot, the
/// follow-on wakes of its [`TaskContext`], and its exit watchers all stay
/// in the owning shard. Waker registrations that the owning shard's
/// dispatcher installed in its poller therefore remain valid — the thief
/// only donates CPU, it never migrates state.
pub mod steal {
    use super::*;
    use std::sync::Weak;

    /// A set of sibling schedulers that steal runnable tasks from each
    /// other when idle.
    pub struct StealGroup {
        members: RwLock<Vec<Weak<SchedulerInner>>>,
    }

    impl Default for StealGroup {
        fn default() -> Self {
            StealGroup {
                members: RwLock::new(Vec::new()),
            }
        }
    }

    impl std::fmt::Debug for StealGroup {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("StealGroup")
                .field("members", &self.members.read().len())
                .finish()
        }
    }

    impl StealGroup {
        /// Creates an empty group; pass it to
        /// [`Scheduler::start_sharded`][super::Scheduler::start_sharded]
        /// for every shard that should share work.
        pub fn new() -> Arc<Self> {
            Arc::new(StealGroup::default())
        }

        pub(super) fn join(&self, inner: &Arc<SchedulerInner>) {
            self.members.write().push(Arc::downgrade(inner));
        }

        /// Number of live member schedulers.
        pub fn len(&self) -> usize {
            self.members
                .read()
                .iter()
                .filter(|w| w.strong_count() > 0)
                .count()
        }

        /// `true` if no scheduler has joined (or all have been dropped).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Steals and executes one runnable task from a sibling of
        /// `thief`. Returns `true` if a task was run.
        ///
        /// Victim selection rotates with the thief's shard id so shard 0
        /// is not systematically farmed first.
        pub(super) fn steal_one(&self, thief: &SchedulerInner) -> bool {
            let victims: Vec<Arc<SchedulerInner>> = {
                let members = self.members.read();
                members.iter().filter_map(Weak::upgrade).collect()
            };
            let n = victims.len();
            if n < 2 {
                return false;
            }
            for offset in 0..n {
                let victim = &victims[(thief.shard + 1 + offset) % n];
                if std::ptr::eq(Arc::as_ptr(victim), thief as *const SchedulerInner) {
                    continue;
                }
                if victim.shutdown.load(Ordering::Acquire) {
                    continue;
                }
                for q in &victim.queues {
                    let popped = q.queue.lock().pop_front();
                    if let Some(id) = popped {
                        victim.stolen_out.fetch_add(1, Ordering::Relaxed);
                        thief.stolen_in.fetch_add(1, Ordering::Relaxed);
                        RuntimeMetrics::add(&thief.metrics.tasks_stolen, 1);
                        // Run through the *owning* scheduler: wakes and
                        // exit watchers stay in the owning shard.
                        victim.run_one(id);
                        return true;
                    }
                }
            }
            false
        }
    }
}

/// The worker-thread pool executing task graphs.
pub struct Scheduler {
    inner: Arc<SchedulerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("tasks", &self.task_count())
            .finish()
    }
}

impl Scheduler {
    /// Starts a scheduler with `workers` worker threads under `policy`.
    ///
    /// The paper sets the number of workers to the number of CPU cores; the
    /// benchmark harness passes the core count being evaluated.
    pub fn start(workers: usize, policy: SchedulingPolicy, metrics: Arc<RuntimeMetrics>) -> Self {
        Self::start_inner(workers, policy, metrics, None, 0)
    }

    /// Starts the scheduler of shard `shard` and joins it to `group`:
    /// whenever this scheduler's workers find no local work they steal
    /// runnable tasks from the group's other members (and vice versa).
    ///
    /// Stolen tasks are executed through the owning scheduler's state, so
    /// their queues, exit watchers and poller registrations stay with the
    /// owning shard; see [`steal`].
    pub fn start_sharded(
        workers: usize,
        policy: SchedulingPolicy,
        metrics: Arc<RuntimeMetrics>,
        group: &Arc<StealGroup>,
        shard: usize,
    ) -> Self {
        Self::start_inner(workers, policy, metrics, Some(Arc::clone(group)), shard)
    }

    fn start_inner(
        workers: usize,
        policy: SchedulingPolicy,
        metrics: Arc<RuntimeMetrics>,
        group: Option<Arc<StealGroup>>,
        shard: usize,
    ) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(SchedulerInner {
            queues: (0..workers)
                .map(|_| WorkerQueue {
                    queue: Mutex::new(VecDeque::new()),
                })
                .collect(),
            tasks: RwLock::new(HashMap::new()),
            policy,
            metrics,
            shutdown: AtomicBool::new(false),
            exit_watchers: Mutex::new(HashMap::new()),
            shard,
            group,
            work_seq: AtomicU64::new(0),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            parked: AtomicUsize::new(0),
            runs: AtomicU64::new(0),
            stolen_out: AtomicU64::new(0),
            stolen_in: AtomicU64::new(0),
        });
        if let Some(group) = &inner.group {
            group.join(&inner);
        }
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("flick-worker-{shard}-{i}"))
                    .spawn(move || inner.worker_loop(i))
                    .expect("spawning a worker thread")
            })
            .collect();
        Scheduler {
            inner,
            workers: handles,
        }
    }

    /// The scheduling policy in force.
    pub fn policy(&self) -> SchedulingPolicy {
        self.inner.policy
    }

    /// The shard this scheduler serves (0 outside sharded platforms).
    pub fn shard(&self) -> usize {
        self.inner.shard
    }

    /// A point-in-time load snapshot (queue depth, registered tasks, runs
    /// and steal counters), as consumed by placement policies and the
    /// fig5 per-shard utilization report.
    pub fn load(&self) -> ShardLoad {
        let queued = self.inner.queues.iter().map(|q| q.queue.lock().len()).sum();
        ShardLoad {
            shard: self.inner.shard,
            registered: self.task_count(),
            queued,
            runs: self.inner.runs.load(Ordering::Relaxed),
            stolen_out: self.inner.stolen_out.load(Ordering::Relaxed),
            stolen_in: self.inner.stolen_in.load(Ordering::Relaxed),
        }
    }

    /// The shared runtime metrics.
    pub fn metrics(&self) -> Arc<RuntimeMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Registers a task without scheduling it.
    pub fn register(&self, id: TaskId, task: Box<dyn Task>) {
        let slot = Arc::new(TaskSlot {
            task: Mutex::new(Some(task)),
            queued: AtomicBool::new(false),
        });
        self.inner.tasks.write().insert(id, slot);
    }

    /// Registers every task of a graph and schedules the given initial set.
    pub fn register_graph(&self, graph: GraphInstance, initial: &[TaskId]) {
        RuntimeMetrics::add(&self.inner.metrics.graphs_created, 1);
        for (id, task) in graph.into_tasks() {
            self.register(id, task);
        }
        for id in initial {
            self.schedule(*id);
        }
    }

    /// Makes a task runnable (it will be dispatched by its worker).
    pub fn schedule(&self, id: TaskId) {
        self.inner.schedule(id);
    }

    /// Returns `true` while the task is registered (not yet finished).
    pub fn is_registered(&self, id: TaskId) -> bool {
        self.inner.tasks.read().contains_key(&id)
    }

    /// Number of currently registered tasks.
    pub fn task_count(&self) -> usize {
        self.inner.tasks.read().len()
    }

    /// Removes a task outright (used when tearing down a graph whose
    /// connection vanished).
    pub fn remove(&self, id: TaskId) {
        self.inner.tasks.write().remove(&id);
        self.inner.notify_exit(id);
    }

    /// Registers `watcher` to run once when task `id` exits the scheduler
    /// (finishes or is removed). If the task is already gone the watcher
    /// fires immediately on this thread.
    ///
    /// This is the event-driven dispatcher's replacement for polling
    /// [`Scheduler::is_registered`] every tick: graph teardown becomes an
    /// event (the watcher posts to the dispatcher's poller) instead of a
    /// scan.
    pub fn watch_exit(&self, id: TaskId, watcher: ExitWatcher) {
        self.inner
            .exit_watchers
            .lock()
            .entry(id)
            .or_default()
            .push(watcher);
        // Re-check after installing: if the task exited between the
        // caller's decision and the insert, fire now (`notify_exit` removes
        // the entry, so a concurrent exit cannot double-fire it).
        if !self.is_registered(id) {
            self.inner.notify_exit(id);
        }
    }

    /// Blocks until every registered task has finished or the timeout
    /// elapses. Returns `true` if the scheduler drained completely.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.task_count() == 0 {
                return true;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        self.task_count() == 0
    }

    /// Stops the worker threads. Registered tasks are dropped.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.idle_lock.lock();
            self.inner.idle_cond.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, TaskIdAllocator};
    use crate::tasks::{ComputeLogic, ComputeTask, Outputs, SourceTask, SyntheticWorkTask};
    use crate::value::Value;
    use crate::RuntimeError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_a_single_task_to_completion() {
        let metrics = RuntimeMetrics::new_shared();
        let scheduler = Scheduler::start(2, SchedulingPolicy::default(), Arc::clone(&metrics));
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let id = TaskId(1);
        scheduler.register(
            id,
            Box::new(SyntheticWorkTask::new(
                "t",
                50,
                256,
                Some(Box::new(move || done2.store(true, Ordering::SeqCst))),
            )),
        );
        scheduler.schedule(id);
        assert!(scheduler.wait_idle(Duration::from_secs(5)));
        assert!(done.load(Ordering::SeqCst));
        assert!(RuntimeMetrics::get(&metrics.task_runs) >= 1);
    }

    /// Counts the values that flow through it and forwards nothing.
    struct Counter {
        seen: Arc<AtomicUsize>,
    }
    impl ComputeLogic for Counter {
        fn on_value(
            &mut self,
            _input: usize,
            _value: Value,
            _out: &mut Outputs<'_>,
        ) -> Result<(), RuntimeError> {
            self.seen.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn source_feeds_compute_across_workers() {
        let metrics = RuntimeMetrics::new_shared();
        let scheduler = Scheduler::start(4, SchedulingPolicy::default(), Arc::clone(&metrics));
        let alloc = TaskIdAllocator::new();
        let mut builder = GraphBuilder::new("pipeline", &alloc);
        let source_node = builder.declare_node();
        let compute_node = builder.declare_node();
        let (tx, rx) = builder.channel(compute_node);
        let seen = Arc::new(AtomicUsize::new(0));
        builder.install(source_node, Box::new(SourceTask::new("src", 500, 64, tx)));
        builder.install(
            compute_node,
            Box::new(ComputeTask::new(
                "count",
                vec![rx],
                vec![],
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            )),
        );
        let graph = builder.build();
        let initial = vec![source_node.task_id()];
        scheduler.register_graph(graph, &initial);
        assert!(
            scheduler.wait_idle(Duration::from_secs(10)),
            "graph should drain"
        );
        assert_eq!(seen.load(Ordering::Relaxed), 500);
        assert_eq!(RuntimeMetrics::get(&metrics.graphs_created), 1);
    }

    #[test]
    fn many_tasks_complete_under_all_policies() {
        for policy in [
            SchedulingPolicy::Cooperative {
                timeslice: Duration::from_micros(50),
            },
            SchedulingPolicy::NonCooperative,
            SchedulingPolicy::RoundRobin,
        ] {
            let metrics = RuntimeMetrics::new_shared();
            let scheduler = Scheduler::start(4, policy, metrics);
            let completed = Arc::new(AtomicUsize::new(0));
            for i in 0..40 {
                let completed = Arc::clone(&completed);
                let id = TaskId(100 + i);
                scheduler.register(
                    id,
                    Box::new(SyntheticWorkTask::new(
                        format!("t{i}"),
                        20,
                        512,
                        Some(Box::new(move || {
                            completed.fetch_add(1, Ordering::SeqCst);
                        })),
                    )),
                );
                scheduler.schedule(id);
            }
            assert!(
                scheduler.wait_idle(Duration::from_secs(10)),
                "policy {:?} stalled",
                policy
            );
            assert_eq!(completed.load(Ordering::SeqCst), 40, "policy {policy:?}");
        }
    }

    #[test]
    fn scheduling_unknown_task_is_harmless() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        scheduler.schedule(TaskId(999));
        assert!(!scheduler.is_registered(TaskId(999)));
    }

    #[test]
    fn remove_discards_a_registered_task() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        scheduler.register(TaskId(7), Box::new(SyntheticWorkTask::new("t", 1, 1, None)));
        assert!(scheduler.is_registered(TaskId(7)));
        scheduler.remove(TaskId(7));
        assert!(!scheduler.is_registered(TaskId(7)));
    }

    #[test]
    fn watch_exit_fires_when_a_task_finishes() {
        let scheduler =
            Scheduler::start(2, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        let id = TaskId(11);
        scheduler.register(id, Box::new(SyntheticWorkTask::new("t", 10, 64, None)));
        scheduler.watch_exit(
            id,
            Box::new(move |exited| {
                assert_eq!(exited, TaskId(11));
                fired2.store(true, Ordering::SeqCst);
            }),
        );
        scheduler.schedule(id);
        assert!(scheduler.wait_idle(Duration::from_secs(5)));
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while !fired.load(Ordering::SeqCst) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(100));
        }
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn watch_exit_on_unknown_task_fires_immediately() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        scheduler.watch_exit(
            TaskId(404),
            Box::new(move |_| fired2.store(true, Ordering::SeqCst)),
        );
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn watch_exit_fires_on_remove() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        let id = TaskId(21);
        scheduler.register(id, Box::new(SyntheticWorkTask::new("t", 1, 1, None)));
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        scheduler.watch_exit(id, Box::new(move |_| fired2.store(true, Ordering::SeqCst)));
        assert!(!fired.load(Ordering::SeqCst));
        scheduler.remove(id);
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_workers() {
        let mut scheduler =
            Scheduler::start(3, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        scheduler.shutdown();
        scheduler.shutdown();
        assert_eq!(scheduler.task_count(), 0);
    }

    /// A task whose `run` blocks until `release` is signalled: used to pin
    /// one worker deterministically while other workers must scavenge or
    /// steal the remaining queued work. Because the gate task itself may be
    /// scavenged or stolen, `entered` reports the `(shard, worker)` that
    /// actually entered it (parsed from the worker thread's name), so the
    /// test can aim its burst at the pinned worker's queue.
    type EnteredGate = Arc<(Mutex<Option<(usize, usize)>>, Condvar)>;
    type ReleaseGate = Arc<(Mutex<bool>, Condvar)>;

    struct GateTask {
        entered: EnteredGate,
        release: ReleaseGate,
    }

    impl GateTask {
        fn new() -> (Self, EnteredGate, ReleaseGate) {
            let entered = Arc::new((Mutex::new(None), Condvar::new()));
            let release = Arc::new((Mutex::new(false), Condvar::new()));
            (
                GateTask {
                    entered: Arc::clone(&entered),
                    release: Arc::clone(&release),
                },
                entered,
                release,
            )
        }

        fn release(gate: &ReleaseGate) {
            let mut flag = gate.0.lock();
            *flag = true;
            gate.1.notify_all();
        }

        /// Blocks until the gate task is running; returns the
        /// `(shard, worker)` whose thread entered it.
        fn await_entered(gate: &EnteredGate) -> (usize, usize) {
            let mut slot = gate.0.lock();
            while slot.is_none() {
                gate.1.wait_for(&mut slot, Duration::from_secs(10));
            }
            slot.expect("checked above")
        }
    }

    impl crate::task::Task for GateTask {
        fn label(&self) -> &str {
            "gate"
        }

        fn run(&mut self, _ctx: &mut TaskContext) -> TaskStatus {
            // Worker threads are named `flick-worker-{shard}-{worker}`.
            let position = std::thread::current().name().and_then(|name| {
                let mut parts = name.rsplitn(3, '-');
                let worker = parts.next()?.parse().ok()?;
                let shard = parts.next()?.parse().ok()?;
                Some((shard, worker))
            });
            {
                let mut slot = self.entered.0.lock();
                *slot = Some(position.expect("worker thread name parses"));
                self.entered.1.notify_all();
            }
            let mut flag = self.release.0.lock();
            while !*flag {
                self.release.1.wait_for(&mut flag, Duration::from_secs(10));
            }
            TaskStatus::Finished
        }
    }

    /// Task ids whose queue hash lands on worker queue `target` of an
    /// `n`-queue scheduler (the same multiplicative hash `queue_for` uses).
    fn ids_hashed_to(target: usize, n: usize, count: usize, mut from: u64) -> Vec<TaskId> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let id = TaskId(from);
            from += 1;
            if (id.0.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize % n == target {
                out.push(id);
            }
        }
        out
    }

    #[test]
    fn work_is_scavenged_when_one_queue_is_idle() {
        // Deterministic version of the old timing-dependent assertion: one
        // worker is pinned inside a gate task, and the burst is hashed to
        // *that* worker's queue. The only way the burst can complete while
        // the gate is held is for the free worker to scavenge the pinned
        // queue, so the metric must observe every burst task.
        let metrics = RuntimeMetrics::new_shared();
        let scheduler = Scheduler::start(2, SchedulingPolicy::RoundRobin, Arc::clone(&metrics));
        let (gate, entered, release) = GateTask::new();
        scheduler.register(TaskId(1), Box::new(gate));
        scheduler.schedule(TaskId(1));
        let (_, pinned_worker) = GateTask::await_entered(&entered);

        const BURST: usize = 16;
        let scavenged_before = RuntimeMetrics::get(&metrics.tasks_scavenged);
        let completed = Arc::new(AtomicUsize::new(0));
        let burst_ids = ids_hashed_to(pinned_worker, 2, BURST, 20_000);
        for (i, id) in burst_ids.iter().enumerate() {
            let completed = Arc::clone(&completed);
            scheduler.register(
                *id,
                Box::new(SyntheticWorkTask::new(
                    format!("t{i}"),
                    10,
                    256,
                    Some(Box::new(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                    })),
                )),
            );
            scheduler.schedule(*id);
        }
        // The burst drains while the pinned worker is still gated.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while completed.load(Ordering::SeqCst) < BURST {
            assert!(
                std::time::Instant::now() < deadline,
                "burst stalled with worker {pinned_worker} gated: {} of {BURST} done",
                completed.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
        let scavenged = RuntimeMetrics::get(&metrics.tasks_scavenged) - scavenged_before;
        assert!(
            scavenged >= BURST as u64,
            "all {BURST} burst tasks must have been scavenged from queue \
             {pinned_worker}, saw {scavenged}"
        );
        GateTask::release(&release);
        assert!(scheduler.wait_idle(Duration::from_secs(10)));
    }

    #[test]
    fn idle_sibling_shard_steals_queued_tasks() {
        // The shard whose only worker is gated queues a burst; the burst
        // can complete only through the sibling shard's steal path.
        let metrics = RuntimeMetrics::new_shared();
        let group = StealGroup::new();
        let shards = [
            Scheduler::start_sharded(
                1,
                SchedulingPolicy::RoundRobin,
                Arc::clone(&metrics),
                &group,
                0,
            ),
            Scheduler::start_sharded(
                1,
                SchedulingPolicy::RoundRobin,
                Arc::clone(&metrics),
                &group,
                1,
            ),
        ];
        assert_eq!(group.len(), 2);

        let (gate, entered, release) = GateTask::new();
        shards[0].register(TaskId(1), Box::new(gate));
        shards[0].schedule(TaskId(1));
        // The gate itself may be stolen; the burst targets whichever shard's
        // worker is actually pinned.
        let (pinned_shard, _) = GateTask::await_entered(&entered);
        let owner = &shards[pinned_shard];

        const BURST: usize = 12;
        let stolen_before = RuntimeMetrics::get(&metrics.tasks_stolen);
        let completed = Arc::new(AtomicUsize::new(0));
        for i in 0..BURST {
            let completed = Arc::clone(&completed);
            let id = TaskId(100 + i as u64);
            owner.register(
                id,
                Box::new(SyntheticWorkTask::new(
                    format!("t{i}"),
                    10,
                    256,
                    Some(Box::new(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                    })),
                )),
            );
            owner.schedule(id);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while completed.load(Ordering::SeqCst) < BURST {
            assert!(
                std::time::Instant::now() < deadline,
                "steal path stalled: {} of {BURST} done",
                completed.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
        let stolen = RuntimeMetrics::get(&metrics.tasks_stolen) - stolen_before;
        assert!(
            stolen >= BURST as u64,
            "every burst task must have crossed the shard boundary, saw {stolen}"
        );
        let load = owner.load();
        assert!(load.stolen_out >= BURST as u64, "{load:?}");
        // Runs are attributed to the owning shard even when a thief ran them.
        assert!(load.runs >= BURST as u64, "{load:?}");
        GateTask::release(&release);
        assert!(owner.wait_idle(Duration::from_secs(10)));
    }

    #[test]
    fn stolen_tasks_fire_exit_watchers_in_the_owning_shard() {
        let metrics = RuntimeMetrics::new_shared();
        let group = StealGroup::new();
        let shards = [
            Scheduler::start_sharded(
                1,
                SchedulingPolicy::RoundRobin,
                Arc::clone(&metrics),
                &group,
                0,
            ),
            Scheduler::start_sharded(
                1,
                SchedulingPolicy::RoundRobin,
                Arc::clone(&metrics),
                &group,
                1,
            ),
        ];
        let (gate, entered, release) = GateTask::new();
        shards[0].register(TaskId(1), Box::new(gate));
        shards[0].schedule(TaskId(1));
        let (pinned_shard, _) = GateTask::await_entered(&entered);
        let owner = &shards[pinned_shard];

        // The task is registered (and watched) in the pinned shard, so only
        // the sibling's steal path can run it — yet the watcher, which
        // lives in the owning shard's scheduler, must still fire.
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        let id = TaskId(42);
        owner.register(id, Box::new(SyntheticWorkTask::new("t", 5, 64, None)));
        owner.watch_exit(id, Box::new(move |_| fired2.store(true, Ordering::SeqCst)));
        owner.schedule(id);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !fired.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "exit watcher of a stolen task never fired"
            );
            std::thread::yield_now();
        }
        assert!(RuntimeMetrics::get(&metrics.tasks_stolen) >= 1);
        GateTask::release(&release);
        assert!(owner.wait_idle(Duration::from_secs(10)));
    }
}
