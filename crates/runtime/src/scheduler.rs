//! The cooperative task scheduler.
//!
//! §5 of the paper: tasks are cooperatively scheduled onto a fixed pool of
//! worker threads. Each worker owns a FIFO task queue; a task is always
//! hashed to the same worker's queue (to reduce cache misses), workers
//! scavenge work from other queues when their own is empty, and a running
//! task yields control when it exceeds the timeslice threshold (enforced by
//! [`crate::task::TaskContext`] inside every task implementation).

use crate::graph::GraphInstance;
use crate::metrics::RuntimeMetrics;
use crate::task::{SchedulingPolicy, Task, TaskContext, TaskId, TaskStatus};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct WorkerQueue {
    queue: Mutex<VecDeque<TaskId>>,
    cond: Condvar,
}

struct TaskSlot {
    task: Mutex<Option<Box<dyn Task>>>,
    queued: AtomicBool,
}

/// Callback invoked (once) when a task exits the scheduler — it finished,
/// or was removed during graph teardown.
pub type ExitWatcher = Box<dyn Fn(TaskId) + Send + Sync>;

struct SchedulerInner {
    queues: Vec<WorkerQueue>,
    tasks: RwLock<HashMap<TaskId, Arc<TaskSlot>>>,
    policy: SchedulingPolicy,
    metrics: Arc<RuntimeMetrics>,
    shutdown: AtomicBool,
    exit_watchers: Mutex<HashMap<TaskId, Vec<ExitWatcher>>>,
}

impl SchedulerInner {
    fn queue_for(&self, id: TaskId) -> usize {
        // The hash over the task identifier that §5 describes; identifiers
        // are dense integers so a multiplicative hash spreads them well.
        (id.0.wrapping_mul(0x9e3779b97f4a7c15) >> 32) as usize % self.queues.len()
    }

    fn schedule(&self, id: TaskId) {
        let slot = {
            let tasks = self.tasks.read();
            match tasks.get(&id) {
                Some(slot) => Arc::clone(slot),
                None => return,
            }
        };
        if slot.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        let worker = self.queue_for(id);
        let q = &self.queues[worker];
        q.queue.lock().push_back(id);
        q.cond.notify_one();
    }

    fn pop_own(&self, worker: usize) -> Option<TaskId> {
        self.queues[worker].queue.lock().pop_front()
    }

    fn scavenge(&self, worker: usize) -> Option<TaskId> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(id) = self.queues[victim].queue.lock().pop_front() {
                RuntimeMetrics::add(&self.metrics.tasks_scavenged, 1);
                return Some(id);
            }
        }
        None
    }

    fn run_one(&self, id: TaskId) {
        let slot = {
            let tasks = self.tasks.read();
            match tasks.get(&id) {
                Some(slot) => Arc::clone(slot),
                None => return,
            }
        };
        slot.queued.store(false, Ordering::Release);
        let mut guard = slot.task.lock();
        let Some(task) = guard.as_mut() else {
            return;
        };
        RuntimeMetrics::add(&self.metrics.task_runs, 1);
        let mut ctx = TaskContext::new(self.policy, Arc::clone(&self.metrics));
        let status = task.run(&mut ctx);
        drop(guard);
        for wake in ctx.take_wakes() {
            self.schedule(wake);
        }
        match status {
            TaskStatus::Runnable => self.schedule(id),
            TaskStatus::Idle => {}
            TaskStatus::Finished => {
                self.tasks.write().remove(&id);
                self.notify_exit(id);
            }
        }
    }

    /// Fires (and removes) the exit watchers of `id`, if any.
    fn notify_exit(&self, id: TaskId) {
        let watchers = self.exit_watchers.lock().remove(&id);
        if let Some(watchers) = watchers {
            for watcher in watchers {
                watcher(id);
            }
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let next = self.pop_own(worker).or_else(|| self.scavenge(worker));
            match next {
                Some(id) => self.run_one(id),
                None => {
                    let q = &self.queues[worker];
                    let mut guard = q.queue.lock();
                    if guard.is_empty() && !self.shutdown.load(Ordering::Acquire) {
                        q.cond.wait_for(&mut guard, Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

/// The worker-thread pool executing task graphs.
pub struct Scheduler {
    inner: Arc<SchedulerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("tasks", &self.task_count())
            .finish()
    }
}

impl Scheduler {
    /// Starts a scheduler with `workers` worker threads under `policy`.
    ///
    /// The paper sets the number of workers to the number of CPU cores; the
    /// benchmark harness passes the core count being evaluated.
    pub fn start(workers: usize, policy: SchedulingPolicy, metrics: Arc<RuntimeMetrics>) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(SchedulerInner {
            queues: (0..workers)
                .map(|_| WorkerQueue {
                    queue: Mutex::new(VecDeque::new()),
                    cond: Condvar::new(),
                })
                .collect(),
            tasks: RwLock::new(HashMap::new()),
            policy,
            metrics,
            shutdown: AtomicBool::new(false),
            exit_watchers: Mutex::new(HashMap::new()),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("flick-worker-{i}"))
                    .spawn(move || inner.worker_loop(i))
                    .expect("spawning a worker thread")
            })
            .collect();
        Scheduler {
            inner,
            workers: handles,
        }
    }

    /// The scheduling policy in force.
    pub fn policy(&self) -> SchedulingPolicy {
        self.inner.policy
    }

    /// The shared runtime metrics.
    pub fn metrics(&self) -> Arc<RuntimeMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Registers a task without scheduling it.
    pub fn register(&self, id: TaskId, task: Box<dyn Task>) {
        let slot = Arc::new(TaskSlot {
            task: Mutex::new(Some(task)),
            queued: AtomicBool::new(false),
        });
        self.inner.tasks.write().insert(id, slot);
    }

    /// Registers every task of a graph and schedules the given initial set.
    pub fn register_graph(&self, graph: GraphInstance, initial: &[TaskId]) {
        RuntimeMetrics::add(&self.inner.metrics.graphs_created, 1);
        for (id, task) in graph.into_tasks() {
            self.register(id, task);
        }
        for id in initial {
            self.schedule(*id);
        }
    }

    /// Makes a task runnable (it will be dispatched by its worker).
    pub fn schedule(&self, id: TaskId) {
        self.inner.schedule(id);
    }

    /// Returns `true` while the task is registered (not yet finished).
    pub fn is_registered(&self, id: TaskId) -> bool {
        self.inner.tasks.read().contains_key(&id)
    }

    /// Number of currently registered tasks.
    pub fn task_count(&self) -> usize {
        self.inner.tasks.read().len()
    }

    /// Removes a task outright (used when tearing down a graph whose
    /// connection vanished).
    pub fn remove(&self, id: TaskId) {
        self.inner.tasks.write().remove(&id);
        self.inner.notify_exit(id);
    }

    /// Registers `watcher` to run once when task `id` exits the scheduler
    /// (finishes or is removed). If the task is already gone the watcher
    /// fires immediately on this thread.
    ///
    /// This is the event-driven dispatcher's replacement for polling
    /// [`Scheduler::is_registered`] every tick: graph teardown becomes an
    /// event (the watcher posts to the dispatcher's poller) instead of a
    /// scan.
    pub fn watch_exit(&self, id: TaskId, watcher: ExitWatcher) {
        self.inner
            .exit_watchers
            .lock()
            .entry(id)
            .or_default()
            .push(watcher);
        // Re-check after installing: if the task exited between the
        // caller's decision and the insert, fire now (`notify_exit` removes
        // the entry, so a concurrent exit cannot double-fire it).
        if !self.is_registered(id) {
            self.inner.notify_exit(id);
        }
    }

    /// Blocks until every registered task has finished or the timeout
    /// elapses. Returns `true` if the scheduler drained completely.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.task_count() == 0 {
                return true;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        self.task_count() == 0
    }

    /// Stops the worker threads. Registered tasks are dropped.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for q in &self.inner.queues {
            q.cond.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, TaskIdAllocator};
    use crate::tasks::{ComputeLogic, ComputeTask, Outputs, SourceTask, SyntheticWorkTask};
    use crate::value::Value;
    use crate::RuntimeError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_a_single_task_to_completion() {
        let metrics = RuntimeMetrics::new_shared();
        let scheduler = Scheduler::start(2, SchedulingPolicy::default(), Arc::clone(&metrics));
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let id = TaskId(1);
        scheduler.register(
            id,
            Box::new(SyntheticWorkTask::new(
                "t",
                50,
                256,
                Some(Box::new(move || done2.store(true, Ordering::SeqCst))),
            )),
        );
        scheduler.schedule(id);
        assert!(scheduler.wait_idle(Duration::from_secs(5)));
        assert!(done.load(Ordering::SeqCst));
        assert!(RuntimeMetrics::get(&metrics.task_runs) >= 1);
    }

    /// Counts the values that flow through it and forwards nothing.
    struct Counter {
        seen: Arc<AtomicUsize>,
    }
    impl ComputeLogic for Counter {
        fn on_value(
            &mut self,
            _input: usize,
            _value: Value,
            _out: &mut Outputs<'_>,
        ) -> Result<(), RuntimeError> {
            self.seen.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn source_feeds_compute_across_workers() {
        let metrics = RuntimeMetrics::new_shared();
        let scheduler = Scheduler::start(4, SchedulingPolicy::default(), Arc::clone(&metrics));
        let alloc = TaskIdAllocator::new();
        let mut builder = GraphBuilder::new("pipeline", &alloc);
        let source_node = builder.declare_node();
        let compute_node = builder.declare_node();
        let (tx, rx) = builder.channel(compute_node);
        let seen = Arc::new(AtomicUsize::new(0));
        builder.install(source_node, Box::new(SourceTask::new("src", 500, 64, tx)));
        builder.install(
            compute_node,
            Box::new(ComputeTask::new(
                "count",
                vec![rx],
                vec![],
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            )),
        );
        let graph = builder.build();
        let initial = vec![source_node.task_id()];
        scheduler.register_graph(graph, &initial);
        assert!(
            scheduler.wait_idle(Duration::from_secs(10)),
            "graph should drain"
        );
        assert_eq!(seen.load(Ordering::Relaxed), 500);
        assert_eq!(RuntimeMetrics::get(&metrics.graphs_created), 1);
    }

    #[test]
    fn many_tasks_complete_under_all_policies() {
        for policy in [
            SchedulingPolicy::Cooperative {
                timeslice: Duration::from_micros(50),
            },
            SchedulingPolicy::NonCooperative,
            SchedulingPolicy::RoundRobin,
        ] {
            let metrics = RuntimeMetrics::new_shared();
            let scheduler = Scheduler::start(4, policy, metrics);
            let completed = Arc::new(AtomicUsize::new(0));
            for i in 0..40 {
                let completed = Arc::clone(&completed);
                let id = TaskId(100 + i);
                scheduler.register(
                    id,
                    Box::new(SyntheticWorkTask::new(
                        format!("t{i}"),
                        20,
                        512,
                        Some(Box::new(move || {
                            completed.fetch_add(1, Ordering::SeqCst);
                        })),
                    )),
                );
                scheduler.schedule(id);
            }
            assert!(
                scheduler.wait_idle(Duration::from_secs(10)),
                "policy {:?} stalled",
                policy
            );
            assert_eq!(completed.load(Ordering::SeqCst), 40, "policy {policy:?}");
        }
    }

    #[test]
    fn scheduling_unknown_task_is_harmless() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        scheduler.schedule(TaskId(999));
        assert!(!scheduler.is_registered(TaskId(999)));
    }

    #[test]
    fn remove_discards_a_registered_task() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        scheduler.register(TaskId(7), Box::new(SyntheticWorkTask::new("t", 1, 1, None)));
        assert!(scheduler.is_registered(TaskId(7)));
        scheduler.remove(TaskId(7));
        assert!(!scheduler.is_registered(TaskId(7)));
    }

    #[test]
    fn watch_exit_fires_when_a_task_finishes() {
        let scheduler =
            Scheduler::start(2, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        let id = TaskId(11);
        scheduler.register(id, Box::new(SyntheticWorkTask::new("t", 10, 64, None)));
        scheduler.watch_exit(
            id,
            Box::new(move |exited| {
                assert_eq!(exited, TaskId(11));
                fired2.store(true, Ordering::SeqCst);
            }),
        );
        scheduler.schedule(id);
        assert!(scheduler.wait_idle(Duration::from_secs(5)));
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while !fired.load(Ordering::SeqCst) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(100));
        }
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn watch_exit_on_unknown_task_fires_immediately() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        scheduler.watch_exit(
            TaskId(404),
            Box::new(move |_| fired2.store(true, Ordering::SeqCst)),
        );
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn watch_exit_fires_on_remove() {
        let scheduler =
            Scheduler::start(1, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        let id = TaskId(21);
        scheduler.register(id, Box::new(SyntheticWorkTask::new("t", 1, 1, None)));
        let fired = Arc::new(AtomicBool::new(false));
        let fired2 = Arc::clone(&fired);
        scheduler.watch_exit(id, Box::new(move |_| fired2.store(true, Ordering::SeqCst)));
        assert!(!fired.load(Ordering::SeqCst));
        scheduler.remove(id);
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_workers() {
        let mut scheduler =
            Scheduler::start(3, SchedulingPolicy::default(), RuntimeMetrics::new_shared());
        scheduler.shutdown();
        scheduler.shutdown();
        assert_eq!(scheduler.task_count(), 0);
    }

    #[test]
    fn work_is_scavenged_when_one_queue_is_idle() {
        // With 8 workers and a single burst of tasks hashed to a few queues,
        // at least some scavenging typically occurs. We only assert that the
        // metric is consistent (not negative / no panic) and that all tasks
        // finish, since stealing is timing-dependent.
        let metrics = RuntimeMetrics::new_shared();
        let scheduler = Scheduler::start(8, SchedulingPolicy::RoundRobin, Arc::clone(&metrics));
        let completed = Arc::new(AtomicUsize::new(0));
        for i in 0..64 {
            let completed = Arc::clone(&completed);
            let id = TaskId(1000 + i);
            scheduler.register(
                id,
                Box::new(SyntheticWorkTask::new(
                    format!("t{i}"),
                    50,
                    1024,
                    Some(Box::new(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                    })),
                )),
            );
            scheduler.schedule(id);
        }
        assert!(scheduler.wait_idle(Duration::from_secs(10)));
        assert_eq!(completed.load(Ordering::SeqCst), 64);
    }
}
