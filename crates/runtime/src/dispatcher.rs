//! The per-shard application and graph dispatchers.
//!
//! §5 of the paper: the *application dispatcher* owns the listening socket
//! of a service, maps new connections to the service's program instance and
//! indicates connection closes; the *graph dispatcher* assigns connections
//! to task graphs, instantiating a new one when needed. Since the sharding
//! refactor both run on **one dispatcher thread per shard** (not per
//! service): a shard's dispatcher multiplexes every service homed on it
//! plus every graph placed on it, and blocks on the shard's
//! [`Poller`] — one reactor per shard.
//!
//! Graphs are *placed*: when a service's home shard has accepted enough
//! connections for a graph instance, the platform's
//! [`crate::shard::PlacementPolicy`] picks the shard the graph runs on.
//! A graph placed on a remote shard is handed off through that shard's
//! inbox ([`ShardCommand::BuildGraph`]); the client endpoints are only
//! ever registered with the *owning* shard's poller, and registration is
//! level-triggered, so bytes arriving during the handoff cannot be lost.
//!
//! Two implementations exist, selected by [`DispatcherBackend`]:
//!
//! * [`DispatcherBackend::Event`] (default) — a wakeup-based reactor.
//!   Accepts, task wakeups, cross-shard handoffs and graph teardown are
//!   all event handlers keyed by a [`Token`] → watcher map; between events
//!   the thread blocks in [`Poller::wait`] and performs **zero** endpoint
//!   scans, so thousands of idle connections cost nothing.
//! * [`DispatcherBackend::Poll`] — the historical sleep-poll loop, kept as
//!   the ablation baseline (`flick_bench`'s `dispatcher_backend`
//!   ablation): sleep `poll_interval`, then linearly re-scan every watched
//!   endpoint.

use crate::metrics::RuntimeMetrics;
use crate::platform::{GraphFactory, ServiceEnv, Watch};
use crate::scheduler::Scheduler;
use crate::shard::{Shard, ShardCommand, ShardSet, CONTROL_TOKEN};
use crate::task::TaskId;
use crate::value::SharedDict;
use flick_net::{Endpoint, Interest, Listener, NetError, Poller, Token};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which dispatcher implementation a platform runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatcherBackend {
    /// Wakeup-based reactor: the dispatcher blocks on readiness events and
    /// never scans idle connections. The default.
    #[default]
    Event,
    /// Sleep `poll_interval`, then re-scan every watched endpoint. Kept as
    /// the ablation baseline for the event backend.
    Poll,
}

impl DispatcherBackend {
    /// Short label used in benchmark output ("event", "poll").
    pub fn label(self) -> &'static str {
        match self {
            DispatcherBackend::Event => "event",
            DispatcherBackend::Poll => "poll",
        }
    }

    /// Both backends, poll first (the ablation's baseline ordering).
    pub fn all() -> [DispatcherBackend; 2] {
        [DispatcherBackend::Poll, DispatcherBackend::Event]
    }
}

/// How long a non-quiescent draining graph may linger before it is torn
/// down forcibly.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// Per-service state shared between the platform, the shard dispatchers
/// and the service handle.
pub struct ServiceShared {
    id: u64,
    name: String,
    /// The service's accept sockets. A single listener (the common case,
    /// and all of the simulated transport) is homed on `home_shard`. With
    /// kernel accept sharding ([`flick_net::TcpStack::listen_group`])
    /// there is one `SO_REUSEPORT` listener per shard and listener `i` is
    /// owned — registered, drained and closed — by shard `i`'s
    /// dispatcher, so accepts never funnel through one thread.
    listeners: Vec<Listener>,
    factory: Arc<dyn GraphFactory>,
    env: ServiceEnv,
    home_shard: usize,
    /// Set by [`DeployedService::stop`]; every shard tears down this
    /// service's graphs on its next control event.
    stopped: AtomicBool,
    /// Connections accepted so far.
    pub connections_accepted: AtomicU64,
    /// Graph instances currently alive (across all shards).
    pub live_graphs: AtomicU64,
    /// Accept attempts that failed on fd/buffer exhaustion
    /// ([`NetError::Resources`]). The dispatchers back off and retry;
    /// this counter is how tests (and operators) see that it happened.
    pub accept_resource_errors: AtomicU64,
}

impl ServiceShared {
    /// Creates the shared service state (platform-internal).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u64,
        name: String,
        listeners: Vec<Listener>,
        factory: Arc<dyn GraphFactory>,
        env: ServiceEnv,
        home_shard: usize,
    ) -> Self {
        assert!(
            !listeners.is_empty(),
            "a service needs at least one listener"
        );
        ServiceShared {
            id,
            name,
            listeners,
            factory,
            env,
            home_shard,
            stopped: AtomicBool::new(false),
            connections_accepted: AtomicU64::new(0),
            live_graphs: AtomicU64::new(0),
            accept_resource_errors: AtomicU64::new(0),
        }
    }

    /// The service name this dispatcher serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shard the service's listener lives on.
    pub fn home_shard(&self) -> usize {
        self.home_shard
    }

    /// The accept socket `shard`'s dispatcher owns, if any: the single
    /// listener when `shard` is the home shard, or the shard's own
    /// `SO_REUSEPORT` socket under accept sharding (listener `i` ↔
    /// shard `i`).
    pub(crate) fn listener_on(&self, shard: usize) -> Option<&Listener> {
        if self.listeners.len() == 1 {
            (shard == self.home_shard).then(|| &self.listeners[0])
        } else {
            self.listeners.get(shard)
        }
    }

    /// Closes every accept socket. Idempotent, so the stop path and each
    /// shard's teardown may all call it.
    fn close_listeners(&self) {
        for listener in &self.listeners {
            listener.close();
        }
    }

    fn stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }
}

struct LiveGraph {
    service: Arc<ServiceShared>,
    task_ids: Vec<TaskId>,
    client_tasks: Vec<TaskId>,
    watchers: Vec<Watch>,
    /// Set once every client task has finished: the graph is draining. The
    /// deadline bounds how long a non-quiescent graph may linger before it
    /// is torn down forcibly.
    draining_until: Option<Instant>,
}

/// How long a dispatcher waits before re-draining a listener whose accept
/// failed on resource exhaustion (`EMFILE`-class errors). Long enough for
/// fds to be released by closing connections, short enough that a backlog
/// stuck behind the burst is picked up promptly.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

/// Accepts everything currently pending on one of the service's
/// listeners.
///
/// Draining to `WouldBlock` is load-bearing for the OS transport: the
/// listener is registered edge-triggered, so a connection left in the
/// kernel backlog here produces no further event until a *new* connection
/// arrives. A per-connection failure (e.g. the client reset before the
/// accept — `ECONNABORTED`, surfaced as `Closed`) consumes that backlog
/// entry and must not end the drain; only "nothing pending" and
/// "listener gone" end it quietly.
///
/// Resource exhaustion (`EMFILE`/`ENFILE`/`ENOBUFS`, surfaced as
/// [`NetError::Resources`]) is the dangerous case: it does *not* consume
/// a backlog entry, so retrying immediately would spin, while treating it
/// as fatal would kill the listener the first time a fd limit is
/// breached. Returns `true` in exactly this case — the caller must
/// re-drain after [`ACCEPT_BACKOFF`], not tear anything down.
fn accept_pending(
    service: &ServiceShared,
    listener: &Listener,
    pending_clients: &mut Vec<Endpoint>,
) -> bool {
    loop {
        match listener.try_accept() {
            Ok(client) => {
                service.connections_accepted.fetch_add(1, Ordering::Relaxed);
                pending_clients.push(client);
            }
            Err(NetError::Closed) => continue,
            Err(NetError::Resources) => {
                let n = service
                    .accept_resource_errors
                    .fetch_add(1, Ordering::Relaxed)
                    + 1;
                // Rate-limited (exponentially thinning) log: a sustained
                // burst produces a handful of lines, not one per accept.
                if n.is_power_of_two() {
                    eprintln!(
                        "flick: service {}: accept out of resources ({n} so far), backing off",
                        service.name
                    );
                }
                return true;
            }
            Err(_) => return false,
        }
    }
}

/// Graph dispatcher: builds one graph instance over `clients` on `shard`,
/// registers its tasks with the shard's scheduler and gives input tasks a
/// first chance to run (data may already be waiting on the connection).
/// Returns `None` on factory failure (the client connections are dropped,
/// and closed by the Drop impls of whatever tasks did get built).
fn build_graph(
    shard: &Shard,
    service: &Arc<ServiceShared>,
    clients: Vec<Endpoint>,
) -> Option<LiveGraph> {
    let scheduler = shard.scheduler();
    match service.factory.build(clients, &service.env) {
        Ok(built) => {
            let task_ids = built.graph.task_ids().to_vec();
            scheduler.register_graph(built.graph, &built.initial);
            for watch in &built.watchers {
                scheduler.schedule(watch.task);
            }
            service.live_graphs.fetch_add(1, Ordering::Relaxed);
            shard.note_graph_built();
            Some(LiveGraph {
                service: Arc::clone(service),
                task_ids,
                client_tasks: built.client_tasks,
                watchers: built.watchers,
                draining_until: None,
            })
        }
        Err(_) => None,
    }
}

/// The dispatcher loop of one shard; runs on its own thread until the
/// platform requests a stop.
pub(crate) fn run_shard_dispatcher(
    set: Arc<ShardSet>,
    shard: Arc<Shard>,
    backend: DispatcherBackend,
    poll_interval: Duration,
) {
    match backend {
        DispatcherBackend::Event => run_event_dispatcher(set, shard, poll_interval),
        DispatcherBackend::Poll => run_poll_dispatcher(set, shard, poll_interval),
    }
}

/// A service homed on this shard: its listener is registered with (or, for
/// the poll backend, scanned by) this shard's dispatcher.
struct HomedService {
    shared: Arc<ServiceShared>,
    /// Connections accepted but not yet grouped into a graph instance.
    pending_clients: Vec<Endpoint>,
}

/// Groups `pending_clients` into graph instances and places each group:
/// built locally if the policy picks this shard, handed off through the
/// target shard's inbox otherwise.
#[allow(clippy::too_many_arguments)]
fn place_pending_graphs(
    set: &ShardSet,
    shard: &Arc<Shard>,
    service: &Arc<ServiceShared>,
    pending_clients: &mut Vec<Endpoint>,
    mut build_local: impl FnMut(&Arc<ServiceShared>, Vec<Endpoint>),
) {
    let per_graph = service.factory.connections_per_graph().max(1);
    while pending_clients.len() >= per_graph {
        let clients: Vec<Endpoint> = pending_clients.drain(..per_graph).collect();
        let target = set.place();
        if target == shard.id() {
            build_local(service, clients);
        } else {
            set.send(
                target,
                ShardCommand::BuildGraph {
                    service: Arc::clone(service),
                    clients,
                },
            );
        }
    }
}

/// The sleep-poll dispatcher: the ablation baseline. Every iteration
/// drains the shard inbox, re-scans all watched endpoints
/// (`Endpoint::readable`) and all live graphs, then sleeps
/// `poll_interval`.
fn run_poll_dispatcher(set: Arc<ShardSet>, shard: Arc<Shard>, poll_interval: Duration) {
    let mut services: HashMap<u64, HomedService> = HashMap::new();
    let mut graphs: Vec<LiveGraph> = Vec::new();

    while !set.stopping() {
        // 0. Shard inbox: new services homed here, graphs handed off here.
        for command in shard.drain_inbox() {
            match command {
                ShardCommand::AddService(shared) => {
                    services.insert(
                        shared.id,
                        HomedService {
                            shared,
                            pending_clients: Vec::new(),
                        },
                    );
                }
                ShardCommand::BuildGraph { service, clients } => {
                    if !service.stopped() {
                        if let Some(graph) = build_graph(&shard, &service, clients) {
                            graphs.push(graph);
                        }
                    }
                }
            }
        }
        // 1. Application dispatcher: accept new connections, then place
        //    complete connection groups onto shards.
        for entry in services.values_mut() {
            if entry.shared.stopped() {
                continue;
            }
            // A Resources backoff needs no bookkeeping here: the poll
            // backend re-drains every listener each tick anyway.
            if let Some(listener) = entry.shared.listener_on(shard.id()) {
                accept_pending(&entry.shared, listener, &mut entry.pending_clients);
            }
            place_pending_graphs(
                &set,
                &shard,
                &entry.shared,
                &mut entry.pending_clients,
                |service, clients| {
                    if let Some(graph) = build_graph(&shard, service, clients) {
                        graphs.push(graph);
                    }
                },
            );
        }
        // 2. Stopped services: close their listeners and forcibly tear
        //    down their graphs on this shard.
        services.retain(|_, entry| {
            if entry.shared.stopped() {
                entry.shared.close_listeners();
                false
            } else {
                true
            }
        });
        graphs.retain_mut(|graph| {
            if graph.service.stopped() {
                teardown_graph(shard.scheduler(), graph);
                false
            } else {
                true
            }
        });
        // 3. Poll connections and wake input tasks; tear down graphs whose
        //    client connections have all finished.
        let scheduler = shard.scheduler();
        graphs.retain_mut(|graph| {
            graph.watchers.retain(|watch| {
                if !scheduler.is_registered(watch.task) {
                    return false;
                }
                // Only readable watches are scanned: under this backend
                // output tasks run busy-retry (the platform forces
                // `OutputMode::BusyRetry`, see `deploy_on_listener`), so a
                // blocked writer re-schedules itself and a writable scan
                // would only burn a per-connection no-op task run every
                // tick. Writable watches stay in the list for the
                // interest-aware drain close and teardown bookkeeping.
                if watch.interest.is_readable() && watch.endpoint.readable() {
                    scheduler.schedule(watch.task);
                }
                true
            });
            !advance_graph_lifecycle(scheduler, graph)
        });
        std::thread::sleep(poll_interval);
    }
    // Tear everything down on shutdown.
    for entry in services.values() {
        entry.shared.close_listeners();
    }
    for mut graph in graphs {
        teardown_graph(shard.scheduler(), &mut graph);
    }
}

/// Forcibly removes a graph's tasks (service stop or shard shutdown) and
/// settles its counters.
fn teardown_graph(scheduler: &Scheduler, graph: &mut LiveGraph) {
    for task in &graph.task_ids {
        scheduler.remove(*task);
    }
    RuntimeMetrics::add(&scheduler.metrics().graphs_destroyed, 1);
    graph.service.live_graphs.fetch_sub(1, Ordering::Relaxed);
}

/// Advances one graph's drain/teardown lifecycle; shared by both
/// dispatcher backends so the ablation compares dispatch mechanisms, not
/// divergent drain semantics. Once every *client* task has finished the
/// graph starts draining: the remaining watched connections are closed
/// (their input tasks observe EOF), every task gets a final chance to
/// flush, and a grace deadline bounds a non-quiescent graph. Returns
/// `true` once the graph was torn down (all tasks gone, or the grace
/// expired).
fn advance_graph_lifecycle(scheduler: &Scheduler, graph: &mut LiveGraph) -> bool {
    let clients_done = graph
        .client_tasks
        .iter()
        .all(|task| !scheduler.is_registered(*task));
    if !clients_done {
        return false;
    }
    if graph.draining_until.is_none() {
        // Close only the *read* side watches so the remaining input tasks
        // observe EOF; output watches must stay open — their tasks may
        // still be flushing (e.g. the aggregate a foldt service emits when
        // its inputs finish), and each output task closes its own
        // connection once drained.
        for watch in &graph.watchers {
            if watch.interest.is_readable() {
                watch.endpoint.close();
            }
        }
        for task in &graph.task_ids {
            scheduler.schedule(*task);
        }
        graph.draining_until = Some(Instant::now() + DRAIN_GRACE);
    }
    let all_done = graph
        .task_ids
        .iter()
        .all(|task| !scheduler.is_registered(*task));
    let expired = graph
        .draining_until
        .map(|deadline| Instant::now() >= deadline)
        .unwrap_or(false);
    if all_done || expired {
        for task in &graph.task_ids {
            scheduler.remove(*task);
        }
        RuntimeMetrics::add(&scheduler.metrics().graphs_destroyed, 1);
        graph.service.live_graphs.fetch_sub(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// Per-graph bookkeeping of the event dispatcher.
struct EventGraph {
    graph: LiveGraph,
    /// The tokens this graph's watched endpoints are registered under.
    watch_tokens: Vec<Token>,
}

/// One entry of the event dispatcher's `Token` → watcher map.
struct Watcher {
    graph_id: u64,
    task: TaskId,
    endpoint: Endpoint,
    /// The direction this watcher registered; retiring it must only
    /// deregister that direction (the same endpoint's other direction may
    /// belong to a different task's watcher).
    interest: Interest,
}

/// The mutable state of one shard's event reactor.
struct EventState {
    /// Services homed on this shard, keyed by listener token.
    services: HashMap<Token, HomedService>,
    /// Graphs owned by this shard, keyed by the token value their exit
    /// events post under; watcher tokens share the same allocator so the
    /// namespaces never collide.
    graphs: HashMap<u64, EventGraph>,
    watch_map: HashMap<Token, Watcher>,
    /// Side index of graphs currently draining (id → deadline): only these
    /// can expire, so the heartbeat never has to scan the full graph map.
    draining: HashMap<u64, Instant>,
    /// Listeners whose last drain hit resource exhaustion (token →
    /// retry deadline). The edge-triggered listener posts no new event
    /// for backlog entries stranded behind an `EMFILE` burst, so the
    /// reactor's wait deadline is clamped to the earliest retry and the
    /// drain is re-run on that timer.
    accept_retry: HashMap<Token, Instant>,
    next_token: u64,
}

impl EventState {
    fn alloc_token(&mut self) -> Token {
        let token = Token(self.next_token);
        self.next_token += 1;
        token
    }
}

/// Builds a graph on this shard and wires it into the reactor: watched
/// endpoints are registered with this shard's poller (level-triggered, so
/// data buffered during a cross-shard handoff posts an event immediately)
/// and every task exit posts the graph's token.
fn build_and_track_graph(
    shard: &Arc<Shard>,
    poller: &Poller,
    state: &mut EventState,
    service: &Arc<ServiceShared>,
    clients: Vec<Endpoint>,
) {
    let Some(graph) = build_graph(shard, service, clients) else {
        return;
    };
    let scheduler = shard.scheduler();
    let graph_id = state.alloc_token().0;
    let mut watch_tokens = Vec::with_capacity(graph.watchers.len());
    for watch in &graph.watchers {
        let token = state.alloc_token();
        watch.endpoint.register(poller, token, watch.interest);
        state.watch_map.insert(
            token,
            Watcher {
                graph_id,
                task: watch.task,
                endpoint: watch.endpoint.clone(),
                interest: watch.interest,
            },
        );
        watch_tokens.push(token);
    }
    // Every task exit posts the graph's token, so client-side completion
    // (begin draining) and full quiescence (teardown) are events, not
    // scans.
    for task in &graph.task_ids {
        let exit_poller = poller.clone();
        scheduler.watch_exit(
            *task,
            Box::new(move |_| exit_poller.post(Token(graph_id), Default::default())),
        );
    }
    state.graphs.insert(
        graph_id,
        EventGraph {
            graph,
            watch_tokens,
        },
    );
}

/// The wakeup-based reactor of one shard. The thread blocks in
/// [`Poller::wait`]; every state transition anywhere on the shard — a new
/// pending accept, bytes arriving on a watched connection, EOF, a task
/// exiting the scheduler, a command from another shard — arrives as an
/// [`flick_net::Event`] and is handled by token. An idle shard performs
/// zero endpoint scans between events.
fn run_event_dispatcher(set: Arc<ShardSet>, shard: Arc<Shard>, poll_interval: Duration) {
    let poller = shard.poller().clone();
    let scheduler = Arc::clone(shard.scheduler());
    let mut state = EventState {
        services: HashMap::new(),
        graphs: HashMap::new(),
        watch_map: HashMap::new(),
        draining: HashMap::new(),
        accept_retry: HashMap::new(),
        next_token: CONTROL_TOKEN.0 + 1,
    };

    while !set.stopping() {
        // Block until something happens. `poll_interval` survives only as a
        // lower bound on the drain/teardown heartbeat: with no graph
        // draining the reactor sleeps in long beats (woken early by any
        // event), and with one draining it wakes at the drain deadline.
        // An armed accept-backoff retry clamps the wait the same way.
        let now = Instant::now();
        let timeout = state
            .draining
            .values()
            .chain(state.accept_retry.values())
            .min()
            .map(|deadline| deadline.saturating_duration_since(now))
            .unwrap_or_else(|| poll_interval.max(Duration::from_millis(50)));
        let events = poller.wait(timeout);
        if set.stopping() {
            break;
        }

        // Shard inbox first: a BuildGraph handoff may concern endpoints
        // whose readiness events are already queued behind it.
        let mut sweep = false;
        for command in shard.drain_inbox() {
            match command {
                ShardCommand::AddService(shared) => {
                    // Register only this shard's own accept socket (the
                    // home listener, or this shard's REUSEPORT socket
                    // under accept sharding). Level-triggered: accepts
                    // that raced the deploy are caught by the
                    // registration itself.
                    let registered = match shared.listener_on(shard.id()) {
                        Some(listener) => {
                            let token = state.alloc_token();
                            listener.register(&poller, token);
                            Some(token)
                        }
                        None => None,
                    };
                    if let Some(token) = registered {
                        state.services.insert(
                            token,
                            HomedService {
                                shared,
                                pending_clients: Vec::new(),
                            },
                        );
                    }
                }
                ShardCommand::BuildGraph { service, clients } => {
                    if !service.stopped() {
                        build_and_track_graph(&shard, &poller, &mut state, &service, clients);
                    }
                }
            }
        }

        let mut dirty_graphs: Vec<u64> = Vec::new();
        let mut accepted_any = false;
        for event in events {
            if event.token == CONTROL_TOKEN {
                // Inbox already drained above; a control event may also
                // announce a service stop.
                sweep = true;
            } else if let Some(entry) = state.services.get_mut(&event.token) {
                let needs_retry = match entry.shared.listener_on(shard.id()) {
                    Some(listener) => {
                        accept_pending(&entry.shared, listener, &mut entry.pending_clients)
                    }
                    None => false,
                };
                accepted_any = true;
                if event.readiness.closed || entry.shared.stopped() {
                    sweep = true;
                }
                if needs_retry {
                    state
                        .accept_retry
                        .insert(event.token, Instant::now() + ACCEPT_BACKOFF);
                } else {
                    state.accept_retry.remove(&event.token);
                }
            } else if let Some(watcher) = state.watch_map.get(&event.token) {
                if scheduler.is_registered(watcher.task) {
                    scheduler.schedule(watcher.task);
                } else {
                    // The watched task already exited; stop watching this
                    // direction (the connection's other direction may still
                    // have a live watcher). Graph teardown itself is driven
                    // by the task-exit events.
                    let watcher = state.watch_map.remove(&event.token).expect("present");
                    watcher
                        .endpoint
                        .deregister_interest(&poller, watcher.interest);
                }
            } else if state.graphs.contains_key(&event.token.0) {
                // A task-exit event: re-evaluate this graph's lifecycle.
                dirty_graphs.push(event.token.0);
            }
        }

        // Accept-backoff retries whose deadline has passed: re-drain the
        // listener (resource exhaustion left its backlog intact and the
        // edge-triggered registration will not re-fire for it), re-arming
        // the deadline if the drain hits exhaustion again.
        let now = Instant::now();
        let due: Vec<Token> = state
            .accept_retry
            .iter()
            .filter(|(_, deadline)| now >= **deadline)
            .map(|(token, _)| *token)
            .collect();
        for token in due {
            state.accept_retry.remove(&token);
            let Some(entry) = state.services.get_mut(&token) else {
                continue;
            };
            let needs_retry = match entry.shared.listener_on(shard.id()) {
                Some(listener) => {
                    accept_pending(&entry.shared, listener, &mut entry.pending_clients)
                }
                None => false,
            };
            accepted_any = true;
            if needs_retry {
                state.accept_retry.insert(token, now + ACCEPT_BACKOFF);
            }
        }

        // Graph dispatcher: place complete connection groups.
        if accepted_any {
            let tokens: Vec<Token> = state.services.keys().copied().collect();
            for token in tokens {
                let entry = state.services.get_mut(&token).expect("present");
                if entry.shared.stopped() || entry.pending_clients.is_empty() {
                    continue;
                }
                let shared = Arc::clone(&entry.shared);
                let mut pending = std::mem::take(&mut entry.pending_clients);
                place_pending_graphs(&set, &shard, &shared, &mut pending, |service, clients| {
                    build_and_track_graph(&shard, &poller, &mut state, service, clients);
                });
                state
                    .services
                    .get_mut(&token)
                    .expect("present")
                    .pending_clients = pending;
            }
        }

        // Service stop sweep: drop stopped services homed here and tear
        // down their graphs owned here.
        if sweep {
            let stopped_services: Vec<Token> = state
                .services
                .iter()
                .filter(|(_, entry)| entry.shared.stopped())
                .map(|(token, _)| *token)
                .collect();
            for token in stopped_services {
                let entry = state.services.remove(&token).expect("collected above");
                state.accept_retry.remove(&token);
                if let Some(listener) = entry.shared.listener_on(shard.id()) {
                    listener.deregister(&poller);
                }
                entry.shared.close_listeners();
            }
            let stopped: Vec<u64> = state
                .graphs
                .iter()
                .filter(|(_, entry)| entry.graph.service.stopped())
                .map(|(id, _)| *id)
                .collect();
            for graph_id in stopped {
                let mut entry = state.graphs.remove(&graph_id).expect("collected above");
                state.draining.remove(&graph_id);
                for token in &entry.watch_tokens {
                    if let Some(watcher) = state.watch_map.remove(token) {
                        watcher
                            .endpoint
                            .deregister_interest(&poller, watcher.interest);
                    }
                }
                teardown_graph(&scheduler, &mut entry.graph);
            }
        }

        // Re-evaluate graphs whose tasks exited, plus any whose drain
        // deadline has passed (the heartbeat case).
        let now = Instant::now();
        for (id, deadline) in &state.draining {
            if now >= *deadline && !dirty_graphs.contains(id) {
                dirty_graphs.push(*id);
            }
        }
        for graph_id in dirty_graphs {
            evaluate_graph(&scheduler, &poller, &mut state, graph_id);
        }
    }

    // Tear everything down on shutdown.
    for entry in state.services.values() {
        if let Some(listener) = entry.shared.listener_on(shard.id()) {
            listener.deregister(&poller);
        }
        entry.shared.close_listeners();
    }
    for (_, mut entry) in state.graphs {
        for watch in &entry.graph.watchers {
            watch.endpoint.deregister_interest(&poller, watch.interest);
        }
        teardown_graph(&scheduler, &mut entry.graph);
    }
}

/// Lifecycle check for one graph of the event dispatcher, run only when a
/// task-exit event (or the drain heartbeat) says something changed: the
/// shared [`advance_graph_lifecycle`] decides, and this function keeps the
/// event dispatcher's token and draining indexes consistent with it.
fn evaluate_graph(scheduler: &Scheduler, poller: &Poller, state: &mut EventState, graph_id: u64) {
    let Some(entry) = state.graphs.get_mut(&graph_id) else {
        state.draining.remove(&graph_id);
        return;
    };
    let torn_down = advance_graph_lifecycle(scheduler, &mut entry.graph);
    if !torn_down {
        if let Some(deadline) = entry.graph.draining_until {
            state.draining.insert(graph_id, deadline);
        }
        return;
    }
    // Torn down (tasks removed and counters updated by the lifecycle
    // helper): drop the event dispatcher's own bookkeeping.
    let entry = state.graphs.remove(&graph_id).expect("checked above");
    state.draining.remove(&graph_id);
    for token in &entry.watch_tokens {
        if let Some(watcher) = state.watch_map.remove(token) {
            debug_assert_eq!(watcher.graph_id, graph_id);
            watcher
                .endpoint
                .deregister_interest(poller, watcher.interest);
        }
    }
}

/// Handle to a deployed service; stopping it tears the service down on
/// every shard.
pub struct DeployedService {
    port: u16,
    globals: SharedDict,
    shared: Arc<ServiceShared>,
    set: Arc<ShardSet>,
}

impl std::fmt::Debug for DeployedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeployedService")
            .field("name", &self.shared.name)
            .field("port", &self.port)
            .field("home_shard", &self.shared.home_shard)
            .finish()
    }
}

impl DeployedService {
    /// Creates the handle (platform-internal).
    pub(crate) fn new(
        port: u16,
        globals: SharedDict,
        shared: Arc<ServiceShared>,
        set: Arc<ShardSet>,
    ) -> Self {
        DeployedService {
            port,
            globals,
            shared,
            set,
        }
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The port the service listens on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The shard the service's listener is homed on.
    pub fn home_shard(&self) -> usize {
        self.shared.home_shard
    }

    /// The FLICK `global` shared dictionary of this service.
    pub fn globals(&self) -> &SharedDict {
        &self.globals
    }

    /// Number of client connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Number of task-graph instances currently alive (across all shards).
    pub fn live_graphs(&self) -> u64 {
        self.shared.live_graphs.load(Ordering::Relaxed)
    }

    /// Stops the service: closes its listener immediately (new connections
    /// are refused from this call on) and asks every shard to tear down
    /// the service's graphs on its next control event.
    pub fn stop(&mut self) {
        self.shared.stopped.store(true, Ordering::Release);
        self.shared.close_listeners();
        self.set.post_control_all();
    }
}

impl Drop for DeployedService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuntimeError;
    use crate::graph::GraphBuilder;
    use crate::platform::{BuiltGraph, Platform, PlatformConfig, ServiceSpec};
    use crate::tasks::{ComputeLogic, ComputeTask, InputTask, OutputTask, Outputs};
    use crate::value::Value;
    use flick_grammar::http::{self, HttpCodec};

    /// A tiny static web server: replies 200 with a fixed body to every
    /// request (the paper's "static web server" variant of the HTTP use
    /// case, used here to exercise the whole dispatch path).
    struct StaticServerFactory;

    struct RespondLogic;
    impl ComputeLogic for RespondLogic {
        fn on_value(
            &mut self,
            _input: usize,
            value: Value,
            out: &mut Outputs<'_>,
        ) -> Result<(), RuntimeError> {
            if value.as_msg().is_some() {
                out.emit(0, Value::Msg(http::response(200, b"hello from flick")));
            }
            Ok(())
        }
    }

    impl GraphFactory for StaticServerFactory {
        fn build(
            &self,
            mut clients: Vec<Endpoint>,
            env: &ServiceEnv,
        ) -> Result<BuiltGraph, RuntimeError> {
            let client = clients.pop().expect("one client connection");
            let codec = Arc::new(HttpCodec::new());
            let mut builder = GraphBuilder::new("static-web", &env.allocator)
                .with_channel_capacity(env.channel_capacity);
            let input_node = builder.declare_node();
            let compute_node = builder.declare_node();
            let output_node = builder.declare_node();
            let (req_tx, req_rx) = builder.channel(compute_node);
            let (resp_tx, resp_rx) = builder.channel(output_node);
            builder.install(
                input_node,
                Box::new(InputTask::new(
                    "http-in",
                    client.clone(),
                    codec.clone(),
                    None,
                    req_tx,
                )),
            );
            builder.install(
                compute_node,
                Box::new(ComputeTask::new(
                    "respond",
                    vec![req_rx],
                    vec![resp_tx],
                    Box::new(RespondLogic),
                )),
            );
            let mut out_task = OutputTask::new("http-out", client.clone(), codec, resp_rx);
            out_task.set_mode(env.output_mode);
            builder.install(output_node, Box::new(out_task));
            Ok(BuiltGraph {
                graph: builder.build(),
                watchers: vec![
                    Watch::readable(input_node.task_id(), client.clone()),
                    Watch::writable(output_node.task_id(), client),
                ],
                initial: vec![],
                client_tasks: vec![input_node.task_id()],
            })
        }
    }

    #[test]
    fn end_to_end_static_web_server() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8080, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();

        // Issue three requests over one persistent connection.
        let client = net.connect(8080).unwrap();
        for i in 0..3 {
            client
                .write_all(format!("GET /{i} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = Vec::new();
            let mut buf = [0u8; 1024];
            loop {
                match client.read_timeout(&mut buf, Duration::from_secs(5)) {
                    Ok(n) => {
                        response.extend_from_slice(&buf[..n]);
                        if response.windows(16).any(|w| w == b"hello from flick") {
                            break;
                        }
                    }
                    Err(e) => panic!("request {i}: {e}"),
                }
            }
            let text = String::from_utf8_lossy(&response);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
        }
        assert_eq!(service.connections_accepted(), 1);
        assert_eq!(service.live_graphs(), 1);

        // Closing the client tears the graph down.
        client.close();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            service.live_graphs(),
            0,
            "graph should be destroyed after the client closes"
        );
    }

    #[test]
    fn multiple_concurrent_connections_get_their_own_graphs() {
        let platform = Platform::new(PlatformConfig {
            workers: 4,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8081, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let clients: Vec<_> = (0..8).map(|_| net.connect(8081).unwrap()).collect();
        for (i, c) in clients.iter().enumerate() {
            c.write_all(format!("GET /{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
        }
        for c in &clients {
            let mut buf = [0u8; 1024];
            let n = c.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();
            assert!(n > 0);
        }
        assert_eq!(service.connections_accepted(), 8);
        for c in &clients {
            c.close();
        }
        drop(clients);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.live_graphs(), 0);
    }

    /// The same connection fan as above, but over many shards: graphs are
    /// placed round-robin, served correctly, and torn down no matter which
    /// shard owns them.
    #[test]
    fn connections_are_served_across_shards() {
        let platform = Platform::new(PlatformConfig {
            workers: 4,
            shards: 4,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8085, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let clients: Vec<_> = (0..8).map(|_| net.connect(8085).unwrap()).collect();
        for (i, c) in clients.iter().enumerate() {
            c.write_all(format!("GET /{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
        }
        for c in &clients {
            let mut buf = [0u8; 1024];
            let n = c.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();
            assert!(n > 0);
        }
        // With 8 graphs over 4 round-robin shards, every shard built some.
        let status = platform.shard_status();
        assert_eq!(status.len(), 4);
        assert!(
            status.iter().all(|s| s.graphs_built >= 1),
            "round-robin placement must reach every shard: {status:?}"
        );
        for c in &clients {
            c.close();
        }
        drop(clients);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.live_graphs(), 0);
    }

    /// Satellite regression for the accept-hardening contract: a burst of
    /// `EMFILE`-class accept failures must not kill the listener. The sim
    /// listener is armed to fail the next several accepts with
    /// `NetError::Resources` *without* consuming its backlog — exactly
    /// the shape of fd exhaustion on the OS transport — and the
    /// dispatcher has to back off, retry, and eventually serve both the
    /// connection stranded behind the burst and ones arriving after it.
    #[test]
    fn accept_resource_exhaustion_does_not_kill_the_listener() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8087, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        assert!(net.inject_accept_faults(8087, 6), "listener must be bound");

        // This connection lands in the backlog while every accept fails.
        let stranded = net.connect(8087).unwrap();
        stranded
            .write_all(b"GET /stranded HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 1024];
        let n = stranded
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert!(n > 0, "connection behind the fault burst must be served");
        assert!(
            service
                .shared
                .accept_resource_errors
                .load(Ordering::Relaxed)
                > 0,
            "the fault burst must have been observed as Resources errors"
        );

        // The listener survived: a fresh connection is also served.
        let later = net.connect(8087).unwrap();
        later
            .write_all(b"GET /later HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let n = later
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert!(n > 0, "listener must keep serving after the burst");
        assert_eq!(service.connections_accepted(), 2);
    }

    #[test]
    fn stop_terminates_the_dispatcher_and_unbinds_nothing_else() {
        let platform = Platform::new(PlatformConfig::default());
        let mut service = platform
            .deploy(ServiceSpec::new("web", 8082, Arc::new(StaticServerFactory)))
            .unwrap();
        service.stop();
        // After stop, new connections are refused because the listener closed.
        assert!(platform.net().connect(8082).is_err());
    }

    /// The headline property of the event backend: an idle deployed service
    /// performs zero endpoint scans between events. The dispatcher blocks
    /// in `Poller::wait` while a connected-but-silent client sits for
    /// 100 ms, so neither `Endpoint::readable` nor `Endpoint::read` fires.
    #[test]
    fn idle_service_performs_no_endpoint_scans() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            dispatcher: DispatcherBackend::Event,
            ..Default::default()
        });
        let _service = platform
            .deploy(ServiceSpec::new("web", 8083, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let client = net.connect(8083).unwrap();
        // One request/response round-trip so the graph is fully
        // instantiated and its input task has drained to WouldBlock.
        client
            .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 1024];
        client
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        // Let in-flight wakeups settle before measuring.
        std::thread::sleep(Duration::from_millis(20));
        let before = net.stats().snapshot();
        std::thread::sleep(Duration::from_millis(100));
        let after = net.stats().snapshot();
        assert_eq!(
            after.readable_polls, before.readable_polls,
            "idle event dispatcher must not call Endpoint::readable"
        );
        assert_eq!(
            after.read_calls, before.read_calls,
            "idle event dispatcher must not issue reads"
        );
    }

    /// The poll backend is kept for the dispatcher_backend ablation; it
    /// must still serve traffic and, unlike the event backend, it *does*
    /// scan endpoints while idle.
    #[test]
    fn poll_backend_still_serves_and_scans() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            dispatcher: DispatcherBackend::Poll,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8084, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let client = net.connect(8084).unwrap();
        client
            .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 1024];
        let n = client
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert!(n > 0);
        let before = net.stats().snapshot();
        std::thread::sleep(Duration::from_millis(20));
        let after = net.stats().snapshot();
        assert!(
            after.readable_polls > before.readable_polls,
            "poll dispatcher re-scans idle endpoints"
        );
        client.close();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.live_graphs(), 0);
    }

    #[test]
    fn poll_backend_serves_across_shards() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            shards: 2,
            dispatcher: DispatcherBackend::Poll,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8086, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let clients: Vec<_> = (0..4).map(|_| net.connect(8086).unwrap()).collect();
        for c in &clients {
            c.write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut buf = [0u8; 1024];
            let n = c.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();
            assert!(n > 0);
        }
        assert_eq!(service.connections_accepted(), 4);
        let status = platform.shard_status();
        assert!(status.iter().all(|s| s.graphs_built >= 1), "{status:?}");
    }

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(DispatcherBackend::Event.label(), "event");
        assert_eq!(DispatcherBackend::Poll.label(), "poll");
        assert_eq!(DispatcherBackend::default(), DispatcherBackend::Event);
    }
}
