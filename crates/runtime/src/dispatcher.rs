//! The application and graph dispatchers.
//!
//! §5 of the paper: the *application dispatcher* owns the listening socket
//! of a service, maps new connections to the service's program instance and
//! indicates connection closes; the *graph dispatcher* assigns connections
//! to task graphs, instantiating a new one when needed. Both run on one
//! dispatcher thread per deployed service. The dispatcher also plays the
//! role of the epoll loop: it blocks on a [`Poller`] and wakes input tasks
//! when their connection signals data (or EOF).
//!
//! Two implementations exist, selected by [`DispatcherBackend`]:
//!
//! * [`DispatcherBackend::Event`] (default) — a wakeup-based reactor.
//!   Accepts, task wakeups and graph teardown are all event handlers keyed
//!   by a [`Token`] → watcher map; between events the thread blocks in
//!   [`Poller::wait`] and performs **zero** endpoint scans, so thousands of
//!   idle connections cost nothing.
//! * [`DispatcherBackend::Poll`] — the historical sleep-poll loop, kept as
//!   the ablation baseline (`flick_bench`'s `dispatcher_backend` ablation):
//!   sleep `poll_interval`, then linearly re-scan every watched endpoint.

use crate::metrics::RuntimeMetrics;
use crate::platform::{GraphFactory, ServiceEnv};
use crate::scheduler::Scheduler;
use crate::task::TaskId;
use crate::value::SharedDict;
use flick_net::{Endpoint, Interest, NetError, Poller, SimListener, Token};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which dispatcher implementation a platform runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatcherBackend {
    /// Wakeup-based reactor: the dispatcher blocks on readiness events and
    /// never scans idle connections. The default.
    #[default]
    Event,
    /// Sleep `poll_interval`, then re-scan every watched endpoint. Kept as
    /// the ablation baseline for the event backend.
    Poll,
}

impl DispatcherBackend {
    /// Short label used in benchmark output ("event", "poll").
    pub fn label(self) -> &'static str {
        match self {
            DispatcherBackend::Event => "event",
            DispatcherBackend::Poll => "poll",
        }
    }

    /// Both backends, poll first (the ablation's baseline ordering).
    pub fn all() -> [DispatcherBackend; 2] {
        [DispatcherBackend::Poll, DispatcherBackend::Event]
    }
}

/// How long a non-quiescent draining graph may linger before it is torn
/// down forcibly.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// The token the service listener is registered under; watcher and graph
/// tokens are allocated from `1` upwards.
const LISTENER_TOKEN: Token = Token(0);

/// State shared between the platform, the dispatcher thread and the service
/// handle.
pub struct DispatcherShared {
    name: String,
    listener: SimListener,
    factory: Arc<dyn GraphFactory>,
    env: ServiceEnv,
    scheduler: Arc<Scheduler>,
    backend: DispatcherBackend,
    /// For the poll backend: the sleep between endpoint re-scans. For the
    /// event backend: only a lower bound on the drain/teardown heartbeat —
    /// the reactor blocks on events, it does not tick at this rate.
    poll_interval: Duration,
    /// The event queue the dispatcher thread blocks on (event backend).
    /// Also used to wake the thread promptly on `stop`.
    poller: Poller,
    /// Connections accepted so far.
    pub connections_accepted: AtomicU64,
    /// Graph instances currently alive.
    pub live_graphs: AtomicU64,
}

impl DispatcherShared {
    /// The service name this dispatcher serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates the shared dispatcher state.
    pub fn new(
        name: String,
        listener: SimListener,
        factory: Arc<dyn GraphFactory>,
        env: ServiceEnv,
        scheduler: Arc<Scheduler>,
        backend: DispatcherBackend,
        poll_interval: Duration,
    ) -> Self {
        DispatcherShared {
            name,
            listener,
            factory,
            env,
            scheduler,
            backend,
            poll_interval,
            poller: Poller::new(),
            connections_accepted: AtomicU64::new(0),
            live_graphs: AtomicU64::new(0),
        }
    }
}

struct LiveGraph {
    task_ids: Vec<TaskId>,
    client_tasks: Vec<TaskId>,
    watchers: Vec<(TaskId, Endpoint)>,
    /// Set once every client task has finished: the graph is draining. The
    /// deadline bounds how long a non-quiescent graph may linger before it
    /// is torn down forcibly.
    draining_until: Option<Instant>,
}

/// Accepts everything currently pending on the service listener.
fn accept_pending(shared: &DispatcherShared, pending_clients: &mut Vec<Endpoint>) {
    loop {
        match shared.listener.try_accept() {
            Ok(client) => {
                shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
                pending_clients.push(client);
            }
            Err(NetError::WouldBlock) => break,
            Err(_) => break,
        }
    }
}

/// Graph dispatcher: builds one graph instance over `clients`, registers
/// its tasks with the scheduler and gives input tasks a first chance to run
/// (data may already be waiting on the connection). Returns `None` on
/// factory failure (the client connections are dropped, and closed by the
/// Drop impls of whatever tasks did get built).
fn build_graph(shared: &DispatcherShared, clients: Vec<Endpoint>) -> Option<LiveGraph> {
    match shared.factory.build(clients, &shared.env) {
        Ok(built) => {
            let task_ids = built.graph.task_ids().to_vec();
            shared.scheduler.register_graph(built.graph, &built.initial);
            for (task, _) in &built.watchers {
                shared.scheduler.schedule(*task);
            }
            shared.live_graphs.fetch_add(1, Ordering::Relaxed);
            Some(LiveGraph {
                task_ids,
                client_tasks: built.client_tasks,
                watchers: built.watchers,
                draining_until: None,
            })
        }
        Err(_) => None,
    }
}

/// The dispatcher loop; runs on its own thread until `stop` is set.
pub fn run_dispatcher(shared: Arc<DispatcherShared>, stop: Arc<AtomicBool>) {
    match shared.backend {
        DispatcherBackend::Event => run_event_dispatcher(shared, stop),
        DispatcherBackend::Poll => run_poll_dispatcher(shared, stop),
    }
}

/// The sleep-poll dispatcher: the ablation baseline. Every iteration
/// re-scans all watched endpoints (`Endpoint::readable`) and all live
/// graphs, then sleeps `poll_interval`.
fn run_poll_dispatcher(shared: Arc<DispatcherShared>, stop: Arc<AtomicBool>) {
    let mut pending_clients: Vec<Endpoint> = Vec::new();
    let mut graphs: Vec<LiveGraph> = Vec::new();
    let per_graph = shared.factory.connections_per_graph().max(1);

    while !stop.load(Ordering::Acquire) {
        // 1. Application dispatcher: accept new connections.
        accept_pending(&shared, &mut pending_clients);
        // 2. Graph dispatcher: instantiate a graph once enough connections
        //    have arrived for one instance.
        while pending_clients.len() >= per_graph {
            let clients: Vec<Endpoint> = pending_clients.drain(..per_graph).collect();
            if let Some(graph) = build_graph(&shared, clients) {
                graphs.push(graph);
            }
        }
        // 3. Poll connections and wake input tasks; tear down graphs whose
        //    client connections have all finished.
        let scheduler = &shared.scheduler;
        graphs.retain_mut(|graph| {
            graph.watchers.retain(|(task, endpoint)| {
                if !scheduler.is_registered(*task) {
                    return false;
                }
                if endpoint.readable() {
                    scheduler.schedule(*task);
                }
                true
            });
            !advance_graph_lifecycle(&shared, graph)
        });
        std::thread::sleep(shared.poll_interval);
    }
    shared.listener.close();
    // Tear everything down on shutdown.
    for graph in graphs {
        for task in graph.task_ids {
            shared.scheduler.remove(task);
        }
    }
}

/// Advances one graph's drain/teardown lifecycle; shared by both
/// dispatcher backends so the ablation compares dispatch mechanisms, not
/// divergent drain semantics. Once every *client* task has finished the
/// graph starts draining: the remaining watched connections are closed
/// (their input tasks observe EOF), every task gets a final chance to
/// flush, and a grace deadline bounds a non-quiescent graph. Returns
/// `true` once the graph was torn down (all tasks gone, or the grace
/// expired).
fn advance_graph_lifecycle(shared: &DispatcherShared, graph: &mut LiveGraph) -> bool {
    let scheduler = &shared.scheduler;
    let clients_done = graph
        .client_tasks
        .iter()
        .all(|task| !scheduler.is_registered(*task));
    if !clients_done {
        return false;
    }
    if graph.draining_until.is_none() {
        for (_task, endpoint) in &graph.watchers {
            endpoint.close();
        }
        for task in &graph.task_ids {
            scheduler.schedule(*task);
        }
        graph.draining_until = Some(Instant::now() + DRAIN_GRACE);
    }
    let all_done = graph
        .task_ids
        .iter()
        .all(|task| !scheduler.is_registered(*task));
    let expired = graph
        .draining_until
        .map(|deadline| Instant::now() >= deadline)
        .unwrap_or(false);
    if all_done || expired {
        for task in &graph.task_ids {
            scheduler.remove(*task);
        }
        RuntimeMetrics::add(&scheduler.metrics().graphs_destroyed, 1);
        shared.live_graphs.fetch_sub(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// Per-graph bookkeeping of the event dispatcher.
struct EventGraph {
    graph: LiveGraph,
    /// The tokens this graph's watched endpoints are registered under.
    watch_tokens: Vec<Token>,
}

/// One entry of the event dispatcher's `Token` → watcher map.
struct Watcher {
    graph_id: u64,
    task: TaskId,
    endpoint: Endpoint,
}

/// The wakeup-based reactor. The thread blocks in [`Poller::wait`]; every
/// state transition anywhere in the service — a new pending accept, bytes
/// arriving on a watched connection, EOF, a task exiting the scheduler —
/// arrives as an [`flick_net::Event`] and is handled by token. An idle
/// service performs zero endpoint scans between events.
fn run_event_dispatcher(shared: Arc<DispatcherShared>, stop: Arc<AtomicBool>) {
    let poller = shared.poller.clone();
    let scheduler = Arc::clone(&shared.scheduler);
    let mut pending_clients: Vec<Endpoint> = Vec::new();
    // Graphs are keyed by the token value their exit events post under;
    // watcher tokens share the same allocator so the namespaces never
    // collide.
    let mut graphs: HashMap<u64, EventGraph> = HashMap::new();
    let mut watch_map: HashMap<Token, Watcher> = HashMap::new();
    // Side index of graphs currently draining (id → deadline): only these
    // can expire, so the heartbeat never has to scan the full graph map.
    let mut draining: HashMap<u64, Instant> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN.0 + 1;
    let per_graph = shared.factory.connections_per_graph().max(1);
    // Accepts that raced the dispatcher start are caught by the
    // level-triggered registration.
    shared.listener.register(&poller, LISTENER_TOKEN);

    while !stop.load(Ordering::Acquire) {
        // Block until something happens. `poll_interval` survives only as a
        // lower bound on the drain/teardown heartbeat: with no graph
        // draining the reactor sleeps in long beats (woken early by any
        // event), and with one draining it wakes at the drain deadline.
        let now = Instant::now();
        let timeout = draining
            .values()
            .min()
            .map(|deadline| deadline.saturating_duration_since(now))
            .unwrap_or_else(|| shared.poll_interval.max(Duration::from_millis(50)));
        let events = poller.wait(timeout);
        if stop.load(Ordering::Acquire) {
            break;
        }

        let mut dirty_graphs: Vec<u64> = Vec::new();
        for event in events {
            if event.token == LISTENER_TOKEN {
                accept_pending(&shared, &mut pending_clients);
            } else if let Some(watcher) = watch_map.get(&event.token) {
                if scheduler.is_registered(watcher.task) {
                    scheduler.schedule(watcher.task);
                } else {
                    // The input task already exited; stop watching. Graph
                    // teardown itself is driven by the task-exit events.
                    let watcher = watch_map.remove(&event.token).expect("present");
                    watcher.endpoint.deregister(&poller);
                }
            } else if graphs.contains_key(&event.token.0) {
                // A task-exit event: re-evaluate this graph's lifecycle.
                dirty_graphs.push(event.token.0);
            }
        }

        // Graph dispatcher: instantiate once enough connections arrived.
        while pending_clients.len() >= per_graph {
            let clients: Vec<Endpoint> = pending_clients.drain(..per_graph).collect();
            let Some(graph) = build_graph(&shared, clients) else {
                continue;
            };
            let graph_id = next_token;
            next_token += 1;
            let mut watch_tokens = Vec::with_capacity(graph.watchers.len());
            for (task, endpoint) in &graph.watchers {
                let token = Token(next_token);
                next_token += 1;
                // Level-triggered: data already buffered on the fresh
                // connection posts an event immediately.
                endpoint.register(&poller, token, Interest::READABLE);
                watch_map.insert(
                    token,
                    Watcher {
                        graph_id,
                        task: *task,
                        endpoint: endpoint.clone(),
                    },
                );
                watch_tokens.push(token);
            }
            // Every task exit posts the graph's token, so client-side
            // completion (begin draining) and full quiescence (teardown)
            // are events, not scans.
            for task in &graph.task_ids {
                let exit_poller = poller.clone();
                scheduler.watch_exit(
                    *task,
                    Box::new(move |_| exit_poller.post(Token(graph_id), Default::default())),
                );
            }
            graphs.insert(
                graph_id,
                EventGraph {
                    graph,
                    watch_tokens,
                },
            );
        }

        // Re-evaluate graphs whose tasks exited, plus any whose drain
        // deadline has passed (the heartbeat case).
        let now = Instant::now();
        for (id, deadline) in &draining {
            if now >= *deadline && !dirty_graphs.contains(id) {
                dirty_graphs.push(*id);
            }
        }
        for graph_id in dirty_graphs {
            evaluate_graph(
                &shared,
                &poller,
                &mut graphs,
                &mut watch_map,
                &mut draining,
                graph_id,
            );
        }
    }

    shared.listener.deregister(&poller);
    shared.listener.close();
    // Tear everything down on shutdown.
    for (_, entry) in graphs {
        for (_, endpoint) in &entry.graph.watchers {
            endpoint.deregister(&poller);
        }
        for task in entry.graph.task_ids {
            shared.scheduler.remove(task);
        }
    }
}

/// Lifecycle check for one graph of the event dispatcher, run only when a
/// task-exit event (or the drain heartbeat) says something changed: the
/// shared [`advance_graph_lifecycle`] decides, and this function keeps the
/// event dispatcher's token and draining indexes consistent with it.
fn evaluate_graph(
    shared: &DispatcherShared,
    poller: &Poller,
    graphs: &mut HashMap<u64, EventGraph>,
    watch_map: &mut HashMap<Token, Watcher>,
    draining: &mut HashMap<u64, Instant>,
    graph_id: u64,
) {
    let Some(entry) = graphs.get_mut(&graph_id) else {
        draining.remove(&graph_id);
        return;
    };
    let torn_down = advance_graph_lifecycle(shared, &mut entry.graph);
    if !torn_down {
        if let Some(deadline) = entry.graph.draining_until {
            draining.insert(graph_id, deadline);
        }
        return;
    }
    // Torn down (tasks removed and counters updated by the lifecycle
    // helper): drop the event dispatcher's own bookkeeping.
    let entry = graphs.remove(&graph_id).expect("checked above");
    draining.remove(&graph_id);
    for token in &entry.watch_tokens {
        if let Some(watcher) = watch_map.remove(token) {
            debug_assert_eq!(watcher.graph_id, graph_id);
            watcher.endpoint.deregister(poller);
        }
    }
}

/// Handle to a deployed service; stopping it terminates its dispatcher.
pub struct DeployedService {
    name: String,
    port: u16,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    globals: SharedDict,
    shared: Arc<DispatcherShared>,
}

impl std::fmt::Debug for DeployedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeployedService")
            .field("name", &self.name)
            .field("port", &self.port)
            .finish()
    }
}

impl DeployedService {
    /// Creates the handle (platform-internal).
    pub fn new(
        name: String,
        port: u16,
        stop: Arc<AtomicBool>,
        handle: JoinHandle<()>,
        globals: SharedDict,
        shared: Arc<DispatcherShared>,
    ) -> Self {
        DeployedService {
            name,
            port,
            stop,
            handle: Some(handle),
            globals,
            shared,
        }
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port the service listens on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The FLICK `global` shared dictionary of this service.
    pub fn globals(&self) -> &SharedDict {
        &self.globals
    }

    /// Number of client connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Number of task-graph instances currently alive.
    pub fn live_graphs(&self) -> u64 {
        self.shared.live_graphs.load(Ordering::Relaxed)
    }

    /// Stops the dispatcher and waits for its thread to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock an event dispatcher parked in `Poller::wait`.
        self.shared.poller.wake();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DeployedService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuntimeError;
    use crate::graph::GraphBuilder;
    use crate::platform::{BuiltGraph, Platform, PlatformConfig, ServiceSpec};
    use crate::tasks::{ComputeLogic, ComputeTask, InputTask, OutputTask, Outputs};
    use crate::value::Value;
    use flick_grammar::http::{self, HttpCodec};

    /// A tiny static web server: replies 200 with a fixed body to every
    /// request (the paper's "static web server" variant of the HTTP use
    /// case, used here to exercise the whole dispatch path).
    struct StaticServerFactory;

    struct RespondLogic;
    impl ComputeLogic for RespondLogic {
        fn on_value(
            &mut self,
            _input: usize,
            value: Value,
            out: &mut Outputs<'_>,
        ) -> Result<(), RuntimeError> {
            if value.as_msg().is_some() {
                out.emit(0, Value::Msg(http::response(200, b"hello from flick")));
            }
            Ok(())
        }
    }

    impl GraphFactory for StaticServerFactory {
        fn build(
            &self,
            mut clients: Vec<Endpoint>,
            env: &ServiceEnv,
        ) -> Result<BuiltGraph, RuntimeError> {
            let client = clients.pop().expect("one client connection");
            let codec = Arc::new(HttpCodec::new());
            let mut builder = GraphBuilder::new("static-web", &env.allocator)
                .with_channel_capacity(env.channel_capacity);
            let input_node = builder.declare_node();
            let compute_node = builder.declare_node();
            let output_node = builder.declare_node();
            let (req_tx, req_rx) = builder.channel(compute_node);
            let (resp_tx, resp_rx) = builder.channel(output_node);
            builder.install(
                input_node,
                Box::new(InputTask::new(
                    "http-in",
                    client.clone(),
                    codec.clone(),
                    None,
                    req_tx,
                )),
            );
            builder.install(
                compute_node,
                Box::new(ComputeTask::new(
                    "respond",
                    vec![req_rx],
                    vec![resp_tx],
                    Box::new(RespondLogic),
                )),
            );
            builder.install(
                output_node,
                Box::new(OutputTask::new("http-out", client.clone(), codec, resp_rx)),
            );
            Ok(BuiltGraph {
                graph: builder.build(),
                watchers: vec![(input_node.task_id(), client)],
                initial: vec![],
                client_tasks: vec![input_node.task_id()],
            })
        }
    }

    #[test]
    fn end_to_end_static_web_server() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8080, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();

        // Issue three requests over one persistent connection.
        let client = net.connect(8080).unwrap();
        for i in 0..3 {
            client
                .write_all(format!("GET /{i} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = Vec::new();
            let mut buf = [0u8; 1024];
            loop {
                match client.read_timeout(&mut buf, Duration::from_secs(5)) {
                    Ok(n) => {
                        response.extend_from_slice(&buf[..n]);
                        if response.windows(16).any(|w| w == b"hello from flick") {
                            break;
                        }
                    }
                    Err(e) => panic!("request {i}: {e}"),
                }
            }
            let text = String::from_utf8_lossy(&response);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
        }
        assert_eq!(service.connections_accepted(), 1);
        assert_eq!(service.live_graphs(), 1);

        // Closing the client tears the graph down.
        client.close();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            service.live_graphs(),
            0,
            "graph should be destroyed after the client closes"
        );
    }

    #[test]
    fn multiple_concurrent_connections_get_their_own_graphs() {
        let platform = Platform::new(PlatformConfig {
            workers: 4,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8081, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let clients: Vec<_> = (0..8).map(|_| net.connect(8081).unwrap()).collect();
        for (i, c) in clients.iter().enumerate() {
            c.write_all(format!("GET /{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
        }
        for c in &clients {
            let mut buf = [0u8; 1024];
            let n = c.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();
            assert!(n > 0);
        }
        assert_eq!(service.connections_accepted(), 8);
        for c in &clients {
            c.close();
        }
        drop(clients);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.live_graphs(), 0);
    }

    #[test]
    fn stop_terminates_the_dispatcher_and_unbinds_nothing_else() {
        let platform = Platform::new(PlatformConfig::default());
        let mut service = platform
            .deploy(ServiceSpec::new("web", 8082, Arc::new(StaticServerFactory)))
            .unwrap();
        service.stop();
        // After stop, new connections are refused because the listener closed.
        assert!(platform.net().connect(8082).is_err());
    }

    /// The headline property of the event backend: an idle deployed service
    /// performs zero endpoint scans between events. The dispatcher blocks
    /// in `Poller::wait` while a connected-but-silent client sits for
    /// 100 ms, so neither `Endpoint::readable` nor `Endpoint::read` fires.
    #[test]
    fn idle_service_performs_no_endpoint_scans() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            dispatcher: DispatcherBackend::Event,
            ..Default::default()
        });
        let _service = platform
            .deploy(ServiceSpec::new("web", 8083, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let client = net.connect(8083).unwrap();
        // One request/response round-trip so the graph is fully
        // instantiated and its input task has drained to WouldBlock.
        client
            .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 1024];
        client
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        // Let in-flight wakeups settle before measuring.
        std::thread::sleep(Duration::from_millis(20));
        let before = net.stats().snapshot();
        std::thread::sleep(Duration::from_millis(100));
        let after = net.stats().snapshot();
        assert_eq!(
            after.readable_polls, before.readable_polls,
            "idle event dispatcher must not call Endpoint::readable"
        );
        assert_eq!(
            after.read_calls, before.read_calls,
            "idle event dispatcher must not issue reads"
        );
    }

    /// The poll backend is kept for the dispatcher_backend ablation; it
    /// must still serve traffic and, unlike the event backend, it *does*
    /// scan endpoints while idle.
    #[test]
    fn poll_backend_still_serves_and_scans() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            dispatcher: DispatcherBackend::Poll,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8084, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let client = net.connect(8084).unwrap();
        client
            .write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 1024];
        let n = client
            .read_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert!(n > 0);
        let before = net.stats().snapshot();
        std::thread::sleep(Duration::from_millis(20));
        let after = net.stats().snapshot();
        assert!(
            after.readable_polls > before.readable_polls,
            "poll dispatcher re-scans idle endpoints"
        );
        client.close();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.live_graphs(), 0);
    }

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(DispatcherBackend::Event.label(), "event");
        assert_eq!(DispatcherBackend::Poll.label(), "poll");
        assert_eq!(DispatcherBackend::default(), DispatcherBackend::Event);
    }
}
