//! The application and graph dispatchers.
//!
//! §5 of the paper: the *application dispatcher* owns the listening socket
//! of a service, maps new connections to the service's program instance and
//! indicates connection closes; the *graph dispatcher* assigns connections
//! to task graphs, instantiating a new one when needed. Both run on one
//! dispatcher thread per deployed service. The dispatcher also plays the
//! role of the epoll loop: it polls the connections bound to input tasks and
//! wakes those tasks when data (or EOF) is available.

use crate::metrics::RuntimeMetrics;
use crate::platform::{GraphFactory, ServiceEnv};
use crate::scheduler::Scheduler;
use crate::task::TaskId;
use crate::value::SharedDict;
use flick_net::{Endpoint, NetError, SimListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// State shared between the platform, the dispatcher thread and the service
/// handle.
pub struct DispatcherShared {
    name: String,
    listener: SimListener,
    factory: Arc<dyn GraphFactory>,
    env: ServiceEnv,
    scheduler: Arc<Scheduler>,
    poll_interval: Duration,
    /// Connections accepted so far.
    pub connections_accepted: AtomicU64,
    /// Graph instances currently alive.
    pub live_graphs: AtomicU64,
}

impl DispatcherShared {
    /// The service name this dispatcher serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates the shared dispatcher state.
    pub fn new(
        name: String,
        listener: SimListener,
        factory: Arc<dyn GraphFactory>,
        env: ServiceEnv,
        scheduler: Arc<Scheduler>,
        poll_interval: Duration,
    ) -> Self {
        DispatcherShared {
            name,
            listener,
            factory,
            env,
            scheduler,
            poll_interval,
            connections_accepted: AtomicU64::new(0),
            live_graphs: AtomicU64::new(0),
        }
    }
}

struct LiveGraph {
    task_ids: Vec<TaskId>,
    client_tasks: Vec<TaskId>,
    watchers: Vec<(TaskId, Endpoint)>,
    /// Set once every client task has finished: the graph is draining. The
    /// deadline bounds how long a non-quiescent graph may linger before it
    /// is torn down forcibly.
    draining_until: Option<std::time::Instant>,
}

/// The dispatcher loop; runs on its own thread until `stop` is set.
pub fn run_dispatcher(shared: Arc<DispatcherShared>, stop: Arc<AtomicBool>) {
    let mut pending_clients: Vec<Endpoint> = Vec::new();
    let mut graphs: Vec<LiveGraph> = Vec::new();
    let per_graph = shared.factory.connections_per_graph().max(1);

    while !stop.load(Ordering::Acquire) {
        // 1. Application dispatcher: accept new connections.
        loop {
            match shared.listener.try_accept() {
                Ok(client) => {
                    shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    pending_clients.push(client);
                }
                Err(NetError::WouldBlock) => break,
                Err(_) => break,
            }
        }
        // 2. Graph dispatcher: instantiate a graph once enough connections
        //    have arrived for one instance.
        while pending_clients.len() >= per_graph {
            let clients: Vec<Endpoint> = pending_clients.drain(..per_graph).collect();
            match shared.factory.build(clients, &shared.env) {
                Ok(built) => {
                    let task_ids = built.graph.task_ids().to_vec();
                    shared.scheduler.register_graph(built.graph, &built.initial);
                    // Give freshly created input tasks a first chance to run:
                    // data may already be waiting on the connection.
                    for (task, _) in &built.watchers {
                        shared.scheduler.schedule(*task);
                    }
                    graphs.push(LiveGraph {
                        task_ids,
                        client_tasks: built.client_tasks,
                        watchers: built.watchers,
                        draining_until: None,
                    });
                    shared.live_graphs.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    // Factory failure: the client connections are dropped
                    // (and closed by their Drop impls in the tasks that did
                    // get built, if any).
                }
            }
        }
        // 3. Poll connections and wake input tasks; tear down graphs whose
        //    client connections have all finished.
        let scheduler = &shared.scheduler;
        let metrics = scheduler.metrics();
        graphs.retain_mut(|graph| {
            graph.watchers.retain(|(task, endpoint)| {
                if !scheduler.is_registered(*task) {
                    return false;
                }
                if endpoint.readable() {
                    scheduler.schedule(*task);
                }
                true
            });
            let clients_done = graph
                .client_tasks
                .iter()
                .all(|task| !scheduler.is_registered(*task));
            if !clients_done {
                return true;
            }
            // The client side is gone: let the remaining tasks drain (the
            // aggregator still has output to flush), but bound how long a
            // graph may linger. Closing the remaining watched connections
            // makes the graph's own input tasks observe EOF and finish.
            let all_done = graph
                .task_ids
                .iter()
                .all(|task| !scheduler.is_registered(*task));
            if graph.draining_until.is_none() {
                for (_task, endpoint) in &graph.watchers {
                    endpoint.close();
                }
                for task in &graph.task_ids {
                    scheduler.schedule(*task);
                }
                graph.draining_until = Some(std::time::Instant::now() + Duration::from_secs(2));
            }
            let expired = graph
                .draining_until
                .map(|d| std::time::Instant::now() >= d)
                .unwrap_or(false);
            if all_done || expired {
                for task in &graph.task_ids {
                    scheduler.remove(*task);
                }
                RuntimeMetrics::add(&metrics.graphs_destroyed, 1);
                shared.live_graphs.fetch_sub(1, Ordering::Relaxed);
                false
            } else {
                true
            }
        });
        std::thread::sleep(shared.poll_interval);
    }
    shared.listener.close();
    // Tear everything down on shutdown.
    for graph in graphs {
        for task in graph.task_ids {
            shared.scheduler.remove(task);
        }
    }
}

/// Handle to a deployed service; stopping it terminates its dispatcher.
pub struct DeployedService {
    name: String,
    port: u16,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    globals: SharedDict,
    shared: Arc<DispatcherShared>,
}

impl std::fmt::Debug for DeployedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeployedService")
            .field("name", &self.name)
            .field("port", &self.port)
            .finish()
    }
}

impl DeployedService {
    /// Creates the handle (platform-internal).
    pub fn new(
        name: String,
        port: u16,
        stop: Arc<AtomicBool>,
        handle: JoinHandle<()>,
        globals: SharedDict,
        shared: Arc<DispatcherShared>,
    ) -> Self {
        DeployedService {
            name,
            port,
            stop,
            handle: Some(handle),
            globals,
            shared,
        }
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port the service listens on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The FLICK `global` shared dictionary of this service.
    pub fn globals(&self) -> &SharedDict {
        &self.globals
    }

    /// Number of client connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Number of task-graph instances currently alive.
    pub fn live_graphs(&self) -> u64 {
        self.shared.live_graphs.load(Ordering::Relaxed)
    }

    /// Stops the dispatcher and waits for its thread to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DeployedService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuntimeError;
    use crate::graph::GraphBuilder;
    use crate::platform::{BuiltGraph, Platform, PlatformConfig, ServiceSpec};
    use crate::tasks::{ComputeLogic, ComputeTask, InputTask, OutputTask, Outputs};
    use crate::value::Value;
    use flick_grammar::http::{self, HttpCodec};

    /// A tiny static web server: replies 200 with a fixed body to every
    /// request (the paper's "static web server" variant of the HTTP use
    /// case, used here to exercise the whole dispatch path).
    struct StaticServerFactory;

    struct RespondLogic;
    impl ComputeLogic for RespondLogic {
        fn on_value(
            &mut self,
            _input: usize,
            value: Value,
            out: &mut Outputs<'_>,
        ) -> Result<(), RuntimeError> {
            if value.as_msg().is_some() {
                out.emit(0, Value::Msg(http::response(200, b"hello from flick")));
            }
            Ok(())
        }
    }

    impl GraphFactory for StaticServerFactory {
        fn build(
            &self,
            mut clients: Vec<Endpoint>,
            env: &ServiceEnv,
        ) -> Result<BuiltGraph, RuntimeError> {
            let client = clients.pop().expect("one client connection");
            let codec = Arc::new(HttpCodec::new());
            let mut builder = GraphBuilder::new("static-web", &env.allocator)
                .with_channel_capacity(env.channel_capacity);
            let input_node = builder.declare_node();
            let compute_node = builder.declare_node();
            let output_node = builder.declare_node();
            let (req_tx, req_rx) = builder.channel(compute_node);
            let (resp_tx, resp_rx) = builder.channel(output_node);
            builder.install(
                input_node,
                Box::new(InputTask::new(
                    "http-in",
                    client.clone(),
                    codec.clone(),
                    None,
                    req_tx,
                )),
            );
            builder.install(
                compute_node,
                Box::new(ComputeTask::new(
                    "respond",
                    vec![req_rx],
                    vec![resp_tx],
                    Box::new(RespondLogic),
                )),
            );
            builder.install(
                output_node,
                Box::new(OutputTask::new("http-out", client.clone(), codec, resp_rx)),
            );
            Ok(BuiltGraph {
                graph: builder.build(),
                watchers: vec![(input_node.task_id(), client)],
                initial: vec![],
                client_tasks: vec![input_node.task_id()],
            })
        }
    }

    #[test]
    fn end_to_end_static_web_server() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8080, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();

        // Issue three requests over one persistent connection.
        let client = net.connect(8080).unwrap();
        for i in 0..3 {
            client
                .write_all(format!("GET /{i} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = Vec::new();
            let mut buf = [0u8; 1024];
            loop {
                match client.read_timeout(&mut buf, Duration::from_secs(5)) {
                    Ok(n) => {
                        response.extend_from_slice(&buf[..n]);
                        if response.windows(16).any(|w| w == b"hello from flick") {
                            break;
                        }
                    }
                    Err(e) => panic!("request {i}: {e}"),
                }
            }
            let text = String::from_utf8_lossy(&response);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
        }
        assert_eq!(service.connections_accepted(), 1);
        assert_eq!(service.live_graphs(), 1);

        // Closing the client tears the graph down.
        client.close();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            service.live_graphs(),
            0,
            "graph should be destroyed after the client closes"
        );
    }

    #[test]
    fn multiple_concurrent_connections_get_their_own_graphs() {
        let platform = Platform::new(PlatformConfig {
            workers: 4,
            ..Default::default()
        });
        let service = platform
            .deploy(ServiceSpec::new("web", 8081, Arc::new(StaticServerFactory)))
            .unwrap();
        let net = platform.net();
        let clients: Vec<_> = (0..8).map(|_| net.connect(8081).unwrap()).collect();
        for (i, c) in clients.iter().enumerate() {
            c.write_all(format!("GET /{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
        }
        for c in &clients {
            let mut buf = [0u8; 1024];
            let n = c.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();
            assert!(n > 0);
        }
        assert_eq!(service.connections_accepted(), 8);
        for c in &clients {
            c.close();
        }
        drop(clients);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.live_graphs() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.live_graphs(), 0);
    }

    #[test]
    fn stop_terminates_the_dispatcher_and_unbinds_nothing_else() {
        let platform = Platform::new(PlatformConfig::default());
        let mut service = platform
            .deploy(ServiceSpec::new("web", 8082, Arc::new(StaticServerFactory)))
            .unwrap();
        service.stop();
        // After stop, new connections are refused because the listener closed.
        assert!(platform.net().connect(8082).is_err());
    }
}
