//! Concrete task kinds: input, compute, output, and synthetic tasks.
//!
//! These are the building blocks the FLICK compiler (and hand-written
//! services) assemble into task graphs:
//!
//! * [`InputTask`] — owns one network connection, performs incremental
//!   deserialisation using a [`WireCodec`] and a field [`Projection`], and
//!   pushes parsed messages into the graph;
//! * [`ComputeTask`] — runs a [`ComputeLogic`] over values arriving on any
//!   number of input channels, emitting to any number of output channels;
//! * [`OutputTask`] — serialises values and writes them to a connection;
//! * [`SourceTask`] and [`SyntheticWorkTask`] — synthetic producers used by
//!   tests and by the resource-sharing micro-benchmark of §6.4.

use crate::channel::{ChannelConsumer, ChannelProducer};
use crate::error::RuntimeError;
use crate::metrics::RuntimeMetrics;
use crate::task::{Task, TaskContext, TaskStatus};
use crate::value::Value;
use bytes::Bytes;
use flick_grammar::{ParseOutcome, Projection, WireCodec};
use flick_net::{Endpoint, NetError, SharedBuf};
use std::collections::VecDeque;
use std::sync::Arc;

/// How many bytes an input task reads per socket call.
pub const READ_CHUNK: usize = 16 * 1024;

/// Capacity an output task retains for its serialisation buffer across
/// responses; a one-off larger response shrinks back to this once flushed,
/// so a single 16 KB body does not pin its capacity forever.
pub const OUTBUF_RETAIN: usize = READ_CHUNK;

// ---------------------------------------------------------------------------
// Input task
// ---------------------------------------------------------------------------

/// A task that reads bytes from one connection and deserialises them into
/// application messages.
///
/// Ingest is zero-copy: the socket fills a refcounted [`SharedBuf`] in
/// place ([`Endpoint::read_into`]) and messages are parsed straight out of
/// it via [`WireCodec::parse_bytes`], so a complete message binds its raw
/// wire bytes (and byte fields) to the ingest allocation instead of being
/// copied into a private accumulator — and an incomplete message costs
/// nothing at all. [`flick_net::NetStats::ingest_copies`] stays at zero on
/// this path; the end-to-end suite asserts it.
pub struct InputTask {
    label: String,
    endpoint: Endpoint,
    codec: Arc<dyn WireCodec>,
    projection: Option<Projection>,
    buf: SharedBuf,
    pending: Option<Value>,
    output: ChannelProducer,
    eof: bool,
}

impl InputTask {
    /// Creates an input task reading from `endpoint` and pushing parsed
    /// messages into `output`.
    pub fn new(
        label: impl Into<String>,
        endpoint: Endpoint,
        codec: Arc<dyn WireCodec>,
        projection: Option<Projection>,
        output: ChannelProducer,
    ) -> Self {
        InputTask {
            label: label.into(),
            endpoint,
            codec,
            projection,
            buf: SharedBuf::new(READ_CHUNK),
            pending: None,
            output,
            eof: false,
        }
    }

    /// The connection this task reads from.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Tries to push a parsed message, stashing it if the channel is full.
    fn push_out(&mut self, value: Value, ctx: &mut TaskContext) -> bool {
        match self.output.push(value) {
            Ok(()) => {
                ctx.wake(self.output.consumer());
                RuntimeMetrics::add(&ctx.metrics().messages_in, 1);
                true
            }
            Err(back) => {
                self.pending = Some(back);
                false
            }
        }
    }

    /// Parses as many complete messages as possible from the shared
    /// buffer. Each message is parsed zero-copy out of a [`SharedBuf::view`]
    /// — consuming it is an index bump, not a drain-and-shift.
    fn drain_buffer(&mut self, ctx: &mut TaskContext) -> Result<bool, RuntimeError> {
        loop {
            if self.buf.is_empty() {
                return Ok(true);
            }
            let view = self.buf.view();
            match self.codec.parse_bytes(&view, self.projection.as_ref())? {
                ParseOutcome::Complete { message, consumed } => {
                    self.buf.consume(consumed);
                    if !self.push_out(Value::Msg(message), ctx) {
                        return Ok(false);
                    }
                    if !ctx.can_continue() {
                        return Ok(false);
                    }
                }
                ParseOutcome::Incomplete { .. } => return Ok(true),
            }
        }
    }
}

impl Drop for InputTask {
    fn drop(&mut self) {
        // Dropping a task (graph teardown) must release the connection so
        // that the peer observes EOF instead of a hung socket.
        self.endpoint.close();
        self.output.close();
    }
}

impl Task for InputTask {
    fn label(&self) -> &str {
        &self.label
    }

    fn run(&mut self, ctx: &mut TaskContext) -> TaskStatus {
        // First retry any message that did not fit the channel last time.
        if let Some(value) = self.pending.take() {
            if !self.push_out(value, ctx) {
                return TaskStatus::Runnable;
            }
        }
        // Parse whatever is already buffered.
        match self.drain_buffer(ctx) {
            Ok(true) => {}
            Ok(false) => return TaskStatus::Runnable,
            Err(_) => {
                // A malformed stream terminates the connection, as the paper's
                // default behaviour for unparseable input. The blast radius
                // is this one connection: siblings on the same service keep
                // running, and the close is tallied separately so the sim
                // battery can bound it.
                self.endpoint.close_malformed();
                self.output.close();
                return TaskStatus::Finished;
            }
        }
        // Then read more bytes from the connection, straight into the
        // shared buffer — no intermediate stack chunk, no append copy.
        loop {
            match self.endpoint.read_into(&mut self.buf) {
                Ok(_) => {
                    match self.drain_buffer(ctx) {
                        Ok(true) => {}
                        Ok(false) => return TaskStatus::Runnable,
                        Err(_) => {
                            self.endpoint.close_malformed();
                            self.output.close();
                            return TaskStatus::Finished;
                        }
                    }
                    if !ctx.can_continue() {
                        return TaskStatus::Runnable;
                    }
                }
                Err(NetError::WouldBlock) => return TaskStatus::Idle,
                Err(_) => {
                    // Peer closed (or the connection failed): drain what we
                    // have and finish. The consumer is woken so that it
                    // observes the end of the stream promptly.
                    self.eof = true;
                    let _ = self.drain_buffer(ctx);
                    self.output.close();
                    ctx.wake(self.output.consumer());
                    return TaskStatus::Finished;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compute task
// ---------------------------------------------------------------------------

/// Emission interface handed to [`ComputeLogic::on_value`].
pub struct Outputs<'a> {
    producers: &'a [ChannelProducer],
    overflow: &'a mut VecDeque<(usize, Value)>,
    wakes: Vec<crate::task::TaskId>,
}

impl<'a> Outputs<'a> {
    /// Number of output channels available.
    pub fn len(&self) -> usize {
        self.producers.len()
    }

    /// Returns `true` if the task has no output channels.
    pub fn is_empty(&self) -> bool {
        self.producers.is_empty()
    }

    /// Emits `value` on output channel `output`.
    ///
    /// If the channel is full the value is buffered and delivered on a later
    /// dispatch, so logic never loses data.
    pub fn emit(&mut self, output: usize, value: Value) {
        debug_assert!(output < self.producers.len(), "output index out of range");
        let producer = &self.producers[output];
        let consumer = producer.consumer();
        match producer.push(value) {
            Ok(()) => {
                if !self.wakes.contains(&consumer) {
                    self.wakes.push(consumer);
                }
            }
            Err(back) => self.overflow.push_back((output, back)),
        }
    }
}

/// User-supplied (or compiler-generated) processing logic for a compute task.
pub trait ComputeLogic: Send {
    /// Called for every value arriving on input channel `input`.
    fn on_value(
        &mut self,
        input: usize,
        value: Value,
        out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError>;

    /// Called once when input channel `input` will deliver no further values.
    fn on_input_finished(
        &mut self,
        _input: usize,
        _out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError> {
        Ok(())
    }
}

/// A task running [`ComputeLogic`] over its input channels.
pub struct ComputeTask {
    label: String,
    inputs: Vec<ChannelConsumer>,
    outputs: Vec<ChannelProducer>,
    logic: Box<dyn ComputeLogic>,
    overflow: VecDeque<(usize, Value)>,
    input_finished: Vec<bool>,
}

impl ComputeTask {
    /// Creates a compute task.
    pub fn new(
        label: impl Into<String>,
        inputs: Vec<ChannelConsumer>,
        outputs: Vec<ChannelProducer>,
        logic: Box<dyn ComputeLogic>,
    ) -> Self {
        let n = inputs.len();
        ComputeTask {
            label: label.into(),
            inputs,
            outputs,
            logic,
            overflow: VecDeque::new(),
            input_finished: vec![false; n],
        }
    }

    fn flush_overflow(&mut self, ctx: &mut TaskContext) -> bool {
        while let Some((output, value)) = self.overflow.pop_front() {
            match self.outputs[output].push(value) {
                Ok(()) => ctx.wake(self.outputs[output].consumer()),
                Err(back) => {
                    self.overflow.push_front((output, back));
                    return false;
                }
            }
        }
        true
    }
}

impl Task for ComputeTask {
    fn label(&self) -> &str {
        &self.label
    }

    fn run(&mut self, ctx: &mut TaskContext) -> TaskStatus {
        if !self.flush_overflow(ctx) {
            return TaskStatus::Runnable;
        }
        let mut made_progress = true;
        while made_progress {
            made_progress = false;
            for input in 0..self.inputs.len() {
                let value = self.inputs[input].pop();
                match value {
                    Some(value) => {
                        made_progress = true;
                        RuntimeMetrics::add(&ctx.metrics().values_processed, 1);
                        let mut outputs = Outputs {
                            producers: &self.outputs,
                            overflow: &mut self.overflow,
                            wakes: Vec::new(),
                        };
                        let result = self.logic.on_value(input, value, &mut outputs);
                        let wakes = std::mem::take(&mut outputs.wakes);
                        for w in wakes {
                            ctx.wake(w);
                        }
                        if result.is_err() {
                            // Logic errors terminate the graph instance.
                            for out in &self.outputs {
                                out.close();
                            }
                            return TaskStatus::Finished;
                        }
                        if !ctx.can_continue() {
                            return TaskStatus::Runnable;
                        }
                    }
                    None => {
                        if self.inputs[input].is_finished() && !self.input_finished[input] {
                            self.input_finished[input] = true;
                            let mut outputs = Outputs {
                                producers: &self.outputs,
                                overflow: &mut self.overflow,
                                wakes: Vec::new(),
                            };
                            let result = self.logic.on_input_finished(input, &mut outputs);
                            let wakes = std::mem::take(&mut outputs.wakes);
                            for w in wakes {
                                ctx.wake(w);
                            }
                            if result.is_err() {
                                for out in &self.outputs {
                                    out.close();
                                }
                                return TaskStatus::Finished;
                            }
                            made_progress = true;
                        }
                    }
                }
            }
        }
        if self.input_finished.iter().all(|f| *f) && self.overflow.is_empty() {
            for out in &self.outputs {
                out.close();
                ctx.wake(out.consumer());
            }
            return TaskStatus::Finished;
        }
        if !self.overflow.is_empty() {
            TaskStatus::Runnable
        } else {
            TaskStatus::Idle
        }
    }
}

// ---------------------------------------------------------------------------
// Output task
// ---------------------------------------------------------------------------

/// How an [`OutputTask`] behaves when its connection cannot take more
/// bytes ([`NetError::WouldBlock`] with a full peer buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputMode {
    /// Park on writable readiness: the task returns [`TaskStatus::Idle`]
    /// and the dispatcher's writable-interest watch re-schedules it when
    /// the peer drains (or closes). The default.
    #[default]
    Wakeup,
    /// Return [`TaskStatus::Runnable`] and retry immediately — the
    /// historical busy loop, kept as the ablation baseline for the
    /// writable-interest path (`flick_bench`'s output-mode ablation).
    BusyRetry,
}

impl OutputMode {
    /// Short label used in benchmark output ("wakeup", "busy").
    pub fn label(self) -> &'static str {
        match self {
            OutputMode::Wakeup => "wakeup",
            OutputMode::BusyRetry => "busy",
        }
    }

    /// Both modes, busy first (the ablation's baseline ordering).
    pub fn all() -> [OutputMode; 2] {
        [OutputMode::BusyRetry, OutputMode::Wakeup]
    }
}

/// How compiled service logic executes inside compute tasks.
///
/// The runtime only carries the switch; the compiler crate interprets it
/// when it builds the compute logic for a graph. Both modes run the same
/// lowered program — the tree-walking interpreter stays available as the
/// ablation baseline for the bytecode VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Walk the IR tree per message — the original execution path, kept
    /// as the ablation baseline (`flick_bench`'s vm-dispatch ablation).
    Interp,
    /// Run the program lowered to direct-threaded bytecode. The default.
    #[default]
    Vm,
}

impl ExecMode {
    /// Short label used in benchmark output ("interp", "vm").
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Interp => "interp",
            ExecMode::Vm => "vm",
        }
    }

    /// Both modes, interp first (the ablation's baseline ordering).
    pub fn all() -> [ExecMode; 2] {
        [ExecMode::Interp, ExecMode::Vm]
    }
}

/// A task that serialises values and writes them to one connection.
///
/// A blocked write never spins: under the default [`OutputMode::Wakeup`]
/// the task parks until the dispatcher delivers writable readiness for its
/// endpoint. The only immediate retries left are rate-limiter stalls —
/// time-based, so no peer transition will ever announce them — and those
/// are counted in [`RuntimeMetrics::output_busy_retries`].
pub struct OutputTask {
    label: String,
    endpoint: Endpoint,
    codec: Arc<dyn WireCodec>,
    input: ChannelConsumer,
    outbuf: Vec<u8>,
    /// A refcounted trailing segment (message body or raw pass-through
    /// bytes) plus the offset already written. Split off by
    /// [`WireCodec::serialize_parts`] so `outbuf` (headers) and the body
    /// leave through one vectored write instead of being concatenated —
    /// the shared allocation goes to the kernel where it sits.
    body: Option<(Bytes, usize)>,
    close_on_finish: bool,
    mode: OutputMode,
}

impl OutputTask {
    /// Creates an output task writing to `endpoint`.
    pub fn new(
        label: impl Into<String>,
        endpoint: Endpoint,
        codec: Arc<dyn WireCodec>,
        input: ChannelConsumer,
    ) -> Self {
        OutputTask {
            label: label.into(),
            endpoint,
            codec,
            input,
            outbuf: Vec::with_capacity(READ_CHUNK),
            body: None,
            close_on_finish: true,
            mode: OutputMode::default(),
        }
    }

    /// Controls whether the connection is closed when the input channel
    /// finishes (default `true`).
    pub fn set_close_on_finish(&mut self, close: bool) {
        self.close_on_finish = close;
    }

    /// Sets the blocked-write behaviour (default [`OutputMode::Wakeup`]).
    pub fn set_mode(&mut self, mode: OutputMode) {
        self.mode = mode;
    }

    /// The connection this task writes to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn flush(&mut self) -> Result<bool, RuntimeError> {
        while !self.outbuf.is_empty() || self.body.is_some() {
            // Headers and body segment leave together through the vectored
            // path when both are pending — one `writev` on the OS
            // transport, no staging concatenation.
            let wrote = match &self.body {
                Some((bytes, off)) if !self.outbuf.is_empty() => self
                    .endpoint
                    .write_vectored(&[&self.outbuf, &bytes[*off..]]),
                Some((bytes, off)) => self.endpoint.write(&bytes[*off..]),
                None => self.endpoint.write(&self.outbuf),
            };
            match wrote {
                Ok(mut n) => {
                    let head = n.min(self.outbuf.len());
                    self.outbuf.drain(..head);
                    n -= head;
                    if let Some((bytes, off)) = &mut self.body {
                        *off += n;
                        if *off >= bytes.len() {
                            self.body = None;
                        }
                    }
                }
                Err(NetError::WouldBlock) => return Ok(false),
                Err(e) => return Err(e.into()),
            }
        }
        // Fully drained: a one-off large response must not pin its
        // capacity forever.
        if self.outbuf.capacity() > OUTBUF_RETAIN {
            self.outbuf.shrink_to(OUTBUF_RETAIN);
        }
        Ok(true)
    }

    /// Status for a blocked (`WouldBlock`) flush: park on writable
    /// readiness unless busy retrying is the configured mode or the block
    /// is a rate limiter (buffer space exists, so no peer transition will
    /// ever wake us — the clock has to).
    fn blocked(&self, ctx: &mut TaskContext) -> TaskStatus {
        if self.mode == OutputMode::BusyRetry || self.endpoint.writable() {
            RuntimeMetrics::add(&ctx.metrics().output_busy_retries, 1);
            TaskStatus::Runnable
        } else {
            TaskStatus::Idle
        }
    }
}

impl Drop for OutputTask {
    fn drop(&mut self) {
        if self.close_on_finish {
            self.endpoint.close();
        }
    }
}

impl Task for OutputTask {
    fn label(&self) -> &str {
        &self.label
    }

    fn run(&mut self, ctx: &mut TaskContext) -> TaskStatus {
        loop {
            match self.flush() {
                Ok(true) => {}
                Ok(false) => return self.blocked(ctx),
                Err(_) => {
                    // The peer is gone; drop remaining output.
                    self.endpoint.close();
                    return TaskStatus::Finished;
                }
            }
            match self.input.pop() {
                Some(value) => {
                    // `flush` ran to completion above, so the outbuf is
                    // empty and no body segment is pending — the split
                    // below can never reorder bytes behind earlier output.
                    let result = match &value {
                        Value::Msg(msg) => {
                            match self.codec.serialize_parts(msg, &mut self.outbuf) {
                                Ok(Some(tail)) if !tail.is_empty() => {
                                    self.body = Some((tail, 0));
                                    Ok(())
                                }
                                Ok(_) => Ok(()),
                                Err(e) => Err(RuntimeError::from(e)),
                            }
                        }
                        Value::Bytes(bytes) => {
                            self.outbuf.extend_from_slice(bytes);
                            Ok(())
                        }
                        Value::Str(s) => {
                            self.outbuf.extend_from_slice(s.as_bytes());
                            Ok(())
                        }
                        other => Err(RuntimeError::Logic(format!(
                            "output task cannot serialise value {other}"
                        ))),
                    };
                    if result.is_err() {
                        self.endpoint.close();
                        return TaskStatus::Finished;
                    }
                    RuntimeMetrics::add(&ctx.metrics().messages_out, 1);
                    if !ctx.can_continue() {
                        return TaskStatus::Runnable;
                    }
                }
                None => {
                    if self.input.is_finished() && self.outbuf.is_empty() && self.body.is_none() {
                        if self.close_on_finish {
                            self.endpoint.close();
                        }
                        return TaskStatus::Finished;
                    }
                    return TaskStatus::Idle;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Synthetic tasks
// ---------------------------------------------------------------------------

/// A task that emits a fixed number of synthetic values then finishes.
pub struct SourceTask {
    label: String,
    remaining: usize,
    item_size: usize,
    output: ChannelProducer,
}

impl SourceTask {
    /// Creates a source emitting `count` byte values of `item_size` bytes.
    pub fn new(
        label: impl Into<String>,
        count: usize,
        item_size: usize,
        output: ChannelProducer,
    ) -> Self {
        SourceTask {
            label: label.into(),
            remaining: count,
            item_size,
            output,
        }
    }
}

impl Task for SourceTask {
    fn label(&self) -> &str {
        &self.label
    }

    fn run(&mut self, ctx: &mut TaskContext) -> TaskStatus {
        while self.remaining > 0 {
            let value = Value::Bytes(Bytes::from(vec![1u8; self.item_size]));
            match self.output.push(value) {
                Ok(()) => {
                    ctx.wake(self.output.consumer());
                    self.remaining -= 1;
                }
                Err(_) => return TaskStatus::Runnable,
            }
            if !ctx.can_continue() {
                return if self.remaining == 0 {
                    self.finish()
                } else {
                    TaskStatus::Runnable
                };
            }
        }
        self.finish()
    }
}

impl SourceTask {
    fn finish(&mut self) -> TaskStatus {
        self.output.close();
        TaskStatus::Finished
    }
}

/// A self-contained task owning a finite list of data items, used by the
/// §6.4 resource-sharing micro-benchmark.
///
/// Each item is `item_size` bytes and processing an item computes a simple
/// addition over every byte, exactly as described in the paper. When the last
/// item has been processed the `on_complete` callback fires (the benchmark
/// uses it to record the task's completion time).
pub struct SyntheticWorkTask {
    label: String,
    remaining: usize,
    item_size: usize,
    accumulator: u64,
    on_complete: Option<Box<dyn FnOnce() + Send>>,
}

impl SyntheticWorkTask {
    /// Creates a synthetic task with `items` items of `item_size` bytes.
    pub fn new(
        label: impl Into<String>,
        items: usize,
        item_size: usize,
        on_complete: Option<Box<dyn FnOnce() + Send>>,
    ) -> Self {
        SyntheticWorkTask {
            label: label.into(),
            remaining: items,
            item_size,
            accumulator: 0,
            on_complete,
        }
    }

    /// The running checksum (prevents the work from being optimised away).
    pub fn accumulator(&self) -> u64 {
        self.accumulator
    }

    fn process_one_item(&mut self) {
        // A simple addition for each input byte (§6.4).
        let mut sum = self.accumulator;
        for i in 0..self.item_size {
            sum = sum.wrapping_add((i as u64) ^ 0x5a);
        }
        self.accumulator = sum;
        self.remaining -= 1;
    }
}

impl Task for SyntheticWorkTask {
    fn label(&self) -> &str {
        &self.label
    }

    fn run(&mut self, ctx: &mut TaskContext) -> TaskStatus {
        while self.remaining > 0 {
            self.process_one_item();
            RuntimeMetrics::add(&ctx.metrics().values_processed, 1);
            if self.remaining == 0 {
                break;
            }
            if !ctx.can_continue() {
                return TaskStatus::Runnable;
            }
        }
        if let Some(cb) = self.on_complete.take() {
            cb();
        }
        TaskStatus::Finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::TaskChannel;
    use crate::task::{SchedulingPolicy, TaskId};
    use flick_grammar::http::{self, HttpCodec};
    use flick_net::{SimNetwork, StackModel};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn ctx() -> TaskContext {
        TaskContext::new(
            SchedulingPolicy::NonCooperative,
            RuntimeMetrics::new_shared(),
        )
    }

    /// Logic that forwards every value to output 0, uppercasing strings.
    struct Passthrough;
    impl ComputeLogic for Passthrough {
        fn on_value(
            &mut self,
            _input: usize,
            value: Value,
            out: &mut Outputs<'_>,
        ) -> Result<(), RuntimeError> {
            out.emit(0, value);
            Ok(())
        }
    }

    #[test]
    fn input_task_parses_http_requests_from_connection() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(80).unwrap();
        let client = net.connect(80).unwrap();
        let server = listener.accept().unwrap();
        client
            .write(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n")
            .unwrap();

        let (tx, rx) = TaskChannel::bounded(16, TaskId(1));
        let mut task = InputTask::new("in", server, Arc::new(HttpCodec::new()), None, tx);
        let mut c = ctx();
        assert_eq!(task.run(&mut c), TaskStatus::Idle);
        assert_eq!(rx.len(), 2);
        let first = rx.pop().unwrap().into_msg().unwrap();
        assert_eq!(first.str_field("path"), Some("/a"));
        // The compute task consuming channel 1 must have been woken.
        assert!(c.take_wakes().contains(&TaskId(1)));
    }

    #[test]
    fn input_task_finishes_on_peer_close() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(81).unwrap();
        let client = net.connect(81).unwrap();
        let server = listener.accept().unwrap();
        client.write(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        client.close();

        let (tx, rx) = TaskChannel::bounded(16, TaskId(1));
        let mut task = InputTask::new("in", server, Arc::new(HttpCodec::new()), None, tx);
        assert_eq!(task.run(&mut ctx()), TaskStatus::Finished);
        assert_eq!(rx.len(), 1);
        assert!(rx.producers_closed());
    }

    #[test]
    fn input_task_handles_partial_then_complete_messages() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(82).unwrap();
        let client = net.connect(82).unwrap();
        let server = listener.accept().unwrap();

        let (tx, rx) = TaskChannel::bounded(16, TaskId(1));
        let mut task = InputTask::new("in", server, Arc::new(HttpCodec::new()), None, tx);
        client.write(b"GET /part HTTP/1.1\r\nHo").unwrap();
        assert_eq!(task.run(&mut ctx()), TaskStatus::Idle);
        assert_eq!(rx.len(), 0);
        client.write(b"st: h\r\n\r\n").unwrap();
        assert_eq!(task.run(&mut ctx()), TaskStatus::Idle);
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn compute_task_passthrough_and_finish() {
        let (in_tx, in_rx) = TaskChannel::bounded(16, TaskId(2));
        let (out_tx, out_rx) = TaskChannel::bounded(16, TaskId(3));
        let mut task =
            ComputeTask::new("compute", vec![in_rx], vec![out_tx], Box::new(Passthrough));
        in_tx.push(Value::Int(1)).unwrap();
        in_tx.push(Value::Int(2)).unwrap();
        assert_eq!(task.run(&mut ctx()), TaskStatus::Idle);
        assert_eq!(out_rx.len(), 2);
        in_tx.close();
        assert_eq!(task.run(&mut ctx()), TaskStatus::Finished);
        assert!(out_rx.producers_closed());
    }

    #[test]
    fn compute_task_overflow_is_retried() {
        let (in_tx, in_rx) = TaskChannel::bounded(16, TaskId(2));
        // Output capacity 1 forces overflow.
        let (out_tx, out_rx) = TaskChannel::bounded(1, TaskId(3));
        let mut task =
            ComputeTask::new("compute", vec![in_rx], vec![out_tx], Box::new(Passthrough));
        in_tx.push(Value::Int(1)).unwrap();
        in_tx.push(Value::Int(2)).unwrap();
        in_tx.push(Value::Int(3)).unwrap();
        let status = task.run(&mut ctx());
        assert_eq!(
            status,
            TaskStatus::Runnable,
            "overflowed values keep the task runnable"
        );
        assert_eq!(out_rx.pop(), Some(Value::Int(1)));
        // Draining the output lets the retry succeed.
        let status = task.run(&mut ctx());
        assert!(matches!(status, TaskStatus::Idle | TaskStatus::Runnable));
        assert_eq!(out_rx.pop(), Some(Value::Int(2)));
    }

    #[test]
    fn output_task_serialises_and_writes() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(83).unwrap();
        let client = net.connect(83).unwrap();
        let server = listener.accept().unwrap();

        let (tx, rx) = TaskChannel::bounded(16, TaskId(4));
        let mut task = OutputTask::new("out", server, Arc::new(HttpCodec::new()), rx);
        tx.push(Value::Msg(http::response(200, b"hello"))).unwrap();
        assert_eq!(task.run(&mut ctx()), TaskStatus::Idle);
        let mut buf = [0u8; 256];
        let n = client.read(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..n]);
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.ends_with("hello"));
        // Closing the channel finishes the task and closes the connection.
        tx.close();
        assert_eq!(task.run(&mut ctx()), TaskStatus::Finished);
        assert!(client.peer_closed());
    }

    #[test]
    fn output_task_writes_raw_bytes_and_strings() {
        let net = SimNetwork::new(StackModel::Free);
        let listener = net.listen(84).unwrap();
        let client = net.connect(84).unwrap();
        let server = listener.accept().unwrap();
        let (tx, rx) = TaskChannel::bounded(16, TaskId(4));
        let mut task = OutputTask::new("out", server, Arc::new(HttpCodec::new()), rx);
        tx.push(Value::Bytes(Bytes::from_static(b"raw-"))).unwrap();
        tx.push(Value::Str("text".into())).unwrap();
        task.run(&mut ctx());
        let mut buf = [0u8; 64];
        let n = client.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"raw-text");
    }

    #[test]
    fn source_task_emits_and_closes() {
        let (tx, rx) = TaskChannel::bounded(64, TaskId(5));
        let mut task = SourceTask::new("src", 10, 32, tx);
        assert_eq!(task.run(&mut ctx()), TaskStatus::Finished);
        assert_eq!(rx.len(), 10);
        assert!(rx.producers_closed());
        assert_eq!(rx.pop().unwrap().approx_size(), 32);
    }

    #[test]
    fn source_task_respects_full_channel() {
        let (tx, rx) = TaskChannel::bounded(4, TaskId(5));
        let mut task = SourceTask::new("src", 10, 8, tx);
        assert_eq!(task.run(&mut ctx()), TaskStatus::Runnable);
        assert_eq!(rx.len(), 4);
        while rx.pop().is_some() {}
        assert_eq!(task.run(&mut ctx()), TaskStatus::Runnable);
        while rx.pop().is_some() {}
        assert_eq!(task.run(&mut ctx()), TaskStatus::Finished);
    }

    #[test]
    fn synthetic_work_task_completes_and_calls_back() {
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let mut task = SyntheticWorkTask::new(
            "work",
            100,
            1024,
            Some(Box::new(move || done2.store(true, Ordering::SeqCst))),
        );
        assert_eq!(task.run(&mut ctx()), TaskStatus::Finished);
        assert!(done.load(Ordering::SeqCst));
        assert!(task.accumulator() > 0);
    }

    #[test]
    fn synthetic_work_task_round_robin_yields_per_item() {
        let mut task = SyntheticWorkTask::new("work", 3, 16, None);
        let metrics = RuntimeMetrics::new_shared();
        let mut c1 = TaskContext::new(SchedulingPolicy::RoundRobin, Arc::clone(&metrics));
        assert_eq!(task.run(&mut c1), TaskStatus::Runnable);
        let mut c2 = TaskContext::new(SchedulingPolicy::RoundRobin, Arc::clone(&metrics));
        assert_eq!(task.run(&mut c2), TaskStatus::Runnable);
        let mut c3 = TaskContext::new(SchedulingPolicy::RoundRobin, metrics);
        assert_eq!(task.run(&mut c3), TaskStatus::Finished);
    }
}
