//! Recursive-descent parser for the FLICK language.
//!
//! The parser consumes the layout-aware token stream produced by
//! [`crate::lexer::lex`] and builds the AST defined in [`crate::ast`]. It is
//! a conventional predictive parser; the only notable points are the
//! handling of channel signatures in process and function headers (where a
//! parameter is either `R/W name`, `[R/W] name` or `name: type`) and the
//! `foldt` aggregation expression which carries an indented body.

use crate::ast::*;
use crate::error::{LangError, Span, Stage};
use crate::token::{Token, TokenKind};

/// Parses a token stream into a [`Program`].
///
/// `source` is only used to improve diagnostics.
pub fn parse_tokens(tokens: &[Token], source: &str) -> Result<Program, LangError> {
    let mut parser = Parser {
        tokens,
        pos: 0,
        _source: source,
    };
    parser.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    _source: &'a str,
}

impl<'a> Parser<'a> {
    // ----- token stream helpers -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Span, LangError> {
        if self.peek() == &kind {
            let span = self.span();
            self.bump();
            Ok(span)
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), LangError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn err(&self, message: String) -> LangError {
        LangError::single(Stage::Parse, message, self.span())
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    // ----- top level -------------------------------------------------------------

    fn program(&mut self) -> Result<Program, LangError> {
        let mut program = Program::default();
        loop {
            self.skip_newlines();
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwType => program.types.push(self.type_decl()?),
                TokenKind::KwProc => program.processes.push(self.proc_decl()?),
                TokenKind::KwFun => program.functions.push(self.fun_decl()?),
                other => {
                    return Err(self.err(format!(
                        "expected `type`, `proc` or `fun` declaration, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(program)
    }

    fn type_decl(&mut self) -> Result<TypeDecl, LangError> {
        let span = self.expect(TokenKind::KwType)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::KwRecord)?;
        self.expect(TokenKind::Newline)?;
        self.expect(TokenKind::Indent)?;
        let mut fields = Vec::new();
        loop {
            self.skip_newlines();
            if self.eat(&TokenKind::Dedent) {
                break;
            }
            fields.push(self.field_decl()?);
        }
        if fields.is_empty() {
            return Err(self.err(format!("record type `{name}` has no fields")));
        }
        Ok(TypeDecl { name, fields, span })
    }

    fn field_decl(&mut self) -> Result<FieldDecl, LangError> {
        let span = self.span();
        let name = match self.peek().clone() {
            TokenKind::Underscore => {
                self.bump();
                None
            }
            TokenKind::Ident(n) => {
                self.bump();
                Some(n)
            }
            other => {
                return Err(self.err(format!(
                    "expected field name or `_`, found {}",
                    other.describe()
                )))
            }
        };
        self.expect(TokenKind::Colon)?;
        let ty = self.type_expr()?;
        let mut attrs = Vec::new();
        if self.eat(&TokenKind::LBrace) {
            loop {
                let (attr_name, attr_span) = self.expect_ident()?;
                self.expect(TokenKind::Eq)?;
                let value = self.expr()?;
                attrs.push(FieldAttr {
                    name: attr_name,
                    value,
                    span: attr_span,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBrace)?;
        }
        if !matches!(self.peek(), TokenKind::Dedent | TokenKind::Eof) {
            self.expect(TokenKind::Newline)?;
        }
        Ok(FieldDecl {
            name,
            ty,
            attrs,
            span,
        })
    }

    fn proc_decl(&mut self) -> Result<ProcDecl, LangError> {
        let span = self.expect(TokenKind::KwProc)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::LParen)?;
        let params = self.params()?;
        self.expect(TokenKind::RParen)?;
        // A trailing colon after the signature is accepted (Listing 3 style).
        self.eat(&TokenKind::Colon);
        let body = self.indented_block()?;
        Ok(ProcDecl {
            name,
            params,
            body,
            span,
        })
    }

    fn fun_decl(&mut self) -> Result<FunDecl, LangError> {
        let span = self.expect(TokenKind::KwFun)?;
        let (name, _) = self.expect_ident()?;
        // Both `fun f: (params) -> (ret)` and `fun f(params) -> (ret):` are accepted.
        self.eat(&TokenKind::Colon);
        self.expect(TokenKind::LParen)?;
        let params = self.params()?;
        self.expect(TokenKind::RParen)?;
        let mut ret = Vec::new();
        if self.eat(&TokenKind::ThinArrow) {
            if self.eat(&TokenKind::LParen) {
                if !self.eat(&TokenKind::RParen) {
                    loop {
                        ret.push(self.type_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
            } else {
                ret.push(self.type_expr()?);
            }
        }
        self.eat(&TokenKind::Colon);
        let body = self.indented_block()?;
        Ok(FunDecl {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn params(&mut self) -> Result<Vec<Param>, LangError> {
        let mut params = Vec::new();
        if matches!(self.peek(), TokenKind::RParen) {
            return Ok(params);
        }
        loop {
            params.push(self.param()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(params)
    }

    /// Parses a single parameter, which is either a data parameter
    /// `name: type` or a channel parameter `R/W name` / `[R/W] name`.
    fn param(&mut self) -> Result<Param, LangError> {
        let span = self.span();
        // `name :` introduces a data parameter.
        if let TokenKind::Ident(_) = self.peek() {
            if matches!(self.peek_ahead(1), TokenKind::Colon) {
                let (name, _) = self.expect_ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                return Ok(Param { name, ty, span });
            }
        }
        // Otherwise this is a channel parameter: parse the channel type then its name.
        let ty = self.channel_type()?;
        let (name, _) = self.expect_ident()?;
        Ok(Param { name, ty, span })
    }

    /// Parses a channel type `R/W` or `[R/W]`, where either side may be `-`.
    fn channel_type(&mut self) -> Result<TypeExpr, LangError> {
        if self.eat(&TokenKind::LBracket) {
            let inner = self.channel_type()?;
            self.expect(TokenKind::RBracket)?;
            return Ok(TypeExpr::ChannelArray(Box::new(inner)));
        }
        let read = self.channel_side()?;
        self.expect(TokenKind::Slash)?;
        let write = self.channel_side()?;
        if read.is_none() && write.is_none() {
            return Err(self.err("channel type `-/-` can neither be read nor written".to_string()));
        }
        Ok(TypeExpr::Channel {
            read: read.map(Box::new),
            write: write.map(Box::new),
        })
    }

    fn channel_side(&mut self) -> Result<Option<TypeExpr>, LangError> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                Ok(None)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Some(TypeExpr::Named(name)))
            }
            other => Err(self.err(format!(
                "expected a type name or `-` on a channel side, found {}",
                other.describe()
            ))),
        }
    }

    fn type_expr(&mut self) -> Result<TypeExpr, LangError> {
        match self.peek().clone() {
            TokenKind::KwRef => {
                self.bump();
                Ok(TypeExpr::Ref(Box::new(self.type_expr()?)))
            }
            TokenKind::KwDict => {
                self.bump();
                self.expect(TokenKind::Lt)?;
                let key = self.type_expr()?;
                self.expect(TokenKind::Star)?;
                let value = self.type_expr()?;
                self.expect(TokenKind::Gt)?;
                Ok(TypeExpr::Dict(Box::new(key), Box::new(value)))
            }
            TokenKind::LBracket => {
                self.bump();
                // Either a list type `[T]` or a channel array `[R/W]`.
                let first = self.type_expr()?;
                if self.eat(&TokenKind::Slash) {
                    let write = self.channel_side()?;
                    self.expect(TokenKind::RBracket)?;
                    Ok(TypeExpr::ChannelArray(Box::new(TypeExpr::Channel {
                        read: Some(Box::new(first)),
                        write: write.map(Box::new),
                    })))
                } else {
                    self.expect(TokenKind::RBracket)?;
                    Ok(TypeExpr::List(Box::new(first)))
                }
            }
            TokenKind::LParen => {
                self.bump();
                self.expect(TokenKind::RParen)?;
                Ok(TypeExpr::Unit)
            }
            TokenKind::Minus => {
                // `-/T` channel written inside a data-parameter position.
                self.bump();
                self.expect(TokenKind::Slash)?;
                let write = self.channel_side()?;
                Ok(TypeExpr::Channel {
                    read: None,
                    write: write.map(Box::new),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                // `T/U` channel type in a parameter position.
                if matches!(self.peek(), TokenKind::Slash) {
                    self.bump();
                    let write = self.channel_side()?;
                    Ok(TypeExpr::Channel {
                        read: Some(Box::new(TypeExpr::Named(name))),
                        write: write.map(Box::new),
                    })
                } else {
                    Ok(TypeExpr::Named(name))
                }
            }
            other => Err(self.err(format!("expected a type, found {}", other.describe()))),
        }
    }

    // ----- statements ------------------------------------------------------------

    fn indented_block(&mut self) -> Result<Block, LangError> {
        self.expect(TokenKind::Newline)?;
        self.expect(TokenKind::Indent)?;
        self.block_until_dedent()
    }

    fn block_until_dedent(&mut self) -> Result<Block, LangError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            if self.eat(&TokenKind::Dedent) || matches!(self.peek(), TokenKind::Eof) {
                break;
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        // An optional leading `|` marks pipeline lines in process bodies.
        self.eat(&TokenKind::Pipe);
        let span = self.span();
        match self.peek().clone() {
            TokenKind::KwGlobal => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                self.end_of_stmt()?;
                Ok(Stmt::Global { name, init, span })
            }
            TokenKind::KwLet => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(TokenKind::Eq)?;
                // A `foldt` initialiser carries its own indented body and
                // therefore its own end-of-statement handling.
                if matches!(self.peek(), TokenKind::KwFoldt) {
                    let value = self.foldt_expr()?;
                    return Ok(Stmt::Let { name, value, span });
                }
                let value = self.expr()?;
                self.end_of_stmt()?;
                Ok(Stmt::Let { name, value, span })
            }
            TokenKind::KwIf => {
                self.bump();
                let cond = self.expr()?;
                self.expect(TokenKind::Colon)?;
                let then = self.indented_block()?;
                let els = if self.peek_else() {
                    self.skip_newlines();
                    self.expect(TokenKind::KwElse)?;
                    self.expect(TokenKind::Colon)?;
                    Some(self.indented_block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    els,
                    span,
                })
            }
            TokenKind::KwFor => {
                self.bump();
                let (var, _) = self.expect_ident()?;
                self.expect(TokenKind::KwIn)?;
                let iter = self.expr()?;
                self.expect(TokenKind::Colon)?;
                let body = self.indented_block()?;
                Ok(Stmt::For {
                    var,
                    iter,
                    body,
                    span,
                })
            }
            _ => {
                let first = self.expr()?;
                match self.peek() {
                    TokenKind::Arrow => {
                        let mut stages = vec![first];
                        while self.eat(&TokenKind::Arrow) {
                            stages.push(self.expr()?);
                        }
                        self.end_of_stmt()?;
                        Ok(Stmt::Pipeline { stages, span })
                    }
                    TokenKind::Assign => {
                        self.bump();
                        let value = self.expr()?;
                        self.end_of_stmt()?;
                        Ok(Stmt::Assign {
                            target: first,
                            value,
                            span,
                        })
                    }
                    _ => {
                        self.end_of_stmt()?;
                        Ok(Stmt::Expr { expr: first, span })
                    }
                }
            }
        }
    }

    /// Returns true if (after skipping newlines) the next token is `else`.
    fn peek_else(&self) -> bool {
        let mut idx = self.pos;
        while idx < self.tokens.len() && matches!(self.tokens[idx].kind, TokenKind::Newline) {
            idx += 1;
        }
        idx < self.tokens.len() && matches!(self.tokens[idx].kind, TokenKind::KwElse)
    }

    fn end_of_stmt(&mut self) -> Result<(), LangError> {
        match self.peek() {
            TokenKind::Newline => {
                self.bump();
                Ok(())
            }
            TokenKind::Dedent | TokenKind::Eof => Ok(()),
            other => Err(self.err(format!(
                "expected end of statement, found {}",
                other.describe()
            ))),
        }
    }

    // ----- expressions -----------------------------------------------------------

    fn foldt_expr(&mut self) -> Result<Expr, LangError> {
        let span = self.expect(TokenKind::KwFoldt)?;
        self.expect(TokenKind::KwOn)?;
        let channels = self.expr()?;
        self.expect(TokenKind::KwOrdering)?;
        let (elem_name, _) = self.expect_ident()?;
        let (b1, _) = self.expect_ident()?;
        self.expect(TokenKind::Comma)?;
        let (b2, _) = self.expect_ident()?;
        self.expect(TokenKind::KwBy)?;
        let order_key = self.expr()?;
        self.expect(TokenKind::KwAs)?;
        let (key_name, _) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        let body = self.indented_block()?;
        Ok(Expr::new(
            ExprKind::Foldt {
                channels: Box::new(channels),
                binders: (b1, b2),
                elem_name,
                order_key: Box::new(order_key),
                key_name,
                body,
            },
            span,
        ))
    }

    /// Entry point of the operator-precedence expression parser.
    pub(crate) fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::KwOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&TokenKind::KwAnd) {
            let rhs = self.not_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, LangError> {
        if matches!(self.peek(), TokenKind::KwNot) {
            let span = self.span();
            self.bump();
            let operand = self.not_expr()?;
            return Ok(Expr::new(
                ExprKind::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, LangError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Neq => Some(BinOp::Neq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            let span = lhs.span.merge(rhs.span);
            return Ok(Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            ));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::KwMod => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if matches!(self.peek(), TokenKind::Minus) {
            let span = self.span();
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::new(
                ExprKind::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = expr.span.merge(fspan);
                    expr = Expr::new(ExprKind::Field(Box::new(expr), field), span);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    let end = self.expect(TokenKind::RBracket)?;
                    let span = expr.span.merge(end);
                    expr = Expr::new(ExprKind::Index(Box::new(expr), Box::new(index)), span);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(v), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::KwNone => {
                self.bump();
                Ok(Expr::new(ExprKind::None, span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::KwFold | TokenKind::KwMap | TokenKind::KwFilter => {
                // fold/map/filter are keywords but syntactically behave like calls.
                let name = match self.peek() {
                    TokenKind::KwFold => "fold",
                    TokenKind::KwMap => "map",
                    _ => "filter",
                }
                .to_string();
                self.bump();
                self.expect(TokenKind::LParen)?;
                let args = self.call_args()?;
                Ok(Expr::new(ExprKind::Call { name, args }, span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    Ok(Expr::new(ExprKind::Call { name, args }, span))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        parse_tokens(&lex(src).unwrap(), src).unwrap()
    }

    fn parse_err(src: &str) -> LangError {
        match parse_tokens(&lex(src).unwrap(), src) {
            Ok(_) => panic!("expected parse error"),
            Err(e) => e,
        }
    }

    #[test]
    fn parses_memcached_proxy_listing() {
        let src = r#"
type cmd: record
  key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
  | backends => client
  | client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;
        let p = parse(src);
        assert_eq!(p.types.len(), 1);
        assert_eq!(p.processes.len(), 1);
        assert_eq!(p.functions.len(), 1);
        let proc_ = &p.processes[0];
        assert_eq!(proc_.params.len(), 2);
        assert!(matches!(proc_.params[1].ty, TypeExpr::ChannelArray(_)));
        assert_eq!(proc_.body.stmts.len(), 2);
    }

    #[test]
    fn parses_cache_router_with_annotations_and_if() {
        let src = r#"
type cmd: record
  opcode : string {size=1}
  keylen : integer {signed=false, size=2}
  _ : string {size=3}
  key : string {size=keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
  global cache := empty_dict
  backends => update_cache(cache) => client
  client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*string>, resp: cmd) -> (cmd)
  if resp.opcode = 0x0c:
    cache[resp.key] := resp
  resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*string>, req: cmd) -> ()
  if cache[req.key] = None or req.opcode <> 0x0c:
    let target = hash(req.key) mod len(backends)
    req => backends[target]
  else:
    cache[req.key] => client
"#;
        let p = parse(src);
        assert_eq!(p.types[0].fields.len(), 4);
        assert!(p.types[0].fields[2].name.is_none());
        let update = p.function("update_cache").unwrap();
        assert!(matches!(update.body.stmts[0], Stmt::If { .. }));
        let test = p.function("test_cache").unwrap();
        match &test.body.stmts[0] {
            Stmt::If { els, .. } => assert!(els.is_some()),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_hadoop_foldt_listing() {
        let src = r#"
type kv: record
  key : string
  value : string

proc hadoop: ([kv/-] mappers, -/kv reducer):
  if all_ready(mappers):
    let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
      let v = combine(e1.value, e2.value)
      kv(e_key, v)
    result => reducer

fun combine: (v1: string, v2: string) -> (string)
  v1 + v2
"#;
        let p = parse(src);
        let proc_ = &p.processes[0];
        match &proc_.body.stmts[0] {
            Stmt::If { then, .. } => {
                assert_eq!(then.stmts.len(), 2);
                match &then.stmts[0] {
                    Stmt::Let { value, .. } => {
                        assert!(matches!(value.kind, ExprKind::Foldt { .. }));
                    }
                    other => panic!("expected let, got {other:?}"),
                }
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_collects_all_stages() {
        let src =
            "proc p: (c/c a, c/c b)\n  a => f(x) => g(y) => b\n\ntype c: record\n  k : string\n";
        let p = parse(src);
        match &p.processes[0].body.stmts[0] {
            Stmt::Pipeline { stages, .. } => assert_eq!(stages.len(), 4),
            other => panic!("expected pipeline, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_mod_binds_tighter_than_comparison() {
        let src = "fun f: (x: integer) -> (bool)\n  x mod 2 = 0\n";
        let p = parse(src);
        match &p.functions[0].body.stmts[0] {
            Stmt::Expr { expr, .. } => match &expr.kind {
                ExprKind::Binary {
                    op: BinOp::Eq, lhs, ..
                } => {
                    assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Mod, .. }));
                }
                other => panic!("expected comparison at top, got {other:?}"),
            },
            other => panic!("expected expression statement, got {other:?}"),
        }
    }

    #[test]
    fn for_loop_parses() {
        let src = "fun f: (xs: [string]) -> ()\n  for x in xs:\n    emit(x)\n";
        let p = parse(src);
        assert!(matches!(p.functions[0].body.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn error_on_unknown_top_level() {
        let e = parse_err("banana\n");
        assert!(e
            .first_message()
            .contains("expected `type`, `proc` or `fun`"));
    }

    #[test]
    fn error_on_empty_record() {
        let src = "type t: record\n  x : string\n";
        // Sanity: a record with a field parses; then check the empty case fails.
        parse(src);
        let bad = "type t: record\nproc p: (t/t c)\n  c => c\n";
        assert!(parse_tokens(&lex(bad).unwrap(), bad).is_err());
    }

    #[test]
    fn multi_line_signature_inside_parens() {
        let src = "proc p: (cmd/cmd client,\n         [cmd/cmd] backends)\n  backends => client\n\ntype cmd: record\n  k : string\n";
        let p = parse(src);
        assert_eq!(p.processes[0].params.len(), 2);
    }

    #[test]
    fn unit_return_and_single_type_return() {
        let src = "fun a: (x: integer) -> ()\n  x\n\nfun b: (x: integer) -> integer\n  x\n";
        let p = parse(src);
        assert!(p.function("a").unwrap().ret.is_empty());
        assert_eq!(p.function("b").unwrap().ret.len(), 1);
    }
}
