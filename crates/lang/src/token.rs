//! Token definitions for the FLICK lexer.

use crate::error::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Layout tokens produced by the indentation-aware lexer.
    /// End of a logical line.
    Newline,
    /// Increase in indentation depth (opens a block).
    Indent,
    /// Decrease in indentation depth (closes a block).
    Dedent,
    /// End of the token stream.
    Eof,

    // Literals and identifiers.
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// A string literal with escapes resolved.
    Str(String),

    // Keywords.
    /// `type`
    KwType,
    /// `record`
    KwRecord,
    /// `proc`
    KwProc,
    /// `fun`
    KwFun,
    /// `global`
    KwGlobal,
    /// `let`
    KwLet,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `for`
    KwFor,
    /// `in`
    KwIn,
    /// `ref`
    KwRef,
    /// `dict`
    KwDict,
    /// `mod`
    KwMod,
    /// `and`
    KwAnd,
    /// `or`
    KwOr,
    /// `not`
    KwNot,
    /// `None`
    KwNone,
    /// `True`
    KwTrue,
    /// `False`
    KwFalse,
    /// `foldt`
    KwFoldt,
    /// `fold`
    KwFold,
    /// `map`
    KwMap,
    /// `filter`
    KwFilter,
    /// `on`
    KwOn,
    /// `ordering`
    KwOrdering,
    /// `by`
    KwBy,
    /// `as`
    KwAs,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `_` used on its own (anonymous field).
    Underscore,
    /// `=>` channel send / pipeline arrow.
    Arrow,
    /// `->` function return arrow.
    ThinArrow,
    /// `:=` mutable assignment.
    Assign,
    /// `=` equality comparison (and attribute assignment in annotations).
    Eq,
    /// `<>` inequality comparison.
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `|` optional pipeline prefix used in process bodies.
    Pipe,
}

impl TokenKind {
    /// Maps an identifier to its keyword token, if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "type" => TokenKind::KwType,
            "record" => TokenKind::KwRecord,
            "proc" => TokenKind::KwProc,
            "fun" => TokenKind::KwFun,
            "global" => TokenKind::KwGlobal,
            "let" => TokenKind::KwLet,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "for" => TokenKind::KwFor,
            "in" => TokenKind::KwIn,
            "ref" => TokenKind::KwRef,
            "dict" => TokenKind::KwDict,
            "mod" => TokenKind::KwMod,
            "and" => TokenKind::KwAnd,
            "or" => TokenKind::KwOr,
            "not" => TokenKind::KwNot,
            "None" => TokenKind::KwNone,
            "True" | "true" => TokenKind::KwTrue,
            "False" | "false" => TokenKind::KwFalse,
            "foldt" => TokenKind::KwFoldt,
            "fold" => TokenKind::KwFold,
            "map" => TokenKind::KwMap,
            "filter" => TokenKind::KwFilter,
            "on" => TokenKind::KwOn,
            "ordering" => TokenKind::KwOrdering,
            "by" => TokenKind::KwBy,
            "as" => TokenKind::KwAs,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Newline => "end of line".to_string(),
            TokenKind::Indent => "indented block".to_string(),
            TokenKind::Dedent => "end of block".to_string(),
            TokenKind::Eof => "end of file".to_string(),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source text of punctuation/keyword tokens.
    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::KwType => "type",
            TokenKind::KwRecord => "record",
            TokenKind::KwProc => "proc",
            TokenKind::KwFun => "fun",
            TokenKind::KwGlobal => "global",
            TokenKind::KwLet => "let",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwFor => "for",
            TokenKind::KwIn => "in",
            TokenKind::KwRef => "ref",
            TokenKind::KwDict => "dict",
            TokenKind::KwMod => "mod",
            TokenKind::KwAnd => "and",
            TokenKind::KwOr => "or",
            TokenKind::KwNot => "not",
            TokenKind::KwNone => "None",
            TokenKind::KwTrue => "True",
            TokenKind::KwFalse => "False",
            TokenKind::KwFoldt => "foldt",
            TokenKind::KwFold => "fold",
            TokenKind::KwMap => "map",
            TokenKind::KwFilter => "filter",
            TokenKind::KwOn => "on",
            TokenKind::KwOrdering => "ordering",
            TokenKind::KwBy => "by",
            TokenKind::KwAs => "as",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::Underscore => "_",
            TokenKind::Arrow => "=>",
            TokenKind::ThinArrow => "->",
            TokenKind::Assign => ":=",
            TokenKind::Eq => "=",
            TokenKind::Neq => "<>",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Pipe => "|",
            _ => "",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload, for literals).
    pub kind: TokenKind,
    /// The source location of the token.
    pub span: Span,
}

impl Token {
    /// Creates a new token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("proc"), Some(TokenKind::KwProc));
        assert_eq!(TokenKind::keyword("foldt"), Some(TokenKind::KwFoldt));
        assert_eq!(TokenKind::keyword("backend"), None);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(TokenKind::Arrow.describe(), "`=>`");
        assert_eq!(
            TokenKind::Ident("cache".into()).describe(),
            "identifier `cache`"
        );
    }
}
