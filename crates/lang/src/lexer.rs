//! Indentation-aware lexer for the FLICK language.
//!
//! FLICK uses Python-style layout: blocks are introduced by a trailing `:`
//! and delimited by indentation. The lexer therefore emits synthetic
//! [`TokenKind::Indent`], [`TokenKind::Dedent`] and [`TokenKind::Newline`]
//! tokens in addition to ordinary tokens. Lines are joined implicitly while
//! inside unbalanced parentheses, brackets or braces, which is how process
//! signatures are allowed to span multiple lines in the paper's listings.

use crate::error::{LangError, Span, Stage};
use crate::token::{Token, TokenKind};

/// Tokenises FLICK source text.
///
/// Returns the token stream including layout tokens, terminated by a single
/// [`TokenKind::Eof`].
///
/// # Examples
///
/// ```
/// use flick_lang::lexer::lex;
/// use flick_lang::token::TokenKind;
///
/// let tokens = lex("let x = 1\n").unwrap();
/// assert!(matches!(tokens[0].kind, TokenKind::KwLet));
/// assert!(matches!(tokens.last().unwrap().kind, TokenKind::Eof));
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    indent_stack: Vec<usize>,
    paren_depth: usize,
    at_line_start: bool,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            indent_stack: vec![0],
            paren_depth: 0,
            at_line_start: true,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        while self.pos < self.bytes.len() {
            if self.at_line_start && self.paren_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.bytes.len() {
                    break;
                }
            }
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.emit_newline();
                    self.advance_newline();
                }
                b'\r' => {
                    // Treat CRLF as a single newline.
                    if self.peek_at(self.pos + 1) == Some(b'\n') {
                        self.pos += 1;
                        self.col += 1;
                    }
                    self.emit_newline();
                    self.advance_newline();
                }
                b' ' | b'\t' => {
                    self.pos += 1;
                    self.col += 1;
                }
                b'#' => self.skip_comment(),
                _ => self.lex_token()?,
            }
        }
        // Close the final logical line and any open blocks.
        self.emit_newline();
        while self.indent_stack.len() > 1 {
            self.indent_stack.pop();
            self.push(TokenKind::Dedent, self.here(0));
        }
        self.push(TokenKind::Eof, self.here(0));
        Ok(self.tokens)
    }

    fn handle_indentation(&mut self) -> Result<(), LangError> {
        loop {
            // Measure indentation of the current line.
            let mut indent = 0usize;
            let mut p = self.pos;
            while p < self.bytes.len() {
                match self.bytes[p] {
                    b' ' => {
                        indent += 1;
                        p += 1;
                    }
                    b'\t' => {
                        indent += 8 - (indent % 8);
                        p += 1;
                    }
                    _ => break,
                }
            }
            // Blank or comment-only lines do not affect layout.
            if p >= self.bytes.len() {
                self.pos = p;
                self.at_line_start = false;
                return Ok(());
            }
            match self.bytes[p] {
                b'\n' => {
                    self.pos = p + 1;
                    self.line += 1;
                    self.col = 1;
                    continue;
                }
                b'\r' => {
                    self.pos = if self.peek_at(p + 1) == Some(b'\n') {
                        p + 2
                    } else {
                        p + 1
                    };
                    self.line += 1;
                    self.col = 1;
                    continue;
                }
                b'#' => {
                    // Skip to end of line.
                    let mut q = p;
                    while q < self.bytes.len() && self.bytes[q] != b'\n' {
                        q += 1;
                    }
                    self.pos = if q < self.bytes.len() { q + 1 } else { q };
                    self.line += 1;
                    self.col = 1;
                    continue;
                }
                _ => {}
            }
            // A real line: adjust the indentation stack.
            self.col += (p - self.pos) as u32;
            self.pos = p;
            let current = *self.indent_stack.last().expect("indent stack never empty");
            if indent > current {
                self.indent_stack.push(indent);
                self.push(TokenKind::Indent, self.here(0));
            } else if indent < current {
                while *self.indent_stack.last().expect("indent stack never empty") > indent {
                    self.indent_stack.pop();
                    self.push(TokenKind::Dedent, self.here(0));
                }
                let landed = *self.indent_stack.last().expect("indent stack never empty");
                if landed != indent {
                    return Err(LangError::single(
                        Stage::Lex,
                        format!(
                            "inconsistent indentation: expected {landed} spaces, found {indent}"
                        ),
                        self.here(0),
                    ));
                }
            }
            self.at_line_start = false;
            return Ok(());
        }
    }

    fn lex_token(&mut self) -> Result<(), LangError> {
        // Any real token ends the "start of line" state; this matters when a
        // line begins while inside brackets (layout is suspended there).
        self.at_line_start = false;
        let c = self.bytes[self.pos];
        match c {
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.lex_ident(),
            b'0'..=b'9' => self.lex_number(),
            b'"' | b'\'' => self.lex_string(c),
            _ => self.lex_punct(),
        }
    }

    fn lex_ident(&mut self) -> Result<(), LangError> {
        let start = self.pos;
        let span_start = self.here(0);
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' => {
                    self.pos += 1;
                    self.col += 1;
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos, span_start.line, span_start.column);
        if text == "_" {
            self.push_span(TokenKind::Underscore, span);
        } else if let Some(kw) = TokenKind::keyword(text) {
            self.push_span(kw, span);
        } else {
            self.push_span(TokenKind::Ident(text.to_string()), span);
        }
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), LangError> {
        let start = self.pos;
        let span_start = self.here(0);
        let mut is_hex = false;
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek_at(self.pos + 1), Some(b'x') | Some(b'X'))
        {
            is_hex = true;
            self.pos += 2;
            self.col += 2;
        }
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let ok = if is_hex {
                b.is_ascii_hexdigit()
            } else {
                b.is_ascii_digit()
            };
            if ok {
                self.pos += 1;
                self.col += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start, self.pos, span_start.line, span_start.column);
        let value = if is_hex {
            i64::from_str_radix(&text[2..], 16)
        } else {
            text.parse::<i64>()
        };
        match value {
            Ok(v) => {
                self.push_span(TokenKind::Int(v), span);
                Ok(())
            }
            Err(_) => Err(LangError::single(
                Stage::Lex,
                format!("integer literal `{text}` is out of range"),
                span,
            )),
        }
    }

    fn lex_string(&mut self, quote: u8) -> Result<(), LangError> {
        let span_start = self.here(0);
        let start = self.pos;
        self.pos += 1;
        self.col += 1;
        let mut value = String::new();
        loop {
            if self.pos >= self.bytes.len() || self.bytes[self.pos] == b'\n' {
                return Err(LangError::single(
                    Stage::Lex,
                    "unterminated string literal",
                    Span::new(start, self.pos, span_start.line, span_start.column),
                ));
            }
            let b = self.bytes[self.pos];
            if b == quote {
                self.pos += 1;
                self.col += 1;
                break;
            }
            if b == b'\\' {
                let esc = self.peek_at(self.pos + 1);
                let resolved = match esc {
                    Some(b'n') => '\n',
                    Some(b't') => '\t',
                    Some(b'r') => '\r',
                    Some(b'\\') => '\\',
                    Some(b'"') => '"',
                    Some(b'\'') => '\'',
                    Some(b'0') => '\0',
                    _ => {
                        return Err(LangError::single(
                            Stage::Lex,
                            "unknown escape sequence in string literal",
                            self.here(2),
                        ))
                    }
                };
                value.push(resolved);
                self.pos += 2;
                self.col += 2;
            } else {
                // Strings are UTF-8; copy the full character.
                let ch = self.src[self.pos..].chars().next().expect("valid utf-8");
                value.push(ch);
                self.pos += ch.len_utf8();
                self.col += 1;
            }
        }
        let span = Span::new(start, self.pos, span_start.line, span_start.column);
        self.push_span(TokenKind::Str(value), span);
        Ok(())
    }

    fn lex_punct(&mut self) -> Result<(), LangError> {
        let start = self.pos;
        let span_start = self.here(0);
        let c = self.bytes[self.pos];
        let next = self.peek_at(self.pos + 1);
        let (kind, len) = match (c, next) {
            (b'=', Some(b'>')) => (TokenKind::Arrow, 2),
            (b'-', Some(b'>')) => (TokenKind::ThinArrow, 2),
            (b':', Some(b'=')) => (TokenKind::Assign, 2),
            (b'<', Some(b'>')) => (TokenKind::Neq, 2),
            (b'<', Some(b'=')) => (TokenKind::Le, 2),
            (b'>', Some(b'=')) => (TokenKind::Ge, 2),
            (b'(', _) => (TokenKind::LParen, 1),
            (b')', _) => (TokenKind::RParen, 1),
            (b'[', _) => (TokenKind::LBracket, 1),
            (b']', _) => (TokenKind::RBracket, 1),
            (b'{', _) => (TokenKind::LBrace, 1),
            (b'}', _) => (TokenKind::RBrace, 1),
            (b',', _) => (TokenKind::Comma, 1),
            (b':', _) => (TokenKind::Colon, 1),
            (b'.', _) => (TokenKind::Dot, 1),
            (b'=', _) => (TokenKind::Eq, 1),
            (b'<', _) => (TokenKind::Lt, 1),
            (b'>', _) => (TokenKind::Gt, 1),
            (b'+', _) => (TokenKind::Plus, 1),
            (b'-', _) => (TokenKind::Minus, 1),
            (b'*', _) => (TokenKind::Star, 1),
            (b'/', _) => (TokenKind::Slash, 1),
            (b'|', _) => (TokenKind::Pipe, 1),
            _ => {
                return Err(LangError::single(
                    Stage::Lex,
                    format!("unexpected character `{}`", c as char),
                    self.here(1),
                ))
            }
        };
        match kind {
            TokenKind::LParen | TokenKind::LBracket | TokenKind::LBrace => self.paren_depth += 1,
            TokenKind::RParen | TokenKind::RBracket | TokenKind::RBrace => {
                self.paren_depth = self.paren_depth.saturating_sub(1)
            }
            _ => {}
        }
        self.pos += len;
        self.col += len as u32;
        let span = Span::new(start, self.pos, span_start.line, span_start.column);
        self.push_span(kind, span);
        Ok(())
    }

    fn skip_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
            self.col += 1;
        }
    }

    fn emit_newline(&mut self) {
        // Suppress newlines inside brackets and duplicate newlines.
        if self.paren_depth > 0 {
            return;
        }
        match self.tokens.last().map(|t| &t.kind) {
            Some(TokenKind::Newline) | Some(TokenKind::Indent) | Some(TokenKind::Dedent) | None => {
            }
            _ => self.push(TokenKind::Newline, self.here(0)),
        }
    }

    fn advance_newline(&mut self) {
        self.pos += 1;
        self.line += 1;
        self.col = 1;
        self.at_line_start = true;
    }

    fn peek_at(&self, idx: usize) -> Option<u8> {
        self.bytes.get(idx).copied()
    }

    fn here(&self, len: usize) -> Span {
        Span::new(self.pos, self.pos + len, self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token::new(kind, span));
    }

    fn push_span(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token::new(kind, span));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_arrows_and_assign() {
        let k = kinds("a => b := 1 -> c\n");
        assert!(k.contains(&TokenKind::Arrow));
        assert!(k.contains(&TokenKind::Assign));
        assert!(k.contains(&TokenKind::ThinArrow));
    }

    #[test]
    fn lexes_hex_and_decimal() {
        let k = kinds("0x0c 12\n");
        assert_eq!(k[0], TokenKind::Int(0x0c));
        assert_eq!(k[1], TokenKind::Int(12));
    }

    #[test]
    fn indentation_produces_blocks() {
        let k = kinds("proc p:\n  a\n  b\nc\n");
        let indents = k.iter().filter(|t| **t == TokenKind::Indent).count();
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn blank_and_comment_lines_ignored() {
        let k = kinds("a\n\n   # comment only\nb\n");
        let idents = k
            .iter()
            .filter(|t| matches!(t, TokenKind::Ident(_)))
            .count();
        assert_eq!(idents, 2);
        assert!(!k.contains(&TokenKind::Indent));
    }

    #[test]
    fn parens_join_lines() {
        let k = kinds("f(a,\n   b,\n   c)\n");
        // No Indent tokens should appear inside the parenthesised argument list.
        assert!(!k.contains(&TokenKind::Indent));
    }

    #[test]
    fn nested_dedents_close_all_blocks() {
        let k = kinds("a:\n  b:\n    c\n");
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn string_escapes() {
        let k = kinds("\"a\\nb\"\n");
        assert_eq!(k[0], TokenKind::Str("a\nb".to_string()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc\n").is_err());
    }

    #[test]
    fn inconsistent_indent_is_error() {
        assert!(lex("a:\n    b\n  c\n").is_err());
    }

    #[test]
    fn eof_is_last() {
        let k = kinds("x");
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }
}
