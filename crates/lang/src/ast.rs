//! Abstract syntax tree for FLICK programs.
//!
//! A [`Program`] contains three kinds of declarations, mirroring §4 of the
//! paper: application data **types** (records with optional wire-format
//! annotations), **processes** (middlebox logic with typed channel
//! signatures) and first-order **functions**.

use crate::error::Span;

/// A parsed FLICK program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Record type declarations, in source order.
    pub types: Vec<TypeDecl>,
    /// Process declarations, in source order.
    pub processes: Vec<ProcDecl>,
    /// Function declarations, in source order.
    pub functions: Vec<FunDecl>,
}

impl Program {
    /// Looks up a type declaration by name.
    pub fn type_decl(&self, name: &str) -> Option<&TypeDecl> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Looks up a function declaration by name.
    pub fn function(&self, name: &str) -> Option<&FunDecl> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a process declaration by name.
    pub fn process(&self, name: &str) -> Option<&ProcDecl> {
        self.processes.iter().find(|p| p.name == name)
    }
}

/// A record type declaration (`type cmd: record ...`).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// The type's name.
    pub name: String,
    /// The record fields, in wire order.
    pub fields: Vec<FieldDecl>,
    /// Source location of the declaration header.
    pub span: Span,
}

impl TypeDecl {
    /// Returns the named (non-anonymous) fields of the record.
    pub fn named_fields(&self) -> impl Iterator<Item = &FieldDecl> {
        self.fields.iter().filter(|f| f.name.is_some())
    }
}

/// A single field of a record type.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// The field name, or `None` for anonymised (`_`) padding fields whose
    /// values may never be read or written by the program.
    pub name: Option<String>,
    /// The declared field type.
    pub ty: TypeExpr,
    /// Serialisation attributes such as `size=keylen` or `signed=false`.
    pub attrs: Vec<FieldAttr>,
    /// Source location.
    pub span: Span,
}

impl FieldDecl {
    /// Returns the value expression of the attribute named `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&Expr> {
        self.attrs.iter().find(|a| a.name == name).map(|a| &a.value)
    }
}

/// A `name=expr` serialisation attribute attached to a record field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldAttr {
    /// The attribute name (`size`, `signed`, ...).
    pub name: String,
    /// The attribute value expression; may reference earlier fields.
    pub value: Expr,
    /// Source location.
    pub span: Span,
}

/// A process declaration (`proc Memcached: (cmd/cmd client, ...)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDecl {
    /// The process name.
    pub name: String,
    /// Channel parameters in the process signature.
    pub params: Vec<Param>,
    /// The process body.
    pub body: Block,
    /// Source location of the declaration header.
    pub span: Span,
}

/// A function declaration (`fun f: (params) -> (ret) ...`).
#[derive(Debug, Clone, PartialEq)]
pub struct FunDecl {
    /// The function name.
    pub name: String,
    /// Parameters: channels and data values.
    pub params: Vec<Param>,
    /// Declared return types; empty for `()`.
    pub ret: Vec<TypeExpr>,
    /// The function body.
    pub body: Block,
    /// Source location of the declaration header.
    pub span: Span,
}

/// A parameter of a process or function.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The parameter name.
    pub name: String,
    /// The declared parameter type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// A syntactic type expression as written in the source.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// A named type: a primitive (`integer`, `string`, `bool`) or a record.
    Named(String),
    /// A list type `[T]`.
    List(Box<TypeExpr>),
    /// A dictionary type `dict<K*V>`.
    Dict(Box<TypeExpr>, Box<TypeExpr>),
    /// A mutable reference `ref T` (used for shared state parameters).
    Ref(Box<TypeExpr>),
    /// The unit type `()`.
    Unit,
    /// A channel type `R/W` where either side may be `-` (absent).
    ///
    /// `read` is the type of values the program may *receive* from the
    /// channel and `write` the type it may *send*; per the paper a channel
    /// typed `-/cmd` is write-only.
    Channel {
        /// Receivable value type, or `None` if the channel is write-only.
        read: Option<Box<TypeExpr>>,
        /// Sendable value type, or `None` if the channel is read-only.
        write: Option<Box<TypeExpr>>,
    },
    /// An array of channels `[R/W]`.
    ChannelArray(Box<TypeExpr>),
}

impl TypeExpr {
    /// Returns `true` if this is a channel or channel-array type.
    pub fn is_channel_like(&self) -> bool {
        matches!(self, TypeExpr::Channel { .. } | TypeExpr::ChannelArray(_))
    }
}

/// A block of statements at one indentation level.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Returns `true` if the block contains no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `global name := expr` — declares per-program shared state.
    Global {
        /// The global's name.
        name: String,
        /// Initialiser expression.
        init: Expr,
        /// Source location.
        span: Span,
    },
    /// `let name = expr` — immutable local binding.
    Let {
        /// The binding name.
        name: String,
        /// The bound value.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `target := expr` — assignment to a dictionary entry or local.
    Assign {
        /// Assignment target (identifier, field access or index).
        target: Expr,
        /// The assigned value.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `a => f(x) => b` — a routing pipeline between channels and functions.
    ///
    /// The first stage is a source (channel or expression), the last stage a
    /// sink (channel), and intermediate stages are function applications.
    Pipeline {
        /// The stages of the pipeline, at least two.
        stages: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `if cond: ... [else: ...]`.
    If {
        /// The condition.
        cond: Expr,
        /// Statements executed when the condition holds.
        then: Block,
        /// Statements executed otherwise, if an `else` branch is present.
        els: Option<Block>,
        /// Source location.
        span: Span,
    },
    /// `for x in expr: ...` — bounded iteration over a finite list.
    For {
        /// The loop variable.
        var: String,
        /// The iterated (finite) collection.
        iter: Expr,
        /// The loop body.
        body: Block,
        /// Source location.
        span: Span,
    },
    /// A bare expression; the last expression of a function body is its
    /// return value.
    Expr {
        /// The expression.
        expr: Expr,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// Returns the source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Global { span, .. }
            | Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Pipeline { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Returns `true` for comparison operators producing booleans.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }

    /// Returns `true` for the boolean connectives `and` / `or`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Boolean negation `not x`.
    Not,
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates a new expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Returns the identifier name if this expression is a plain identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(name) => Some(name),
            _ => None,
        }
    }
}

/// The different kinds of expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The `None` literal (absent dictionary entry).
    None,
    /// A variable, parameter or channel reference.
    Ident(String),
    /// Field access `expr.field`.
    Field(Box<Expr>, String),
    /// Indexing `expr[index]` into a list, channel array or dictionary.
    Index(Box<Expr>, Box<Expr>),
    /// A call `name(args...)`: a user function, a builtin, or a record
    /// constructor when `name` is a declared type.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// The parallel tree-fold over an array of channels (`foldt on cs ...`).
    ///
    /// `foldt` merges elements read from the channels pairwise; `binders`
    /// name the two elements being combined, `order_key` selects the merge
    /// key (e.g. `elem.key`), `key_name` binds that key inside the body, and
    /// the body computes the combined element.
    Foldt {
        /// Expression denoting the channel array to aggregate over.
        channels: Box<Expr>,
        /// Names bound to the two elements being combined.
        binders: (String, String),
        /// Name bound to the generic element in the ordering clause.
        elem_name: String,
        /// The ordering key expression (in terms of `elem_name`).
        order_key: Box<Expr>,
        /// Name bound to the shared key inside the body.
        key_name: String,
        /// The combining body; its final expression is the merged element.
        body: Block,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(kind: ExprKind) -> Expr {
        Expr::new(kind, Span::default())
    }

    #[test]
    fn program_lookup_helpers() {
        let mut p = Program::default();
        p.types.push(TypeDecl {
            name: "cmd".into(),
            fields: vec![],
            span: Span::default(),
        });
        p.functions.push(FunDecl {
            name: "f".into(),
            params: vec![],
            ret: vec![],
            body: Block::default(),
            span: Span::default(),
        });
        assert!(p.type_decl("cmd").is_some());
        assert!(p.type_decl("missing").is_none());
        assert!(p.function("f").is_some());
        assert!(p.process("nope").is_none());
    }

    #[test]
    fn named_fields_skips_anonymous() {
        let t = TypeDecl {
            name: "cmd".into(),
            fields: vec![
                FieldDecl {
                    name: Some("key".into()),
                    ty: TypeExpr::Named("string".into()),
                    attrs: vec![],
                    span: Span::default(),
                },
                FieldDecl {
                    name: None,
                    ty: TypeExpr::Named("string".into()),
                    attrs: vec![],
                    span: Span::default(),
                },
            ],
            span: Span::default(),
        };
        assert_eq!(t.named_fields().count(), 1);
    }

    #[test]
    fn expr_as_ident() {
        assert_eq!(e(ExprKind::Ident("x".into())).as_ident(), Some("x"));
        assert_eq!(e(ExprKind::Int(3)).as_ident(), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
    }

    #[test]
    fn channel_type_is_channel_like() {
        let ch = TypeExpr::Channel {
            read: None,
            write: Some(Box::new(TypeExpr::Named("cmd".into()))),
        };
        assert!(ch.is_channel_like());
        assert!(TypeExpr::ChannelArray(Box::new(ch.clone())).is_channel_like());
        assert!(!TypeExpr::Named("cmd".into()).is_channel_like());
    }
}
