//! Semantic restrictions that give FLICK its bounded-resource guarantee.
//!
//! Per §3.2/§4.3 of the paper, FLICK programs are guaranteed to terminate on
//! finite input because:
//!
//! * user-defined functions are first order and may not be recursive,
//!   directly or indirectly;
//! * iteration is only possible over finite structures (`for`, `fold`,
//!   `map`, `filter`, `foldt`), never unbounded (`while`-style loops do not
//!   exist in the grammar);
//! * higher-order builtins (`fold`, `map`, `filter`) take a *function name*
//!   rather than a function value, so no closures are ever created.
//!
//! This module checks the first and third property on the untyped AST (the
//! second holds by construction of the grammar).

use crate::ast::{Block, Expr, ExprKind, Program, Stmt};
use crate::error::{Diagnostic, LangError, Span, Stage};
use std::collections::{HashMap, HashSet};

/// Names of builtin functions whose first argument must be the name of a
/// user-defined function (the bounded higher-order primitives).
pub const HIGHER_ORDER_BUILTINS: &[&str] = &["fold", "map", "filter"];

/// Names of ordinary builtin functions available to every program.
pub const BUILTINS: &[&str] = &[
    "hash",
    "len",
    "empty_dict",
    "all_ready",
    "size",
    "str",
    "int",
];

/// Runs the semantic checks on a parsed program.
///
/// Returns an error listing every violation found.
pub fn check(program: &Program) -> Result<(), LangError> {
    let mut diagnostics = Vec::new();
    check_recursion(program, &mut diagnostics);
    check_first_order(program, &mut diagnostics);
    check_duplicate_names(program, &mut diagnostics);
    if diagnostics.is_empty() {
        Ok(())
    } else {
        Err(LangError::from_diagnostics(diagnostics))
    }
}

/// Collects the names of all functions called within a block.
pub fn called_functions(block: &Block, out: &mut HashSet<String>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Global { init, .. } => collect_calls(init, out),
            Stmt::Let { value, .. } => collect_calls(value, out),
            Stmt::Assign { target, value, .. } => {
                collect_calls(target, out);
                collect_calls(value, out);
            }
            Stmt::Pipeline { stages, .. } => {
                for s in stages {
                    collect_calls(s, out);
                }
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                collect_calls(cond, out);
                called_functions(then, out);
                if let Some(els) = els {
                    called_functions(els, out);
                }
            }
            Stmt::For { iter, body, .. } => {
                collect_calls(iter, out);
                called_functions(body, out);
            }
            Stmt::Expr { expr, .. } => collect_calls(expr, out),
        }
    }
}

fn collect_calls(expr: &Expr, out: &mut HashSet<String>) {
    match &expr.kind {
        ExprKind::Call { name, args } => {
            out.insert(name.clone());
            // The first argument of fold/map/filter is itself a function name.
            if HIGHER_ORDER_BUILTINS.contains(&name.as_str()) {
                if let Some(first) = args.first() {
                    if let Some(f) = first.as_ident() {
                        out.insert(f.to_string());
                    }
                }
            }
            for a in args {
                collect_calls(a, out);
            }
        }
        ExprKind::Field(inner, _) => collect_calls(inner, out),
        ExprKind::Index(base, idx) => {
            collect_calls(base, out);
            collect_calls(idx, out);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_calls(lhs, out);
            collect_calls(rhs, out);
        }
        ExprKind::Unary { operand, .. } => collect_calls(operand, out),
        ExprKind::Foldt {
            channels,
            order_key,
            body,
            ..
        } => {
            collect_calls(channels, out);
            collect_calls(order_key, out);
            called_functions(body, out);
        }
        ExprKind::Int(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::None
        | ExprKind::Ident(_) => {}
    }
}

/// Rejects direct and indirect recursion among user-defined functions.
fn check_recursion(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    // Build the call graph restricted to user-defined functions.
    let user: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
    let mut graph: HashMap<&str, Vec<String>> = HashMap::new();
    let mut spans: HashMap<&str, Span> = HashMap::new();
    for f in &program.functions {
        let mut calls = HashSet::new();
        called_functions(&f.body, &mut calls);
        let edges = calls
            .into_iter()
            .filter(|c| user.contains(c.as_str()))
            .collect();
        graph.insert(&f.name, edges);
        spans.insert(&f.name, f.span);
    }
    // Depth-first search with colouring to find cycles.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: HashMap<&str, Colour> = graph.keys().map(|k| (*k, Colour::White)).collect();
    let mut reported: HashSet<String> = HashSet::new();

    fn visit<'a>(
        node: &'a str,
        graph: &'a HashMap<&'a str, Vec<String>>,
        colour: &mut HashMap<&'a str, Colour>,
        stack: &mut Vec<String>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        colour.insert(node, Colour::Grey);
        stack.push(node.to_string());
        if let Some(edges) = graph.get(node) {
            for next in edges {
                match colour.get(next.as_str()).copied() {
                    Some(Colour::White) => {
                        // Re-borrow the key owned by the graph to extend its lifetime.
                        if let Some((key, _)) = graph.get_key_value(next.as_str()) {
                            visit(key, graph, colour, stack, cycles);
                        }
                    }
                    Some(Colour::Grey) => {
                        let start = stack.iter().position(|n| n == next).unwrap_or(0);
                        cycles.push(stack[start..].to_vec());
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        colour.insert(node, Colour::Black);
    }

    let mut cycles = Vec::new();
    let keys: Vec<&str> = graph.keys().copied().collect();
    for k in keys {
        if colour[k] == Colour::White {
            let mut stack = Vec::new();
            visit(k, &graph, &mut colour, &mut stack, &mut cycles);
        }
    }
    for cycle in cycles {
        let label = cycle.join(" -> ");
        if reported.insert(label.clone()) {
            let span = cycle
                .first()
                .and_then(|n| spans.get(n.as_str()).copied())
                .unwrap_or_default();
            diagnostics.push(Diagnostic::new(
                Stage::Semantic,
                format!("recursion is not permitted in FLICK functions: cycle {label}"),
                span,
            ));
        }
    }
}

/// Enforces first-order use of functions: function names may appear only in
/// call position or as the first argument of `fold`, `map` or `filter`.
fn check_first_order(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    let user: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
    let mut check_block = |block: &Block, owner: &str| {
        let mut stack: Vec<&Block> = vec![block];
        while let Some(b) = stack.pop() {
            for stmt in &b.stmts {
                let exprs: Vec<&Expr> = match stmt {
                    Stmt::Global { init, .. } => vec![init],
                    Stmt::Let { value, .. } => vec![value],
                    Stmt::Assign { target, value, .. } => vec![target, value],
                    Stmt::Pipeline { stages, .. } => stages.iter().collect(),
                    Stmt::If {
                        cond, then, els, ..
                    } => {
                        stack.push(then);
                        if let Some(e) = els {
                            stack.push(e);
                        }
                        vec![cond]
                    }
                    Stmt::For { iter, body, .. } => {
                        stack.push(body);
                        vec![iter]
                    }
                    Stmt::Expr { expr, .. } => vec![expr],
                };
                for e in exprs {
                    check_expr_first_order(e, &user, owner, diagnostics, true);
                }
            }
        }
    };
    for f in &program.functions {
        check_block(&f.body, &f.name);
    }
    for p in &program.processes {
        check_block(&p.body, &p.name);
    }
}

fn check_expr_first_order(
    expr: &Expr,
    user: &HashSet<&str>,
    owner: &str,
    diagnostics: &mut Vec<Diagnostic>,
    _top: bool,
) {
    match &expr.kind {
        ExprKind::Ident(name) if user.contains(name.as_str()) => {
            diagnostics.push(Diagnostic::new(
                Stage::Semantic,
                format!(
                    "function `{name}` used as a value in `{owner}`; FLICK functions are first order and may only be called"
                ),
                expr.span,
            ));
        }
        ExprKind::Call { name, args } => {
            let skip_first = HIGHER_ORDER_BUILTINS.contains(&name.as_str());
            for (i, a) in args.iter().enumerate() {
                if skip_first && i == 0 {
                    // The function-name argument of fold/map/filter is allowed.
                    continue;
                }
                check_expr_first_order(a, user, owner, diagnostics, false);
            }
        }
        ExprKind::Field(inner, _) => check_expr_first_order(inner, user, owner, diagnostics, false),
        ExprKind::Index(base, idx) => {
            check_expr_first_order(base, user, owner, diagnostics, false);
            check_expr_first_order(idx, user, owner, diagnostics, false);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            check_expr_first_order(lhs, user, owner, diagnostics, false);
            check_expr_first_order(rhs, user, owner, diagnostics, false);
        }
        ExprKind::Unary { operand, .. } => {
            check_expr_first_order(operand, user, owner, diagnostics, false)
        }
        ExprKind::Foldt {
            channels,
            order_key,
            body,
            ..
        } => {
            check_expr_first_order(channels, user, owner, diagnostics, false);
            check_expr_first_order(order_key, user, owner, diagnostics, false);
            for stmt in &body.stmts {
                if let Stmt::Expr { expr, .. } = stmt {
                    check_expr_first_order(expr, user, owner, diagnostics, false);
                }
            }
        }
        _ => {}
    }
}

/// Rejects duplicate type, process or function names.
fn check_duplicate_names(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<&str, &str> = HashMap::new();
    for t in &program.types {
        if seen.insert(t.name.as_str(), "type").is_some() {
            diagnostics.push(Diagnostic::new(
                Stage::Semantic,
                format!("duplicate declaration of `{}`", t.name),
                t.span,
            ));
        }
    }
    for f in &program.functions {
        if seen.insert(f.name.as_str(), "function").is_some() {
            diagnostics.push(Diagnostic::new(
                Stage::Semantic,
                format!("duplicate declaration of `{}`", f.name),
                f.span,
            ));
        }
    }
    for p in &program.processes {
        if seen.insert(p.name.as_str(), "process").is_some() {
            diagnostics.push(Diagnostic::new(
                Stage::Semantic,
                format!("duplicate declaration of `{}`", p.name),
                p.span,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn accepts_non_recursive_program() {
        let src = r#"
type cmd: record
  key : string

proc P: (cmd/cmd client)
  client => f(client)

fun f: (-/cmd client, x: cmd) -> ()
  g(x) => client

fun g: (x: cmd) -> (cmd)
  x
"#;
        let program = parse(src).unwrap();
        assert!(check(&program).is_ok());
    }

    #[test]
    fn rejects_direct_recursion() {
        let src = r#"
fun f: (x: integer) -> (integer)
  f(x)
"#;
        let program = parse(src).unwrap();
        let err = check(&program).unwrap_err();
        assert!(err.first_message().contains("recursion"));
    }

    #[test]
    fn rejects_indirect_recursion() {
        let src = r#"
fun a: (x: integer) -> (integer)
  b(x)

fun b: (x: integer) -> (integer)
  a(x)
"#;
        let program = parse(src).unwrap();
        let err = check(&program).unwrap_err();
        assert!(err.first_message().contains("cycle"));
    }

    #[test]
    fn rejects_function_used_as_value() {
        let src = r#"
fun helper: (x: integer) -> (integer)
  x

fun f: (x: integer) -> (integer)
  let g = helper
  x
"#;
        let program = parse(src).unwrap();
        let err = check(&program).unwrap_err();
        assert!(err.first_message().contains("first order"));
    }

    #[test]
    fn allows_function_name_in_fold() {
        let src = r#"
fun add: (acc: integer, x: integer) -> (integer)
  acc + x

fun total: (xs: [integer]) -> (integer)
  fold(add, 0, xs)
"#;
        let program = parse(src).unwrap();
        assert!(check(&program).is_ok());
    }

    #[test]
    fn rejects_duplicate_names() {
        let src = r#"
fun f: (x: integer) -> (integer)
  x

fun f: (y: integer) -> (integer)
  y
"#;
        let program = parse(src).unwrap();
        let err = check(&program).unwrap_err();
        assert!(err.first_message().contains("duplicate"));
    }

    #[test]
    fn called_functions_sees_nested_calls() {
        let src = r#"
fun f: (x: integer) -> (integer)
  if g(x) = 0:
    h(x)
  else:
    x
"#;
        let program = parse(src).unwrap();
        let mut calls = HashSet::new();
        called_functions(&program.functions[0].body, &mut calls);
        assert!(calls.contains("g"));
        assert!(calls.contains("h"));
    }
}
