//! The FLICK domain-specific language.
//!
//! This crate implements the front end of the FLICK framework described in
//! *FLICK: Developing and Running Application-Specific Network Services*
//! (USENIX ATC 2016): an indentation-aware lexer, a recursive-descent parser
//! producing a typed abstract syntax tree, a static type checker, and the
//! semantic checks that give FLICK programs their bounded-resource
//! guarantees (first-order functions, no direct or indirect recursion, and
//! finite iteration only).
//!
//! The language has three kinds of top-level declarations:
//!
//! * **types** — record definitions with optional wire-format annotations,
//! * **processes** — the middlebox logic, connected to the outside world via
//!   typed, possibly unidirectional channels, and
//! * **functions** — first-order helpers used by processes.
//!
//! # Examples
//!
//! ```
//! use flick_lang::compile_to_ast;
//!
//! let src = r#"
//! type cmd: record
//!   key : string
//!
//! proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
//!   backends => client
//!   client => target_backend(backends)
//!
//! fun target_backend: ([-/cmd] backends, req: cmd) -> ()
//!   let target = hash(req.key) mod len(backends)
//!   req => backends[target]
//! "#;
//!
//! let program = compile_to_ast(src).expect("program should type-check");
//! assert_eq!(program.processes.len(), 1);
//! assert_eq!(program.functions.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod semantics;
pub mod token;
pub mod typecheck;
pub mod types;

pub use ast::Program;
pub use error::{Diagnostic, LangError, Span};
pub use typecheck::TypedProgram;

/// Parses FLICK source into an untyped [`Program`] AST.
///
/// This runs the lexer and parser only; no type checking is performed.
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(source)?;
    parser::parse_tokens(&tokens, source)
}

/// Parses and type-checks FLICK source, returning the typed program.
///
/// This is the main entry point used by the compiler crate. In addition to
/// type checking it enforces the FLICK semantic restrictions: user functions
/// must be first order and non-recursive, and iteration is only permitted
/// over finite structures.
pub fn compile_to_ast(source: &str) -> Result<TypedProgram, LangError> {
    let program = parse(source)?;
    semantics::check(&program)?;
    typecheck::check(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_process() {
        let src =
            "proc P: (cmd/cmd client)\n  client => client\n\ntype cmd: record\n  key : string\n";
        let program = parse(src).unwrap();
        assert_eq!(program.processes.len(), 1);
        assert_eq!(program.types.len(), 1);
    }

    #[test]
    fn compile_rejects_recursion() {
        let src = r#"
type t: record
  key : string

proc P: (t/t client)
  client => f(client)

fun f: (-/t client, x: t) -> ()
  g(client, x)

fun g: (-/t client, x: t) -> ()
  f(client, x)
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("recursion"), "got: {err}");
    }
}
