//! Diagnostics and error types shared by the FLICK language front end.

use std::fmt;

/// A byte-offset span into the original source text.
///
/// Spans are half-open: `start` is inclusive, `end` is exclusive. They are
/// attached to tokens and AST nodes so that diagnostics can point at the
/// offending source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character covered by the span.
    pub start: usize,
    /// Byte offset one past the last character covered by the span.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub column: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32, column: u32) -> Self {
        Span {
            start,
            end,
            line,
            column,
        }
    }

    /// Returns a span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            column: if self.line <= other.line {
                self.column
            } else {
                other.column
            },
        }
    }

    /// A synthetic span for nodes that do not correspond to source text.
    pub fn synthetic() -> Span {
        Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The stage of the front end that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenisation (indentation handling, literals, unknown characters).
    Lex,
    /// Grammar errors (unexpected tokens, malformed declarations).
    Parse,
    /// Semantic restrictions (recursion, higher-order functions, unbounded iteration).
    Semantic,
    /// Static type errors (channel direction misuse, record field mismatch, ...).
    Type,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Lex => "lex error",
            Stage::Parse => "parse error",
            Stage::Semantic => "semantic error",
            Stage::Type => "type error",
        };
        f.write_str(name)
    }
}

/// A single diagnostic message with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which front-end stage rejected the program.
    pub stage: Stage,
    /// Human-readable description of the problem.
    pub message: String,
    /// Location of the problem in the source text.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a new diagnostic.
    pub fn new(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            stage,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.stage, self.span, self.message)
    }
}

/// Error type returned by every front-end entry point.
///
/// A [`LangError`] carries one or more diagnostics; the parser stops at the
/// first error, while the type checker may accumulate several.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// The diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LangError {
    /// Creates an error from a single diagnostic.
    pub fn single(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        LangError {
            diagnostics: vec![Diagnostic::new(stage, message, span)],
        }
    }

    /// Creates an error from a collection of diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `diagnostics` is empty; an error must explain itself.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        assert!(
            !diagnostics.is_empty(),
            "LangError requires at least one diagnostic"
        );
        LangError { diagnostics }
    }

    /// Returns the first diagnostic message, used in tests and short reports.
    pub fn first_message(&self) -> &str {
        &self.diagnostics[0].message
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(0, 4, 1, 1);
        let b = Span::new(10, 12, 2, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 1);
    }

    #[test]
    fn diagnostic_display_contains_location() {
        let d = Diagnostic::new(Stage::Parse, "unexpected token", Span::new(5, 6, 3, 2));
        let s = format!("{d}");
        assert!(s.contains("3:2"));
        assert!(s.contains("unexpected token"));
    }

    #[test]
    #[should_panic(expected = "at least one diagnostic")]
    fn empty_diagnostics_panics() {
        let _ = LangError::from_diagnostics(vec![]);
    }

    #[test]
    fn error_display_joins_diagnostics() {
        let e = LangError::from_diagnostics(vec![
            Diagnostic::new(Stage::Type, "first", Span::default()),
            Diagnostic::new(Stage::Type, "second", Span::default()),
        ]);
        let s = format!("{e}");
        assert!(s.contains("first") && s.contains("second"));
    }
}
