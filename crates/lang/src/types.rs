//! The FLICK static type system.
//!
//! FLICK is strongly and statically typed (§4.3 of the paper). The type
//! language is deliberately small: primitives, records declared by the
//! program, finite lists, dictionaries used for per-program shared state,
//! references to such state, and channels. Channel types carry a direction:
//! a channel may be readable, writable or both, and misuse (for example
//! reading from a channel declared `-/cmd`) is a static error.

use crate::ast::{Program, TypeExpr};
use crate::error::{LangError, Span, Stage};
use std::fmt;

/// A resolved (semantic) FLICK type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// Signed integer (fixed maximum width; 64-bit in this implementation).
    Int,
    /// Boolean.
    Bool,
    /// A bounded string of bytes.
    Str,
    /// The unit type, returned by functions with no result.
    Unit,
    /// The type of the `None` literal; compatible with any value type in
    /// equality comparisons and dictionary lookups.
    NoneType,
    /// A record type declared in the program, referenced by name.
    Record(String),
    /// A finite list of elements.
    List(Box<Type>),
    /// A dictionary with the given key and value types.
    Dict(Box<Type>, Box<Type>),
    /// A mutable reference to shared state of the inner type.
    Ref(Box<Type>),
    /// A channel carrying values of the given type.
    Channel {
        /// The element type carried by the channel.
        value: Box<Type>,
        /// Whether the program may read from the channel.
        can_read: bool,
        /// Whether the program may write to the channel.
        can_write: bool,
    },
    /// An array of channels, all with the same element type and direction.
    ChannelArray {
        /// The element type carried by each channel.
        value: Box<Type>,
        /// Whether the program may read from the channels.
        can_read: bool,
        /// Whether the program may write to the channels.
        can_write: bool,
    },
}

impl Type {
    /// Returns `true` if a value of type `other` may be used where `self` is
    /// expected.
    ///
    /// The rules are intentionally simple: types must be equal, except that
    /// `NoneType` unifies with anything (it only arises in comparisons and
    /// dictionary lookups), references are transparent to reads, and channel
    /// capabilities may be narrowed (a bidirectional channel may be passed
    /// where a unidirectional one is expected, but not the reverse).
    pub fn accepts(&self, other: &Type) -> bool {
        use Type::*;
        match (self, other) {
            (NoneType, _) | (_, NoneType) => true,
            (Ref(a), b) => a.accepts(b),
            (a, Ref(b)) => a.accepts(b),
            (
                Channel {
                    value: va,
                    can_read: ra,
                    can_write: wa,
                },
                Channel {
                    value: vb,
                    can_read: rb,
                    can_write: wb,
                },
            ) => va.accepts(vb) && (!*ra || *rb) && (!*wa || *wb),
            (
                ChannelArray {
                    value: va,
                    can_read: ra,
                    can_write: wa,
                },
                ChannelArray {
                    value: vb,
                    can_read: rb,
                    can_write: wb,
                },
            ) => va.accepts(vb) && (!*ra || *rb) && (!*wa || *wb),
            (List(a), List(b)) => a.accepts(b),
            (Dict(ka, va), Dict(kb, vb)) => ka.accepts(kb) && va.accepts(vb),
            (a, b) => a == b,
        }
    }

    /// Returns the element type of a channel or channel array, if any.
    pub fn channel_value(&self) -> Option<&Type> {
        match self {
            Type::Channel { value, .. } | Type::ChannelArray { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Returns `true` if this type is a channel or channel array.
    pub fn is_channel_like(&self) -> bool {
        matches!(self, Type::Channel { .. } | Type::ChannelArray { .. })
    }

    /// Strips any `ref` wrapper.
    #[allow(clippy::should_implement_trait)]
    pub fn deref(&self) -> &Type {
        match self {
            Type::Ref(inner) => inner.deref(),
            other => other,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "integer"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "string"),
            Type::Unit => write!(f, "()"),
            Type::NoneType => write!(f, "None"),
            Type::Record(name) => write!(f, "{name}"),
            Type::List(t) => write!(f, "[{t}]"),
            Type::Dict(k, v) => write!(f, "dict<{k}*{v}>"),
            Type::Ref(t) => write!(f, "ref {t}"),
            Type::Channel {
                value,
                can_read,
                can_write,
            } => {
                let r = if *can_read {
                    value.to_string()
                } else {
                    "-".to_string()
                };
                let w = if *can_write {
                    value.to_string()
                } else {
                    "-".to_string()
                };
                write!(f, "{r}/{w}")
            }
            Type::ChannelArray {
                value,
                can_read,
                can_write,
            } => {
                let r = if *can_read {
                    value.to_string()
                } else {
                    "-".to_string()
                };
                let w = if *can_write {
                    value.to_string()
                } else {
                    "-".to_string()
                };
                write!(f, "[{r}/{w}]")
            }
        }
    }
}

/// Resolves a syntactic [`TypeExpr`] to a semantic [`Type`].
///
/// `program` supplies the record declarations so that named types can be
/// validated; unknown names are rejected.
pub fn resolve(expr: &TypeExpr, program: &Program, span: Span) -> Result<Type, LangError> {
    match expr {
        TypeExpr::Named(name) => resolve_named(name, program, span),
        TypeExpr::Unit => Ok(Type::Unit),
        TypeExpr::List(inner) => Ok(Type::List(Box::new(resolve(inner, program, span)?))),
        TypeExpr::Dict(k, v) => Ok(Type::Dict(
            Box::new(resolve(k, program, span)?),
            Box::new(resolve(v, program, span)?),
        )),
        TypeExpr::Ref(inner) => Ok(Type::Ref(Box::new(resolve(inner, program, span)?))),
        TypeExpr::Channel { read, write } => {
            let read_ty = read
                .as_ref()
                .map(|t| resolve(t, program, span))
                .transpose()?;
            let write_ty = write
                .as_ref()
                .map(|t| resolve(t, program, span))
                .transpose()?;
            let value = match (&read_ty, &write_ty) {
                (Some(r), Some(w)) if r != w => {
                    return Err(LangError::single(
                        Stage::Type,
                        format!("channel sides must carry the same type, found {r} and {w}"),
                        span,
                    ))
                }
                (Some(r), _) => r.clone(),
                (None, Some(w)) => w.clone(),
                (None, None) => {
                    return Err(LangError::single(
                        Stage::Type,
                        "channel type must have at least one readable or writable side",
                        span,
                    ))
                }
            };
            Ok(Type::Channel {
                value: Box::new(value),
                can_read: read_ty.is_some(),
                can_write: write_ty.is_some(),
            })
        }
        TypeExpr::ChannelArray(inner) => {
            let inner_ty = resolve(inner, program, span)?;
            match inner_ty {
                Type::Channel {
                    value,
                    can_read,
                    can_write,
                } => Ok(Type::ChannelArray {
                    value,
                    can_read,
                    can_write,
                }),
                other => Err(LangError::single(
                    Stage::Type,
                    format!("expected a channel type inside `[...]`, found {other}"),
                    span,
                )),
            }
        }
    }
}

fn resolve_named(name: &str, program: &Program, span: Span) -> Result<Type, LangError> {
    match name {
        "integer" | "int" => Ok(Type::Int),
        "string" | "bytes" => Ok(Type::Str),
        "bool" | "boolean" => Ok(Type::Bool),
        _ => {
            if program.type_decl(name).is_some() {
                Ok(Type::Record(name.to_string()))
            } else {
                Err(LangError::single(
                    Stage::Type,
                    format!("unknown type `{name}`"),
                    span,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{FieldDecl, TypeDecl};

    fn program_with_cmd() -> Program {
        let mut p = Program::default();
        p.types.push(TypeDecl {
            name: "cmd".into(),
            fields: vec![FieldDecl {
                name: Some("key".into()),
                ty: TypeExpr::Named("string".into()),
                attrs: vec![],
                span: Span::default(),
            }],
            span: Span::default(),
        });
        p
    }

    #[test]
    fn resolves_primitives_and_records() {
        let p = program_with_cmd();
        assert_eq!(
            resolve(&TypeExpr::Named("integer".into()), &p, Span::default()).unwrap(),
            Type::Int
        );
        assert_eq!(
            resolve(&TypeExpr::Named("cmd".into()), &p, Span::default()).unwrap(),
            Type::Record("cmd".into())
        );
        assert!(resolve(&TypeExpr::Named("nope".into()), &p, Span::default()).is_err());
    }

    #[test]
    fn resolves_channel_directions() {
        let p = program_with_cmd();
        let write_only = TypeExpr::Channel {
            read: None,
            write: Some(Box::new(TypeExpr::Named("cmd".into()))),
        };
        let t = resolve(&write_only, &p, Span::default()).unwrap();
        match t {
            Type::Channel {
                can_read,
                can_write,
                ..
            } => {
                assert!(!can_read);
                assert!(can_write);
            }
            other => panic!("expected channel, got {other}"),
        }
    }

    #[test]
    fn rejects_mismatched_channel_sides() {
        let p = program_with_cmd();
        let bad = TypeExpr::Channel {
            read: Some(Box::new(TypeExpr::Named("cmd".into()))),
            write: Some(Box::new(TypeExpr::Named("string".into()))),
        };
        assert!(resolve(&bad, &p, Span::default()).is_err());
    }

    #[test]
    fn capability_narrowing_is_accepted_but_not_widening() {
        let bidir = Type::Channel {
            value: Box::new(Type::Record("cmd".into())),
            can_read: true,
            can_write: true,
        };
        let write_only = Type::Channel {
            value: Box::new(Type::Record("cmd".into())),
            can_read: false,
            can_write: true,
        };
        assert!(write_only.accepts(&bidir));
        assert!(!bidir.accepts(&write_only));
    }

    #[test]
    fn none_unifies_with_values() {
        assert!(Type::Record("cmd".into()).accepts(&Type::NoneType));
        assert!(Type::NoneType.accepts(&Type::Str));
    }

    #[test]
    fn display_round_trips_shape() {
        let t = Type::ChannelArray {
            value: Box::new(Type::Record("cmd".into())),
            can_read: false,
            can_write: true,
        };
        assert_eq!(t.to_string(), "[-/cmd]");
        assert_eq!(
            Type::Dict(Box::new(Type::Str), Box::new(Type::Str)).to_string(),
            "dict<string*string>"
        );
    }

    #[test]
    fn ref_is_transparent() {
        let r = Type::Ref(Box::new(Type::Str));
        assert!(r.accepts(&Type::Str));
        assert_eq!(r.deref(), &Type::Str);
    }
}
