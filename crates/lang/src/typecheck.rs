//! Static type checking for FLICK programs.
//!
//! The checker resolves every declared type, verifies field-size
//! annotations, and checks process and function bodies: channel direction
//! misuse, pipeline stage compatibility, dictionary access, record
//! construction and the `foldt` aggregation form are all validated here.
//! The output is a [`TypedProgram`] consumed by the compiler crate.

use crate::ast::*;
use crate::error::{Diagnostic, LangError, Span, Stage};
use crate::semantics::{BUILTINS, HIGHER_ORDER_BUILTINS};
use crate::types::{resolve, Type};
use std::collections::HashMap;

/// Resolved information about one field of a record.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInfo {
    /// The field name, or `None` for anonymised padding fields.
    pub name: Option<String>,
    /// The resolved field type.
    pub ty: Type,
    /// The `size=` attribute expression, if present. The expression may
    /// reference earlier named fields of the same record.
    pub size: Option<Expr>,
    /// Whether an integer field is signed (`signed=` attribute, default true).
    pub signed: bool,
}

/// Resolved information about a record type.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordInfo {
    /// The record name.
    pub name: String,
    /// The fields in wire order.
    pub fields: Vec<FieldInfo>,
}

impl RecordInfo {
    /// Looks up a named field.
    pub fn field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.iter().find(|f| f.name.as_deref() == Some(name))
    }

    /// Returns the named fields in declaration order.
    pub fn named_fields(&self) -> impl Iterator<Item = &FieldInfo> {
        self.fields.iter().filter(|f| f.name.is_some())
    }
}

/// The resolved signature of a user-defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunSig {
    /// Parameter names and types, in order.
    pub params: Vec<(String, Type)>,
    /// The return type (`Type::Unit` when the function returns nothing).
    pub ret: Type,
}

/// The resolved signature of a process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcSig {
    /// Channel parameters of the process, in order.
    pub params: Vec<(String, Type)>,
    /// Global (shared, per-program) state declared in the body.
    pub globals: Vec<(String, Type)>,
}

/// A fully type-checked program: the AST plus every resolved signature.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedProgram {
    /// The original AST.
    pub program: Program,
    /// Record layouts by name.
    pub records: HashMap<String, RecordInfo>,
    /// Function signatures by name.
    pub functions: HashMap<String, FunSig>,
    /// Process signatures by name.
    pub processes: HashMap<String, ProcSig>,
}

impl TypedProgram {
    /// Returns the record layout for `name`.
    pub fn record(&self, name: &str) -> Option<&RecordInfo> {
        self.records.get(name)
    }

    /// Returns the signature of function `name`.
    pub fn function(&self, name: &str) -> Option<&FunSig> {
        self.functions.get(name)
    }

    /// Returns the signature of process `name`.
    pub fn process(&self, name: &str) -> Option<&ProcSig> {
        self.processes.get(name)
    }
}

/// Type-checks a parsed program.
pub fn check(program: Program) -> Result<TypedProgram, LangError> {
    let mut checker = Checker::new(&program);
    checker.check_records();
    checker.collect_signatures();
    checker.check_functions();
    checker.check_processes();
    if checker.diagnostics.is_empty() {
        Ok(TypedProgram {
            records: checker.records,
            functions: checker.functions,
            processes: checker.processes,
            program,
        })
    } else {
        Err(LangError::from_diagnostics(checker.diagnostics))
    }
}

struct Checker<'a> {
    program: &'a Program,
    records: HashMap<String, RecordInfo>,
    functions: HashMap<String, FunSig>,
    processes: HashMap<String, ProcSig>,
    diagnostics: Vec<Diagnostic>,
}

type Scope = HashMap<String, Type>;

impl<'a> Checker<'a> {
    fn new(program: &'a Program) -> Self {
        Checker {
            program,
            records: HashMap::new(),
            functions: HashMap::new(),
            processes: HashMap::new(),
            diagnostics: Vec::new(),
        }
    }

    fn error(&mut self, message: impl Into<String>, span: Span) {
        self.diagnostics
            .push(Diagnostic::new(Stage::Type, message, span));
    }

    fn resolve(&mut self, expr: &TypeExpr, span: Span) -> Type {
        match resolve(expr, self.program, span) {
            Ok(t) => t,
            Err(e) => {
                self.diagnostics.extend(e.diagnostics);
                Type::NoneType
            }
        }
    }

    // ----- declarations -----------------------------------------------------

    fn check_records(&mut self) {
        for decl in &self.program.types {
            let mut fields = Vec::new();
            let mut seen_names: Vec<&str> = Vec::new();
            for field in &decl.fields {
                let ty = self.resolve(&field.ty, field.span);
                if !matches!(
                    ty.deref(),
                    Type::Int | Type::Str | Type::Bool | Type::Record(_)
                ) {
                    self.error(
                        format!("field type `{ty}` is not allowed in a record"),
                        field.span,
                    );
                }
                // Size expressions may only reference earlier named fields.
                if let Some(size) = field.attr("size") {
                    self.check_size_expr(size, &seen_names, field.span);
                }
                let signed = match field.attr("signed") {
                    Some(Expr {
                        kind: ExprKind::Bool(b),
                        ..
                    }) => *b,
                    Some(Expr {
                        kind: ExprKind::Ident(s),
                        ..
                    }) => s == "true",
                    _ => true,
                };
                if let Some(name) = &field.name {
                    if seen_names.contains(&name.as_str()) {
                        self.error(
                            format!("duplicate field `{name}` in record `{}`", decl.name),
                            field.span,
                        );
                    }
                    seen_names.push(name);
                }
                fields.push(FieldInfo {
                    name: field.name.clone(),
                    ty,
                    size: field.attr("size").cloned(),
                    signed,
                });
            }
            self.records.insert(
                decl.name.clone(),
                RecordInfo {
                    name: decl.name.clone(),
                    fields,
                },
            );
        }
    }

    fn check_size_expr(&mut self, expr: &Expr, earlier_fields: &[&str], span: Span) {
        match &expr.kind {
            ExprKind::Int(v) => {
                if *v < 0 {
                    self.error("field size must be non-negative", span);
                }
            }
            ExprKind::Ident(name) => {
                if !earlier_fields.contains(&name.as_str()) {
                    self.error(
                        format!(
                            "size expression references `{name}`, which is not an earlier field"
                        ),
                        span,
                    );
                }
            }
            ExprKind::Binary { lhs, rhs, op } => {
                if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) {
                    self.error("size expressions may only use +, - and *", span);
                }
                self.check_size_expr(lhs, earlier_fields, span);
                self.check_size_expr(rhs, earlier_fields, span);
            }
            _ => self.error("unsupported size expression", span),
        }
    }

    fn collect_signatures(&mut self) {
        for f in &self.program.functions {
            let params: Vec<(String, Type)> = f
                .params
                .iter()
                .map(|p| (p.name.clone(), self.resolve(&p.ty, p.span)))
                .collect();
            let ret = match f.ret.len() {
                0 => Type::Unit,
                1 => self.resolve(&f.ret[0], f.span),
                _ => {
                    self.error("functions may return at most one value", f.span);
                    Type::Unit
                }
            };
            self.functions
                .insert(f.name.clone(), FunSig { params, ret });
        }
        for p in &self.program.processes {
            let params: Vec<(String, Type)> = p
                .params
                .iter()
                .map(|param| {
                    let ty = self.resolve(&param.ty, param.span);
                    if !ty.is_channel_like() {
                        self.error(
                            format!(
                                "process parameter `{}` must be a channel, found {ty}",
                                param.name
                            ),
                            param.span,
                        );
                    }
                    (param.name.clone(), ty)
                })
                .collect();
            self.processes.insert(
                p.name.clone(),
                ProcSig {
                    params,
                    globals: Vec::new(),
                },
            );
        }
    }

    // ----- bodies -------------------------------------------------------------

    fn check_functions(&mut self) {
        for f in &self.program.functions {
            let sig = self
                .functions
                .get(&f.name)
                .cloned()
                .expect("signature collected");
            let mut scope: Scope = sig.params.iter().cloned().collect();
            let last_ty = self.check_block(&f.body, &mut scope, Some(&f.name));
            if sig.ret != Type::Unit {
                if let Some(t) = last_ty {
                    if !sig.ret.accepts(&t) && t != Type::Unit {
                        self.error(
                            format!(
                                "function `{}` declares return type {} but its final expression has type {t}",
                                f.name, sig.ret
                            ),
                            f.span,
                        );
                    }
                }
            }
        }
    }

    fn check_processes(&mut self) {
        for p in &self.program.processes {
            let sig = self
                .processes
                .get(&p.name)
                .cloned()
                .expect("signature collected");
            let mut scope: Scope = sig.params.iter().cloned().collect();
            self.check_block(&p.body, &mut scope, None);
            // Collect globals declared in the body into the process signature.
            let mut globals = Vec::new();
            for stmt in &p.body.stmts {
                if let Stmt::Global { name, .. } = stmt {
                    if let Some(ty) = scope.get(name) {
                        globals.push((name.clone(), ty.clone()));
                    }
                }
            }
            if let Some(entry) = self.processes.get_mut(&p.name) {
                entry.globals = globals;
            }
        }
    }

    /// Checks a block and returns the type of its final expression statement,
    /// if the block ends in one.
    fn check_block(&mut self, block: &Block, scope: &mut Scope, fun: Option<&str>) -> Option<Type> {
        let mut last = None;
        for stmt in &block.stmts {
            last = self.check_stmt(stmt, scope, fun);
        }
        last
    }

    fn check_stmt(&mut self, stmt: &Stmt, scope: &mut Scope, fun: Option<&str>) -> Option<Type> {
        match stmt {
            Stmt::Global { name, init, span } => {
                if fun.is_some() {
                    self.error(
                        "`global` declarations are only allowed in process bodies",
                        *span,
                    );
                }
                let ty = self.check_expr(init, scope);
                scope.insert(name.clone(), ty);
                None
            }
            Stmt::Let {
                name,
                value,
                span: _,
            } => {
                let ty = self.check_expr(value, scope);
                scope.insert(name.clone(), ty);
                None
            }
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let value_ty = self.check_expr(value, scope);
                match &target.kind {
                    ExprKind::Index(base, key) => {
                        let base_ty = self.check_expr(base, scope);
                        let key_ty = self.check_expr(key, scope);
                        match base_ty.deref() {
                            Type::Dict(k, v) => {
                                if !k.accepts(&key_ty) {
                                    self.error(
                                        format!("dictionary key has type {key_ty}, expected {k}"),
                                        *span,
                                    );
                                }
                                if !v.accepts(&value_ty) {
                                    self.error(
                                        format!(
                                            "dictionary value has type {value_ty}, expected {v}"
                                        ),
                                        *span,
                                    );
                                }
                            }
                            Type::List(v) => {
                                if !v.accepts(&value_ty) {
                                    self.error(
                                        format!("list element has type {value_ty}, expected {v}"),
                                        *span,
                                    );
                                }
                            }
                            other => self.error(
                                format!("cannot index-assign into a value of type {other}"),
                                *span,
                            ),
                        }
                    }
                    ExprKind::Ident(name) => {
                        if let Some(existing) = scope.get(name).cloned() {
                            if !existing.accepts(&value_ty) {
                                self.error(
                                    format!(
                                        "cannot assign {value_ty} to `{name}` of type {existing}"
                                    ),
                                    *span,
                                );
                            }
                        } else {
                            scope.insert(name.clone(), value_ty);
                        }
                    }
                    _ => self.error("invalid assignment target", *span),
                }
                None
            }
            Stmt::Pipeline { stages, span } => {
                self.check_pipeline(stages, scope, *span);
                None
            }
            Stmt::If {
                cond,
                then,
                els,
                span,
            } => {
                let cond_ty = self.check_expr(cond, scope);
                if !Type::Bool.accepts(&cond_ty) {
                    self.error(format!("if condition must be bool, found {cond_ty}"), *span);
                }
                let mut then_scope = scope.clone();
                let then_ty = self.check_block(then, &mut then_scope, fun);
                let els_ty = els.as_ref().and_then(|b| {
                    let mut els_scope = scope.clone();
                    self.check_block(b, &mut els_scope, fun)
                });
                match (then_ty, els_ty) {
                    (Some(a), Some(b)) if a.accepts(&b) || b.accepts(&a) => Some(a),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (Some(a), Some(_)) => Some(a),
                    (None, None) => None,
                }
            }
            Stmt::For {
                var,
                iter,
                body,
                span,
            } => {
                let iter_ty = self.check_expr(iter, scope);
                let elem = match iter_ty.deref() {
                    Type::List(e) => (**e).clone(),
                    Type::ChannelArray { value, .. } => Type::Channel {
                        value: value.clone(),
                        can_read: true,
                        can_write: true,
                    },
                    Type::Str => Type::Str,
                    other => {
                        self.error(
                            format!("`for` may only iterate over finite lists, found {other}"),
                            *span,
                        );
                        Type::NoneType
                    }
                };
                let mut body_scope = scope.clone();
                body_scope.insert(var.clone(), elem);
                self.check_block(body, &mut body_scope, fun);
                None
            }
            Stmt::Expr { expr, .. } => Some(self.check_expr(expr, scope)),
        }
    }

    /// Checks a routing pipeline `src => f(args) => ... => sink`.
    fn check_pipeline(&mut self, stages: &[Expr], scope: &mut Scope, span: Span) {
        if stages.len() < 2 {
            self.error("a pipeline needs a source and a destination", span);
            return;
        }
        // The value type flowing between stages.
        let mut flowing: Type = {
            let first = &stages[0];
            let ty = self.check_expr(first, scope);
            match ty.deref() {
                Type::Channel {
                    value, can_read, ..
                }
                | Type::ChannelArray {
                    value, can_read, ..
                } => {
                    if !can_read {
                        self.error(
                            format!(
                                "channel `{}` is write-only and cannot be a pipeline source",
                                first.as_ident().unwrap_or("<expr>")
                            ),
                            first.span,
                        );
                    }
                    (**value).clone()
                }
                _ => ty,
            }
        };
        for stage in &stages[1..stages.len() - 1] {
            flowing = self.check_pipeline_function(stage, &flowing, scope);
        }
        // The final stage: a writable channel or a consuming function.
        let last = stages.last().expect("pipeline has at least two stages");
        match &last.kind {
            ExprKind::Call { .. } => {
                self.check_pipeline_function(last, &flowing, scope);
            }
            _ => {
                let ty = self.check_expr(last, scope);
                match ty.deref() {
                    Type::Channel {
                        value, can_write, ..
                    }
                    | Type::ChannelArray {
                        value, can_write, ..
                    } => {
                        if !can_write {
                            self.error(
                                format!(
                                    "channel `{}` is read-only and cannot be a pipeline destination",
                                    last.as_ident().unwrap_or("<expr>")
                                ),
                                last.span,
                            );
                        }
                        if !value.accepts(&flowing) {
                            self.error(
                                format!("pipeline sends {flowing} into a channel of {value}"),
                                last.span,
                            );
                        }
                    }
                    other => self.error(
                        format!(
                            "pipeline destination must be a channel or function, found {other}"
                        ),
                        last.span,
                    ),
                }
            }
        }
    }

    /// Checks one function stage of a pipeline: the piped value is passed as
    /// the function's final parameter. Returns the type produced by the stage.
    fn check_pipeline_function(
        &mut self,
        stage: &Expr,
        incoming: &Type,
        scope: &mut Scope,
    ) -> Type {
        match &stage.kind {
            ExprKind::Call { name, args } => {
                if let Some(sig) = self.functions.get(name).cloned() {
                    let expected = sig.params.len();
                    if args.len() + 1 != expected {
                        self.error(
                            format!(
                                "pipeline stage `{name}` expects {expected} arguments ({} explicit plus the piped value), found {}",
                                expected.saturating_sub(1),
                                args.len()
                            ),
                            stage.span,
                        );
                    } else {
                        for (arg, (pname, pty)) in args.iter().zip(sig.params.iter()) {
                            let aty = self.check_expr(arg, scope);
                            if !pty.accepts(&aty) {
                                self.error(
                                    format!(
                                        "argument `{pname}` of `{name}` expects {pty}, found {aty}"
                                    ),
                                    arg.span,
                                );
                            }
                        }
                        let (lname, lty) = &sig.params[expected - 1];
                        if !lty.accepts(incoming) {
                            self.error(
                                format!(
                                    "piped value has type {incoming} but `{name}` expects {lty} for parameter `{lname}`"
                                ),
                                stage.span,
                            );
                        }
                    }
                    sig.ret
                } else {
                    self.error(format!("unknown function `{name}` in pipeline"), stage.span);
                    Type::NoneType
                }
            }
            _ => {
                self.error(
                    "intermediate pipeline stages must be function calls",
                    stage.span,
                );
                Type::NoneType
            }
        }
    }

    // ----- expressions ----------------------------------------------------------

    fn check_expr(&mut self, expr: &Expr, scope: &mut Scope) -> Type {
        match &expr.kind {
            ExprKind::Int(_) => Type::Int,
            ExprKind::Str(_) => Type::Str,
            ExprKind::Bool(_) => Type::Bool,
            ExprKind::None => Type::NoneType,
            ExprKind::Ident(name) => {
                if let Some(t) = scope.get(name) {
                    t.clone()
                } else if name == "empty_dict" {
                    Type::Dict(Box::new(Type::NoneType), Box::new(Type::NoneType))
                } else {
                    self.error(format!("unknown variable `{name}`"), expr.span);
                    Type::NoneType
                }
            }
            ExprKind::Field(base, field) => {
                let base_ty = self.check_expr(base, scope);
                match base_ty.deref() {
                    Type::Record(record_name) => {
                        let info = self.records.get(record_name).cloned();
                        match info.as_ref().and_then(|r| r.field(field)) {
                            Some(f) => f.ty.clone(),
                            None => {
                                self.error(
                                    format!("record `{record_name}` has no field `{field}`"),
                                    expr.span,
                                );
                                Type::NoneType
                            }
                        }
                    }
                    Type::NoneType => Type::NoneType,
                    other => {
                        self.error(
                            format!("cannot access field `{field}` of {other}"),
                            expr.span,
                        );
                        Type::NoneType
                    }
                }
            }
            ExprKind::Index(base, index) => {
                let base_ty = self.check_expr(base, scope);
                let index_ty = self.check_expr(index, scope);
                match base_ty.deref() {
                    Type::List(e) => {
                        if !Type::Int.accepts(&index_ty) {
                            self.error(
                                format!("list index must be integer, found {index_ty}"),
                                expr.span,
                            );
                        }
                        (**e).clone()
                    }
                    Type::ChannelArray {
                        value,
                        can_read,
                        can_write,
                    } => {
                        if !Type::Int.accepts(&index_ty) {
                            self.error(
                                format!("channel-array index must be integer, found {index_ty}"),
                                expr.span,
                            );
                        }
                        Type::Channel {
                            value: value.clone(),
                            can_read: *can_read,
                            can_write: *can_write,
                        }
                    }
                    Type::Dict(k, v) => {
                        if !k.accepts(&index_ty) {
                            self.error(
                                format!("dictionary key must be {k}, found {index_ty}"),
                                expr.span,
                            );
                        }
                        (**v).clone()
                    }
                    Type::NoneType => Type::NoneType,
                    other => {
                        self.error(
                            format!("cannot index into a value of type {other}"),
                            expr.span,
                        );
                        Type::NoneType
                    }
                }
            }
            ExprKind::Call { name, args } => self.check_call(name, args, expr.span, scope),
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs, scope);
                let rt = self.check_expr(rhs, scope);
                if op.is_comparison() {
                    if !(lt.accepts(&rt) || rt.accepts(&lt)) {
                        self.error(format!("cannot compare {lt} with {rt}"), expr.span);
                    }
                    Type::Bool
                } else if op.is_logical() {
                    if !Type::Bool.accepts(&lt) || !Type::Bool.accepts(&rt) {
                        self.error("logical operators require boolean operands", expr.span);
                    }
                    Type::Bool
                } else {
                    // Arithmetic; `+` also concatenates strings.
                    if *op == BinOp::Add && lt.deref() == &Type::Str && rt.deref() == &Type::Str {
                        Type::Str
                    } else {
                        if !Type::Int.accepts(&lt) || !Type::Int.accepts(&rt) {
                            self.error(
                                format!(
                                    "arithmetic requires integer operands, found {lt} and {rt}"
                                ),
                                expr.span,
                            );
                        }
                        Type::Int
                    }
                }
            }
            ExprKind::Unary { op, operand } => {
                let t = self.check_expr(operand, scope);
                match op {
                    UnOp::Neg => {
                        if !Type::Int.accepts(&t) {
                            self.error(
                                format!("negation requires an integer, found {t}"),
                                expr.span,
                            );
                        }
                        Type::Int
                    }
                    UnOp::Not => {
                        if !Type::Bool.accepts(&t) {
                            self.error(format!("`not` requires a boolean, found {t}"), expr.span);
                        }
                        Type::Bool
                    }
                }
            }
            ExprKind::Foldt {
                channels,
                binders,
                elem_name,
                order_key,
                key_name,
                body,
            } => {
                let chan_ty = self.check_expr(channels, scope);
                let elem_ty = match chan_ty.deref() {
                    Type::ChannelArray {
                        value, can_read, ..
                    } => {
                        if !can_read {
                            self.error("foldt requires readable channels", expr.span);
                        }
                        (**value).clone()
                    }
                    other => {
                        self.error(
                            format!("foldt operates on a channel array, found {other}"),
                            expr.span,
                        );
                        Type::NoneType
                    }
                };
                // The ordering key is typed with `elem_name` bound to the element type.
                let mut order_scope = scope.clone();
                order_scope.insert(elem_name.clone(), elem_ty.clone());
                let key_ty = self.check_expr(order_key, &mut order_scope);
                // The body sees both element binders and the shared key.
                let mut body_scope = scope.clone();
                body_scope.insert(binders.0.clone(), elem_ty.clone());
                body_scope.insert(binders.1.clone(), elem_ty.clone());
                body_scope.insert(key_name.clone(), key_ty);
                let body_ty = self.check_block(body, &mut body_scope, Some("foldt"));
                if let Some(bt) = &body_ty {
                    if !elem_ty.accepts(bt) {
                        self.error(
                            format!("foldt body must produce {elem_ty}, found {bt}"),
                            expr.span,
                        );
                    }
                }
                elem_ty
            }
        }
    }

    fn check_call(&mut self, name: &str, args: &[Expr], span: Span, scope: &mut Scope) -> Type {
        // Record constructor?
        if let Some(record) = self.records.get(name).cloned() {
            let named: Vec<&FieldInfo> = record.named_fields().collect();
            if args.len() != named.len() {
                self.error(
                    format!(
                        "constructor `{name}` expects {} arguments (one per named field), found {}",
                        named.len(),
                        args.len()
                    ),
                    span,
                );
            }
            for (arg, field) in args.iter().zip(named.iter()) {
                let at = self.check_expr(arg, scope);
                if !field.ty.accepts(&at) {
                    self.error(
                        format!(
                            "field `{}` of `{name}` expects {}, found {at}",
                            field.name.as_deref().unwrap_or("_"),
                            field.ty
                        ),
                        arg.span,
                    );
                }
            }
            return Type::Record(name.to_string());
        }
        // Builtins.
        if HIGHER_ORDER_BUILTINS.contains(&name) {
            return self.check_higher_order(name, args, span, scope);
        }
        match name {
            "hash" => {
                for a in args {
                    self.check_expr(a, scope);
                }
                if args.is_empty() {
                    self.error("`hash` expects at least one argument", span);
                }
                Type::Int
            }
            "len" | "size" => {
                if args.len() != 1 {
                    self.error(format!("`{name}` expects exactly one argument"), span);
                    return Type::Int;
                }
                let t = self.check_expr(&args[0], scope);
                if !matches!(
                    t.deref(),
                    Type::List(_)
                        | Type::ChannelArray { .. }
                        | Type::Str
                        | Type::Dict(_, _)
                        | Type::NoneType
                ) {
                    self.error(
                        format!("`{name}` expects a list, string or dictionary, found {t}"),
                        span,
                    );
                }
                Type::Int
            }
            "all_ready" => {
                if args.len() != 1 {
                    self.error("`all_ready` expects exactly one argument", span);
                } else {
                    let t = self.check_expr(&args[0], scope);
                    if !matches!(t.deref(), Type::ChannelArray { .. } | Type::Channel { .. }) {
                        self.error(format!("`all_ready` expects channels, found {t}"), span);
                    }
                }
                Type::Bool
            }
            "empty_dict" => Type::Dict(Box::new(Type::NoneType), Box::new(Type::NoneType)),
            "str" => {
                for a in args {
                    self.check_expr(a, scope);
                }
                Type::Str
            }
            "int" => {
                for a in args {
                    self.check_expr(a, scope);
                }
                Type::Int
            }
            _ => {
                // User-defined function call.
                if let Some(sig) = self.functions.get(name).cloned() {
                    if args.len() != sig.params.len() {
                        self.error(
                            format!(
                                "function `{name}` expects {} arguments, found {}",
                                sig.params.len(),
                                args.len()
                            ),
                            span,
                        );
                    }
                    for (arg, (pname, pty)) in args.iter().zip(sig.params.iter()) {
                        let at = self.check_expr(arg, scope);
                        if !pty.accepts(&at) {
                            self.error(
                                format!("argument `{pname}` of `{name}` expects {pty}, found {at}"),
                                arg.span,
                            );
                        }
                    }
                    sig.ret
                } else if BUILTINS.contains(&name) {
                    Type::NoneType
                } else {
                    self.error(format!("unknown function `{name}`"), span);
                    Type::NoneType
                }
            }
        }
    }

    /// Checks `fold(f, init, xs)`, `map(f, xs)` and `filter(f, xs)`.
    fn check_higher_order(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        scope: &mut Scope,
    ) -> Type {
        let expected_args = if name == "fold" { 3 } else { 2 };
        if args.len() != expected_args {
            self.error(format!("`{name}` expects {expected_args} arguments"), span);
            return Type::NoneType;
        }
        let fname = match args[0].as_ident() {
            Some(f) => f.to_string(),
            None => {
                self.error(
                    format!("the first argument of `{name}` must be a function name"),
                    args[0].span,
                );
                return Type::NoneType;
            }
        };
        let Some(sig) = self.functions.get(&fname).cloned() else {
            self.error(
                format!("unknown function `{fname}` passed to `{name}`"),
                args[0].span,
            );
            return Type::NoneType;
        };
        let list_arg = &args[expected_args - 1];
        let list_ty = self.check_expr(list_arg, scope);
        let elem_ty = match list_ty.deref() {
            Type::List(e) => (**e).clone(),
            Type::Str => Type::Str,
            other => {
                self.error(
                    format!("`{name}` iterates over a finite list, found {other}"),
                    list_arg.span,
                );
                Type::NoneType
            }
        };
        match name {
            "fold" => {
                // fold(f, init, xs): f(acc, elem) -> acc
                let init_ty = self.check_expr(&args[1], scope);
                if sig.params.len() != 2 {
                    self.error(
                        format!("`{fname}` must take (accumulator, element) for fold"),
                        span,
                    );
                } else {
                    if !sig.params[0].1.accepts(&init_ty) {
                        self.error(
                            format!(
                                "fold initialiser has type {init_ty}, expected {}",
                                sig.params[0].1
                            ),
                            args[1].span,
                        );
                    }
                    if !sig.params[1].1.accepts(&elem_ty) {
                        self.error(
                            format!(
                                "fold element has type {elem_ty}, expected {}",
                                sig.params[1].1
                            ),
                            list_arg.span,
                        );
                    }
                }
                sig.ret
            }
            "map" => {
                if sig.params.len() != 1 {
                    self.error(
                        format!("`{fname}` must take a single element for map"),
                        span,
                    );
                } else if !sig.params[0].1.accepts(&elem_ty) {
                    self.error(
                        format!(
                            "map element has type {elem_ty}, expected {}",
                            sig.params[0].1
                        ),
                        list_arg.span,
                    );
                }
                Type::List(Box::new(sig.ret))
            }
            _ => {
                // filter
                if sig.params.len() != 1 {
                    self.error(
                        format!("`{fname}` must take a single element for filter"),
                        span,
                    );
                } else if !Type::Bool.accepts(&sig.ret) {
                    self.error(
                        format!("`{fname}` must return bool to be used with filter"),
                        span,
                    );
                }
                Type::List(Box::new(elem_ty))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_ast;

    #[test]
    fn memcached_proxy_type_checks() {
        let src = r#"
type cmd: record
  key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
  backends => client
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;
        let typed = compile_to_ast(src).unwrap();
        let sig = typed.function("target_backend").unwrap();
        assert_eq!(sig.ret, Type::Unit);
        assert_eq!(sig.params.len(), 2);
        let psig = typed.process("Memcached").unwrap();
        assert_eq!(psig.params.len(), 2);
    }

    #[test]
    fn cache_router_with_global_type_checks() {
        let src = r#"
type cmd: record
  opcode : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc memcached: (cmd/cmd client, [cmd/cmd] backends)
  global cache := empty_dict
  backends => update_cache(cache) => client
  client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*cmd>, resp: cmd) -> (cmd)
  if resp.opcode = 12:
    cache[resp.key] := resp
  resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd) -> ()
  if cache[req.key] = None or req.opcode <> 12:
    let target = hash(req.key) mod len(backends)
    req => backends[target]
  else:
    cache[req.key] => client
"#;
        let typed = compile_to_ast(src).unwrap();
        let psig = typed.process("memcached").unwrap();
        assert_eq!(psig.globals.len(), 1);
        assert_eq!(psig.globals[0].0, "cache");
    }

    #[test]
    fn hadoop_foldt_type_checks() {
        let src = r#"
type kv: record
  key : string
  value : string

proc hadoop: ([kv/-] mappers, -/kv reducer):
  if all_ready(mappers):
    let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
      let v = combine(e1.value, e2.value)
      kv(e_key, v)
    result => reducer

fun combine: (v1: string, v2: string) -> (string)
  v1 + v2
"#;
        let typed = compile_to_ast(src).unwrap();
        assert!(typed.record("kv").is_some());
    }

    #[test]
    fn rejects_read_from_write_only_channel() {
        let src = r#"
type cmd: record
  key : string

proc P: (-/cmd out, cmd/- inp)
  out => inp
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("write-only"), "got {err}");
    }

    #[test]
    fn rejects_write_to_read_only_channel() {
        let src = r#"
type cmd: record
  key : string

proc P: (cmd/cmd client, cmd/- inp)
  client => inp
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("read-only"), "got {err}");
    }

    #[test]
    fn rejects_unknown_field() {
        let src = r#"
type cmd: record
  key : string

fun f: (req: cmd) -> (string)
  req.missing
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("no field"), "got {err}");
    }

    #[test]
    fn rejects_size_referencing_later_field() {
        let src = r#"
type cmd: record
  key : string {size=keylen}
  keylen : integer {size=2}

fun f: (req: cmd) -> (string)
  req.key
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("earlier field"), "got {err}");
    }

    #[test]
    fn rejects_arity_mismatch_in_pipeline() {
        let src = r#"
type cmd: record
  key : string

proc P: (cmd/cmd client, [cmd/cmd] backends)
  client => route(backends, client)

fun route: ([-/cmd] backends, req: cmd) -> ()
  req => backends[0]
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("piped value"), "got {err}");
    }

    #[test]
    fn rejects_non_channel_process_param() {
        let src = r#"
proc P: (x: integer)
  x
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("must be a channel"), "got {err}");
    }

    #[test]
    fn fold_map_filter_are_typed() {
        let src = r#"
fun add: (acc: integer, x: integer) -> (integer)
  acc + x

fun double: (x: integer) -> (integer)
  x * 2

fun is_big: (x: integer) -> (bool)
  x > 10

fun pipeline_funcs: (xs: [integer]) -> (integer)
  let doubled = map(double, xs)
  let big = filter(is_big, doubled)
  fold(add, 0, big)
"#;
        let typed = compile_to_ast(src).unwrap();
        assert_eq!(typed.function("pipeline_funcs").unwrap().ret, Type::Int);
    }

    #[test]
    fn rejects_unknown_function_in_fold() {
        let src = r#"
fun total: (xs: [integer]) -> (integer)
  fold(nonexistent, 0, xs)
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("unknown function"), "got {err}");
    }

    #[test]
    fn string_concatenation_is_string() {
        let src = r#"
fun cat: (a: string, b: string) -> (string)
  a + b
"#;
        let typed = compile_to_ast(src).unwrap();
        assert_eq!(typed.function("cat").unwrap().ret, Type::Str);
    }

    #[test]
    fn record_constructor_checks_field_types() {
        let src = r#"
type kv: record
  key : string
  value : string

fun make: (k: string) -> (kv)
  kv(k, 42)
"#;
        let err = compile_to_ast(src).unwrap_err();
        assert!(format!("{err}").contains("expects string"), "got {err}");
    }
}
