//! Hadoop intermediate key/value record grammar.
//!
//! The Hadoop data aggregator (Listing 3 and §6.1 of the paper) consumes the
//! stream of intermediate results produced by mappers: a sequence of
//! key/value pairs in the Hadoop intermediate file ("IFile"-style) wire
//! format. We model each record as a length-prefixed key and value, which is
//! the shape the paper's `kv` FLICK type maps onto:
//!
//! ```text
//! key_len   : u32 (big endian)
//! value_len : u32 (big endian)
//! key       : key_len bytes (UTF-8 word for the wordcount workload)
//! value     : value_len bytes (decimal count for the wordcount workload)
//! ```

use crate::engine::GrammarCodec;
use crate::error::GrammarError;
use crate::message::{Message, MsgValue};
use crate::model::{FieldKind, GrammarItem, LenExpr, UnitGrammar};
use crate::projection::Projection;
use crate::{ParseOutcome, WireCodec};

/// Builds the `kv` unit grammar for Hadoop intermediate records.
pub fn grammar() -> UnitGrammar {
    UnitGrammar::new("kv")
        .item(GrammarItem::field("key_len", FieldKind::UInt { width: 4 }))
        .item(GrammarItem::field(
            "value_len",
            FieldKind::UInt { width: 4 },
        ))
        .item(GrammarItem::field(
            "key",
            FieldKind::Str {
                length: LenExpr::field("key_len"),
            },
        ))
        .item(GrammarItem::field(
            "value",
            FieldKind::Str {
                length: LenExpr::field("value_len"),
            },
        ))
        .ser_rule("key_len", LenExpr::LenOf("key".into()))
        .ser_rule("value_len", LenExpr::LenOf("value".into()))
}

/// A [`WireCodec`] for Hadoop intermediate key/value records.
#[derive(Debug, Clone)]
pub struct HadoopKvCodec {
    inner: GrammarCodec,
}

impl HadoopKvCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        HadoopKvCodec {
            inner: GrammarCodec::new(grammar()).expect("built-in grammar is valid"),
        }
    }

    /// Creates the codec with explicit parse bounds.
    pub fn with_limits(limits: crate::ParseLimits) -> Self {
        HadoopKvCodec {
            inner: GrammarCodec::with_limits(grammar(), limits).expect("built-in grammar is valid"),
        }
    }
}

impl Default for HadoopKvCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl WireCodec for HadoopKvCodec {
    fn name(&self) -> &str {
        "hadoop-kv"
    }

    fn parse(
        &self,
        buf: &[u8],
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        self.inner.parse(buf, projection)
    }

    fn parse_bytes(
        &self,
        buf: &bytes::Bytes,
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        self.inner.parse_shared(buf, projection)
    }

    fn serialize(&self, msg: &Message, out: &mut Vec<u8>) -> Result<(), GrammarError> {
        self.inner.serialize(msg, out)
    }
}

/// Builds a `kv` message from a key and value.
pub fn kv(key: &str, value: &str) -> Message {
    let mut m = Message::with_capacity("kv", 2);
    m.set("key", MsgValue::Str(key.to_string()));
    m.set("value", MsgValue::Str(value.to_string()));
    m
}

/// Builds a `kv` message whose value is a decimal counter, as produced by the
/// wordcount workload.
pub fn count_kv(key: &str, count: u64) -> Message {
    kv(key, &count.to_string())
}

/// Parses the decimal counter of a wordcount `kv` message.
pub fn count_of(msg: &Message) -> Option<u64> {
    msg.str_field("value").and_then(|v| v.parse().ok())
}

/// Serialises a whole batch of records into one byte stream.
pub fn serialize_batch(
    codec: &HadoopKvCodec,
    records: &[Message],
) -> Result<Vec<u8>, GrammarError> {
    let mut out = Vec::new();
    for r in records {
        codec.serialize(r, &mut out)?;
    }
    Ok(out)
}

/// Parses every record in a byte stream.
pub fn parse_batch(codec: &HadoopKvCodec, mut buf: &[u8]) -> Result<Vec<Message>, GrammarError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        match codec.parse(buf, None)? {
            ParseOutcome::Complete { message, consumed } => {
                out.push(message);
                buf = &buf[consumed..];
            }
            ParseOutcome::Incomplete { .. } => {
                return Err(GrammarError::malformed(
                    "kv",
                    "truncated record at end of stream",
                ))
            }
        }
    }
    Ok(out)
}

/// Returns the serialised size of one record without serialising it.
pub fn record_wire_len(key: &str, value: &str) -> usize {
    8 + key.len() + value.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_record() {
        let codec = HadoopKvCodec::new();
        let record = count_kv("elephant", 3);
        let mut wire = Vec::new();
        codec.serialize(&record, &mut wire).unwrap();
        assert_eq!(wire.len(), record_wire_len("elephant", "3"));
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(message.str_field("key"), Some("elephant"));
                assert_eq!(count_of(&message), Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let codec = HadoopKvCodec::new();
        let records = vec![count_kv("a", 1), count_kv("bb", 22), count_kv("ccc", 333)];
        let wire = serialize_batch(&codec, &records).unwrap();
        let parsed = parse_batch(&codec, &wire).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[1].str_field("key"), Some("bb"));
        assert_eq!(count_of(&parsed[2]), Some(333));
    }

    #[test]
    fn truncated_batch_is_an_error() {
        let codec = HadoopKvCodec::new();
        let wire = serialize_batch(&codec, &[count_kv("word", 9)]).unwrap();
        assert!(parse_batch(&codec, &wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn empty_key_and_value_are_legal() {
        let codec = HadoopKvCodec::new();
        let mut wire = Vec::new();
        codec.serialize(&kv("", ""), &mut wire).unwrap();
        assert_eq!(wire.len(), 8);
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.str_field("key"), Some(""));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_of_rejects_non_numeric_values() {
        assert_eq!(count_of(&kv("w", "not-a-number")), None);
    }

    /// A record whose `key_len` is maxed out is malformed, not a request
    /// to buffer 4 GiB.
    #[test]
    fn hostile_key_len_is_malformed() {
        let codec = HadoopKvCodec::new();
        let mut wire = Vec::new();
        codec.serialize(&kv("word", "1"), &mut wire).unwrap();
        wire[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(codec.parse(&wire, None).is_err());
    }
}
