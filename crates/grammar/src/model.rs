//! The grammar model: units, fields, variables and length expressions.
//!
//! A [`UnitGrammar`] describes how one message type is laid out on the wire.
//! It mirrors the constructs of Listing 2 in the paper: fixed-size integer
//! fields, variable-size byte/string fields whose length is given by an
//! expression over earlier fields, computed variables, anonymous (skipped)
//! fields and a unit-wide byte order.

use crate::error::GrammarError;
use std::collections::HashMap;

/// Byte order of multi-byte integer fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByteOrder {
    /// Network byte order (the default, as in Listing 2's `%byteorder = big`).
    #[default]
    Big,
    /// Little-endian byte order.
    Little,
}

/// An integer expression over previously parsed fields and variables.
///
/// Length expressions are evaluated during parsing to size variable-length
/// fields, and during serialisation to recompute length-bearing fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LenExpr {
    /// A constant number of bytes.
    Const(u64),
    /// The value of a previously parsed integer field or variable.
    Field(String),
    /// The serialised byte length of a (possibly later) byte/string field.
    ///
    /// Only meaningful during serialisation, where actual field sizes are
    /// known; using it during parsing is an [`GrammarError::InvalidGrammar`].
    LenOf(String),
    /// Sum of two expressions.
    Add(Box<LenExpr>, Box<LenExpr>),
    /// Difference of two expressions (saturating at zero is **not** applied;
    /// a negative result is a malformed-message error).
    Sub(Box<LenExpr>, Box<LenExpr>),
    /// Product of two expressions.
    Mul(Box<LenExpr>, Box<LenExpr>),
}

impl LenExpr {
    /// Convenience constructor: `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: LenExpr, b: LenExpr) -> LenExpr {
        LenExpr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: LenExpr, b: LenExpr) -> LenExpr {
        LenExpr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: a field reference.
    pub fn field(name: impl Into<String>) -> LenExpr {
        LenExpr::Field(name.into())
    }

    /// Evaluates the expression against an environment of known values.
    ///
    /// `unit` is used for error reporting only.
    pub fn eval(&self, env: &HashMap<String, u64>, unit: &str) -> Result<u64, GrammarError> {
        match self {
            LenExpr::Const(v) => Ok(*v),
            LenExpr::Field(name) | LenExpr::LenOf(name) => {
                env.get(name).copied().ok_or_else(|| {
                    GrammarError::invalid(
                        unit,
                        format!("length expression references unknown field `{name}`"),
                    )
                })
            }
            LenExpr::Add(a, b) => Ok(a.eval(env, unit)?.saturating_add(b.eval(env, unit)?)),
            LenExpr::Sub(a, b) => {
                let (av, bv) = (a.eval(env, unit)?, b.eval(env, unit)?);
                if bv > av {
                    Err(GrammarError::malformed(
                        unit,
                        format!("length expression underflow: {av} - {bv}"),
                    ))
                } else {
                    Ok(av - bv)
                }
            }
            LenExpr::Mul(a, b) => Ok(a.eval(env, unit)?.saturating_mul(b.eval(env, unit)?)),
        }
    }

    /// Returns the names of fields referenced via [`LenExpr::LenOf`].
    pub fn len_of_refs(&self, out: &mut Vec<String>) {
        match self {
            LenExpr::LenOf(name) => out.push(name.clone()),
            LenExpr::Add(a, b) | LenExpr::Sub(a, b) | LenExpr::Mul(a, b) => {
                a.len_of_refs(out);
                b.len_of_refs(out);
            }
            _ => {}
        }
    }
}

/// The wire representation of a single field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// An unsigned integer of 1, 2, 4 or 8 bytes.
    UInt {
        /// Width in bytes.
        width: u8,
    },
    /// A signed (two's-complement) integer of 1, 2, 4 or 8 bytes.
    Int {
        /// Width in bytes.
        width: u8,
    },
    /// A raw byte field whose length is given by an expression.
    Bytes {
        /// The length in bytes.
        length: LenExpr,
    },
    /// A text field whose length is given by an expression.
    Str {
        /// The length in bytes.
        length: LenExpr,
    },
}

impl FieldKind {
    /// The fixed width of integer kinds, or `None` for variable-size fields.
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            FieldKind::UInt { width } | FieldKind::Int { width } => Some(*width as usize),
            _ => None,
        }
    }
}

/// One item of a unit grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum GrammarItem {
    /// A wire field. An empty name marks an anonymous field that is parsed
    /// (to advance the cursor) but never exposed to programs.
    Field {
        /// Field name, or empty for anonymous fields.
        name: String,
        /// Wire representation.
        kind: FieldKind,
    },
    /// A computed variable: evaluated during parsing from earlier fields and
    /// usable in later length expressions, but occupying no wire bytes.
    Variable {
        /// Variable name.
        name: String,
        /// The parse-time expression (Listing 2's `&parse`).
        parse: LenExpr,
    },
}

impl GrammarItem {
    /// Convenience constructor for a named field.
    pub fn field(name: impl Into<String>, kind: FieldKind) -> Self {
        GrammarItem::Field {
            name: name.into(),
            kind,
        }
    }

    /// Convenience constructor for an anonymous (skipped) field.
    pub fn anonymous(kind: FieldKind) -> Self {
        GrammarItem::Field {
            name: String::new(),
            kind,
        }
    }

    /// Convenience constructor for a computed variable.
    pub fn variable(name: impl Into<String>, parse: LenExpr) -> Self {
        GrammarItem::Variable {
            name: name.into(),
            parse,
        }
    }
}

/// A serialisation rule: before writing the wire bytes, the named integer
/// field is recomputed from the expression (typically from `LenOf` terms).
///
/// This captures Listing 2's `&serialize` annotations, e.g.
/// `total_len = extras_len + key_len + value_len`.
#[derive(Debug, Clone, PartialEq)]
pub struct SerRule {
    /// The integer field to recompute.
    pub field: String,
    /// The expression producing its new value.
    pub expr: LenExpr,
}

/// A complete message grammar for one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitGrammar {
    /// The unit name (also used as the [`crate::Message::unit`] tag).
    pub name: String,
    /// Byte order for integer fields.
    pub byte_order: ByteOrder,
    /// The items, in wire order.
    pub items: Vec<GrammarItem>,
    /// Serialisation rules applied before writing (length recomputation).
    pub ser_rules: Vec<SerRule>,
}

impl UnitGrammar {
    /// Creates a new grammar with network byte order and no items.
    pub fn new(name: impl Into<String>) -> Self {
        UnitGrammar {
            name: name.into(),
            byte_order: ByteOrder::Big,
            items: Vec::new(),
            ser_rules: Vec::new(),
        }
    }

    /// Sets the byte order.
    pub fn byte_order(mut self, order: ByteOrder) -> Self {
        self.byte_order = order;
        self
    }

    /// Appends an item.
    pub fn item(mut self, item: GrammarItem) -> Self {
        self.items.push(item);
        self
    }

    /// Appends a serialisation rule.
    pub fn ser_rule(mut self, field: impl Into<String>, expr: LenExpr) -> Self {
        self.ser_rules.push(SerRule {
            field: field.into(),
            expr,
        });
        self
    }

    /// Returns the named wire fields (excluding anonymous fields and variables).
    pub fn named_fields(&self) -> impl Iterator<Item = (&str, &FieldKind)> {
        self.items.iter().filter_map(|item| match item {
            GrammarItem::Field { name, kind } if !name.is_empty() => Some((name.as_str(), kind)),
            _ => None,
        })
    }

    /// Validates internal consistency: every length expression must reference
    /// only earlier fields or variables (or `LenOf` a field that exists), and
    /// integer widths must be 1, 2, 4 or 8.
    pub fn validate(&self) -> Result<(), GrammarError> {
        let mut known: Vec<&str> = Vec::new();
        let all_fields: Vec<&str> = self
            .items
            .iter()
            .filter_map(|i| match i {
                GrammarItem::Field { name, .. } if !name.is_empty() => Some(name.as_str()),
                _ => None,
            })
            .collect();
        for item in &self.items {
            match item {
                GrammarItem::Field { name, kind } => {
                    match kind {
                        FieldKind::UInt { width } | FieldKind::Int { width } => {
                            if ![1, 2, 4, 8].contains(width) {
                                return Err(GrammarError::invalid(
                                    &self.name,
                                    format!("integer field `{name}` has unsupported width {width}"),
                                ));
                            }
                        }
                        FieldKind::Bytes { length } | FieldKind::Str { length } => {
                            self.check_expr(length, &known, &all_fields)?;
                        }
                    }
                    if !name.is_empty() {
                        known.push(name);
                    }
                }
                GrammarItem::Variable { name, parse } => {
                    self.check_expr(parse, &known, &all_fields)?;
                    known.push(name);
                }
            }
        }
        for rule in &self.ser_rules {
            if !all_fields.contains(&rule.field.as_str()) {
                return Err(GrammarError::invalid(
                    &self.name,
                    format!("serialisation rule targets unknown field `{}`", rule.field),
                ));
            }
            let mut refs = Vec::new();
            rule.expr.len_of_refs(&mut refs);
            for r in refs {
                if !all_fields.contains(&r.as_str()) {
                    return Err(GrammarError::invalid(
                        &self.name,
                        format!("serialisation rule references unknown field `{r}`"),
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_expr(
        &self,
        expr: &LenExpr,
        known: &[&str],
        all_fields: &[&str],
    ) -> Result<(), GrammarError> {
        match expr {
            LenExpr::Const(_) => Ok(()),
            LenExpr::Field(name) => {
                if known.contains(&name.as_str()) {
                    Ok(())
                } else {
                    Err(GrammarError::invalid(
                        &self.name,
                        format!("length expression references `{name}` before it is parsed"),
                    ))
                }
            }
            LenExpr::LenOf(name) => {
                if all_fields.contains(&name.as_str()) {
                    Ok(())
                } else {
                    Err(GrammarError::invalid(
                        &self.name,
                        format!("`len of` references unknown field `{name}`"),
                    ))
                }
            }
            LenExpr::Add(a, b) | LenExpr::Sub(a, b) | LenExpr::Mul(a, b) => {
                self.check_expr(a, known, all_fields)?;
                self.check_expr(b, known, all_fields)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, u64)]) -> HashMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn len_expr_arithmetic() {
        let e = LenExpr::sub(
            LenExpr::field("total_len"),
            LenExpr::add(LenExpr::field("extras_len"), LenExpr::field("key_len")),
        );
        let v = e
            .eval(
                &env(&[("total_len", 30), ("extras_len", 4), ("key_len", 6)]),
                "cmd",
            )
            .unwrap();
        assert_eq!(v, 20);
    }

    #[test]
    fn len_expr_underflow_is_malformed() {
        let e = LenExpr::sub(LenExpr::field("a"), LenExpr::field("b"));
        let err = e.eval(&env(&[("a", 1), ("b", 5)]), "cmd").unwrap_err();
        assert!(matches!(err, GrammarError::Malformed { .. }));
    }

    #[test]
    fn len_expr_unknown_field() {
        let e = LenExpr::field("missing");
        assert!(matches!(
            e.eval(&env(&[]), "cmd"),
            Err(GrammarError::InvalidGrammar { .. })
        ));
    }

    #[test]
    fn validate_accepts_forward_only_references() {
        let g = UnitGrammar::new("t")
            .item(GrammarItem::field("len", FieldKind::UInt { width: 2 }))
            .item(GrammarItem::field(
                "body",
                FieldKind::Bytes {
                    length: LenExpr::field("len"),
                },
            ));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn validate_rejects_reference_before_parse() {
        let g = UnitGrammar::new("t")
            .item(GrammarItem::field(
                "body",
                FieldKind::Bytes {
                    length: LenExpr::field("len"),
                },
            ))
            .item(GrammarItem::field("len", FieldKind::UInt { width: 2 }));
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_width() {
        let g = UnitGrammar::new("t").item(GrammarItem::field("x", FieldKind::UInt { width: 3 }));
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_ser_rule_target() {
        let g = UnitGrammar::new("t")
            .item(GrammarItem::field("len", FieldKind::UInt { width: 2 }))
            .ser_rule("nope", LenExpr::Const(1));
        assert!(g.validate().is_err());
    }

    #[test]
    fn named_fields_excludes_anonymous_and_variables() {
        let g = UnitGrammar::new("t")
            .item(GrammarItem::field("a", FieldKind::UInt { width: 1 }))
            .item(GrammarItem::anonymous(FieldKind::UInt { width: 1 }))
            .item(GrammarItem::variable("v", LenExpr::Const(1)))
            .item(GrammarItem::field("b", FieldKind::UInt { width: 1 }));
        let names: Vec<&str> = g.named_fields().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
