//! The dynamically-typed message representation produced by parsers.
//!
//! Input tasks deserialise the byte stream into [`Message`] values, which are
//! the smallest units appropriate for the service (a complete HTTP request, a
//! Memcached command, a Hadoop key/value pair). A message keeps its raw wire
//! bytes when it was parsed from the network, so that services that forward
//! data unchanged (for example the return path of the HTTP load balancer)
//! never pay for re-serialisation.

use bytes::Bytes;
use std::fmt;

/// A single field value inside a [`Message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgValue {
    /// An unsigned integer field (lengths, opcodes, status codes...).
    UInt(u64),
    /// A signed integer field.
    Int(i64),
    /// A byte-string field (keys, values, bodies).
    Bytes(Bytes),
    /// A text field.
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl MsgValue {
    /// Returns the value as an unsigned integer if it is numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MsgValue::UInt(v) => Some(*v),
            MsgValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns the value as bytes when it is a byte or text field.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            MsgValue::Bytes(b) => Some(b),
            MsgValue::Str(s) => Some(s.as_bytes()),
            _ => None,
        }
    }

    /// Returns the value as text when it is (valid UTF-8) bytes or a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            MsgValue::Str(s) => Some(s),
            MsgValue::Bytes(b) => std::str::from_utf8(b).ok(),
            _ => None,
        }
    }

    /// The number of wire bytes a byte/text value occupies.
    pub fn byte_len(&self) -> usize {
        match self {
            MsgValue::Bytes(b) => b.len(),
            MsgValue::Str(s) => s.len(),
            _ => 0,
        }
    }
}

impl fmt::Display for MsgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgValue::UInt(v) => write!(f, "{v}"),
            MsgValue::Int(v) => write!(f, "{v}"),
            MsgValue::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            MsgValue::Str(s) => write!(f, "{s:?}"),
            MsgValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A parsed application-level message.
///
/// Fields are stored in parse order in a small vector; lookups are linear,
/// which is faster than hashing for the handful of fields real protocol
/// messages carry and avoids any per-message allocation beyond the vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Message {
    /// The unit (grammar) name this message was parsed with.
    pub unit: String,
    /// Field name/value pairs in wire order.
    fields: Vec<(String, MsgValue)>,
    /// The raw wire bytes of the message, when parsed from the network and
    /// unmodified since. Cleared by [`Message::set`] so that serialisation
    /// rebuilds the wire representation.
    raw: Option<Bytes>,
}

impl Message {
    /// Creates an empty message for the given unit.
    pub fn new(unit: impl Into<String>) -> Self {
        Message {
            unit: unit.into(),
            fields: Vec::new(),
            raw: None,
        }
    }

    /// Creates a message with pre-allocated space for `n` fields.
    pub fn with_capacity(unit: impl Into<String>, n: usize) -> Self {
        Message {
            unit: unit.into(),
            fields: Vec::with_capacity(n),
            raw: None,
        }
    }

    /// Returns the number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if the message has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Sets a field, replacing any previous value of the same name.
    ///
    /// Mutating a field invalidates the cached raw wire bytes.
    pub fn set(&mut self, name: impl Into<String>, value: MsgValue) -> &mut Self {
        let name = name.into();
        self.raw = None;
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.fields.push((name, value));
        }
        self
    }

    /// Sets a field without invalidating the raw bytes.
    ///
    /// This is used by parsers, which populate fields that by definition
    /// agree with the raw representation.
    pub(crate) fn set_parsed(&mut self, name: impl Into<String>, value: MsgValue) {
        self.fields.push((name.into(), value));
    }

    /// Returns a field by name.
    pub fn get(&self, name: &str) -> Option<&MsgValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Returns the field at wire-order position `idx` with its name.
    ///
    /// Messages of one grammar unit carry their fields in a fixed parse
    /// order, so consumers that resolve a name to an offset once (the
    /// bytecode VM's field-site caches) can re-read by index and merely
    /// verify the name still matches.
    pub fn field_at(&self, idx: usize) -> Option<(&str, &MsgValue)> {
        self.fields.get(idx).map(|(n, v)| (n.as_str(), v))
    }

    /// Returns a numeric field as `u64`.
    pub fn uint_field(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(MsgValue::as_u64)
    }

    /// Returns a text field as `&str`.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(MsgValue::as_str)
    }

    /// Returns a byte field.
    pub fn bytes_field(&self, name: &str) -> Option<&[u8]> {
        self.get(name).and_then(MsgValue::as_bytes)
    }

    /// Returns a byte field as its refcounted [`Bytes`] handle, so callers
    /// (e.g. the vectored output path) can share the allocation instead of
    /// copying the slice. `None` when the field is absent or not stored as
    /// bytes.
    pub fn shared_bytes_field(&self, name: &str) -> Option<&Bytes> {
        match self.get(name) {
            Some(MsgValue::Bytes(bytes)) => Some(bytes),
            _ => None,
        }
    }

    /// Iterates over `(name, value)` pairs in wire order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MsgValue)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Re-owns every shared byte region of the message: the raw wire
    /// bytes and each byte field are copied into allocations of exactly
    /// their own size.
    ///
    /// Messages parsed zero-copy (`parse_bytes`/`parse_shared`) slice the
    /// input task's refcounted ingest chunk, which is the right shape for
    /// a message that lives for one request — but *retaining* one pins
    /// the whole chunk for its lifetime and forces the connection onto
    /// fresh chunks. Call this before storing a message beyond the
    /// request it arrived in (the runtime's shared dictionaries do it
    /// automatically).
    pub fn compact(&mut self) {
        for (_, value) in &mut self.fields {
            if let MsgValue::Bytes(bytes) = value {
                *bytes = Bytes::copy_from_slice(bytes);
            }
        }
        if let Some(raw) = &mut self.raw {
            *raw = Bytes::copy_from_slice(raw);
        }
    }

    /// Attaches the raw wire bytes this message was parsed from.
    pub fn set_raw(&mut self, raw: Bytes) {
        self.raw = Some(raw);
    }

    /// Returns the raw wire bytes if the message is still unmodified.
    pub fn raw(&self) -> Option<&Bytes> {
        self.raw.as_ref()
    }

    /// Total byte length of the raw representation, if known.
    pub fn wire_len(&self) -> Option<usize> {
        self.raw.as_ref().map(|b| b.len())
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.unit)?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {n}: {v}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = Message::new("cmd");
        m.set("opcode", MsgValue::UInt(0x0c));
        m.set("key", MsgValue::Str("user:1".into()));
        assert_eq!(m.uint_field("opcode"), Some(0x0c));
        assert_eq!(m.str_field("key"), Some("user:1"));
        assert_eq!(m.len(), 2);
        assert!(m.get("missing").is_none());
    }

    #[test]
    fn set_replaces_existing_field() {
        let mut m = Message::new("cmd");
        m.set("key", MsgValue::Str("a".into()));
        m.set("key", MsgValue::Str("b".into()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.str_field("key"), Some("b"));
    }

    #[test]
    fn mutation_clears_raw_bytes() {
        let mut m = Message::new("cmd");
        m.set_raw(Bytes::from_static(b"rawbytes"));
        assert!(m.raw().is_some());
        m.set("key", MsgValue::Str("changed".into()));
        assert!(m.raw().is_none());
    }

    #[test]
    fn parsed_fields_keep_raw_bytes() {
        let mut m = Message::new("cmd");
        m.set_raw(Bytes::from_static(b"rawbytes"));
        m.set_parsed("key", MsgValue::Str("k".into()));
        assert!(m.raw().is_some());
        assert_eq!(m.wire_len(), Some(8));
    }

    #[test]
    fn compact_preserves_content_while_reowning_bytes() {
        let shared = Bytes::from(b"GET /abcd".to_vec());
        let mut m = Message::new("cmd");
        m.set_raw(shared.slice(..9));
        m.set_parsed("path", MsgValue::Bytes(shared.slice(4..9)));
        let before = m.clone();
        m.compact();
        assert_eq!(m, before, "compaction must not change observable content");
        assert_eq!(m.bytes_field("path"), Some(&b"/abcd"[..]));
        assert_eq!(m.raw().map(|r| &r[..]), Some(&b"GET /abcd"[..]));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(MsgValue::UInt(5).as_u64(), Some(5));
        assert_eq!(MsgValue::Int(-1).as_u64(), None);
        assert_eq!(MsgValue::Str("hi".into()).as_bytes(), Some(&b"hi"[..]));
        assert_eq!(
            MsgValue::Bytes(Bytes::from_static(b"ok")).as_str(),
            Some("ok")
        );
        assert_eq!(MsgValue::Bytes(Bytes::from_static(b"ok")).byte_len(), 2);
        assert_eq!(MsgValue::Bool(true).as_u64(), None);
    }

    #[test]
    fn display_formats_fields() {
        let mut m = Message::new("kv");
        m.set("key", MsgValue::Str("a".into()));
        let s = format!("{m}");
        assert!(s.starts_with("kv {"));
        assert!(s.contains("key"));
    }
}
