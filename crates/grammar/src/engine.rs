//! The generic grammar-driven parser and serialiser.
//!
//! [`GrammarCodec`] interprets a [`UnitGrammar`] to parse and serialise
//! messages of any binary format expressible in the grammar model. It is the
//! reproduction of the code the FLICK compiler generates from Spicy-style
//! grammars: incremental (a partial buffer yields
//! [`ParseOutcome::Incomplete`]), allocation-light, and projection-aware
//! (fields the program never accesses are skipped).
//!
//! Parsing runs in two phases. A **scan** walks the grammar computing field
//! offsets and integer values only — an incomplete buffer returns without a
//! single byte copied. **Materialisation** then binds the message to the
//! wire bytes exactly once: through [`GrammarCodec::parse_bytes`] the raw
//! bytes are a zero-copy [`Bytes`] slice of the caller's buffer, and
//! through the borrowed-slice [`WireCodec::parse`] they are copied once.
//! Required byte fields are `Bytes` slices *of that raw buffer* (no second
//! copy); string fields are UTF-8 validated and copied (a `String` must own
//! its bytes); and fields outside the projection are never copied into the
//! message at all — they exist only as a sub-range of the shared raw
//! buffer, which pass-through serialisation emits verbatim. This is what
//! makes projection pay off at multi-KB body sizes (see the
//! `projection_multikb` bench group).

use crate::error::GrammarError;
use crate::limits::ParseLimits;
use crate::message::{Message, MsgValue};
use crate::model::{ByteOrder, FieldKind, GrammarItem, UnitGrammar};
use crate::projection::Projection;
use crate::{ParseOutcome, WireCodec};
use bytes::Bytes;
use std::collections::HashMap;

/// A [`WireCodec`] driven by a [`UnitGrammar`].
#[derive(Debug, Clone)]
pub struct GrammarCodec {
    grammar: UnitGrammar,
    limits: ParseLimits,
}

impl GrammarCodec {
    /// Creates a codec from a grammar, validating it first. Parsing is
    /// bounded by [`ParseLimits::default`].
    pub fn new(grammar: UnitGrammar) -> Result<Self, GrammarError> {
        Self::with_limits(grammar, ParseLimits::default())
    }

    /// Creates a codec with explicit parse bounds.
    pub fn with_limits(grammar: UnitGrammar, limits: ParseLimits) -> Result<Self, GrammarError> {
        grammar.validate()?;
        if grammar.items.len() > limits.max_fields {
            return Err(GrammarError::invalid(
                &grammar.name,
                format!(
                    "grammar has {} items, more than the {}-field parse limit",
                    grammar.items.len(),
                    limits.max_fields
                ),
            ));
        }
        Ok(GrammarCodec { grammar, limits })
    }

    /// Returns the underlying grammar.
    pub fn grammar(&self) -> &UnitGrammar {
        &self.grammar
    }

    /// Returns the parse bounds this codec enforces.
    pub fn limits(&self) -> &ParseLimits {
        &self.limits
    }

    fn read_uint(&self, buf: &[u8], offset: usize, width: usize) -> u64 {
        let mut value: u64 = 0;
        match self.grammar.byte_order {
            ByteOrder::Big => {
                for i in 0..width {
                    value = (value << 8) | buf[offset + i] as u64;
                }
            }
            ByteOrder::Little => {
                for i in (0..width).rev() {
                    value = (value << 8) | buf[offset + i] as u64;
                }
            }
        }
        value
    }

    fn write_uint(&self, out: &mut Vec<u8>, value: u64, width: usize) {
        match self.grammar.byte_order {
            ByteOrder::Big => {
                for i in (0..width).rev() {
                    out.push(((value >> (8 * i)) & 0xff) as u8);
                }
            }
            ByteOrder::Little => {
                for i in 0..width {
                    out.push(((value >> (8 * i)) & 0xff) as u8);
                }
            }
        }
    }

    /// Phase 1: walks the grammar over `buf`, evaluating variables and
    /// integer fields (cheap, and length expressions may depend on them)
    /// and recording the byte range of every *required* byte/string field.
    /// No payload byte is copied; an incomplete buffer costs only the walk.
    fn scan<'g>(
        &'g self,
        buf: &[u8],
        projection: Option<&Projection>,
    ) -> Result<Scan<'g>, GrammarError> {
        let unit = &self.grammar.name;
        let mut env: HashMap<String, u64> = HashMap::new();
        let mut message = Message::with_capacity(unit.clone(), self.grammar.items.len());
        let mut spans: Vec<FieldSpan<'g>> = Vec::new();
        let mut offset = 0usize;
        for item in &self.grammar.items {
            match item {
                GrammarItem::Variable { name, parse } => {
                    let value = parse.eval(&env, unit)?;
                    env.insert(name.clone(), value);
                    if projection.map_or(true, |p| p.requires(name)) {
                        message.set_parsed(name.clone(), MsgValue::UInt(value));
                    }
                }
                GrammarItem::Field { name, kind } => {
                    let required =
                        !name.is_empty() && projection.map_or(true, |p| p.requires(name));
                    match kind {
                        FieldKind::UInt { width } | FieldKind::Int { width } => {
                            let width = *width as usize;
                            if buf.len() < offset + width {
                                return Ok(Scan::Incomplete {
                                    needed: offset + width - buf.len(),
                                });
                            }
                            let raw = self.read_uint(buf, offset, width);
                            offset += width;
                            // Integer fields always enter the environment:
                            // later length expressions may depend on them
                            // even when the program never reads them.
                            if !name.is_empty() {
                                env.insert(name.clone(), raw);
                            }
                            if required {
                                let value = if matches!(kind, FieldKind::Int { .. }) {
                                    let shift = 64 - 8 * width;
                                    MsgValue::Int(((raw << shift) as i64) >> shift)
                                } else {
                                    MsgValue::UInt(raw)
                                };
                                message.set_parsed(name.clone(), value);
                            }
                        }
                        FieldKind::Bytes { length } | FieldKind::Str { length } => {
                            // A hostile length field must fail here, before
                            // the transport is asked to buffer `len` bytes:
                            // past the limit the frame is malformed, not
                            // incomplete.
                            let declared = length.eval(&env, unit)?;
                            if declared > self.limits.max_body_bytes as u64 {
                                return Err(GrammarError::malformed(
                                    unit,
                                    format!(
                                        "field {name:?} declares {declared} bytes, over the \
                                         {}-byte parse limit",
                                        self.limits.max_body_bytes
                                    ),
                                ));
                            }
                            let len = declared as usize;
                            let end = offset.checked_add(len).ok_or_else(|| {
                                GrammarError::malformed(
                                    unit,
                                    format!("field {name:?} length overflows the frame offset"),
                                )
                            })?;
                            if buf.len() < end {
                                return Ok(Scan::Incomplete {
                                    needed: end - buf.len(),
                                });
                            }
                            if required {
                                spans.push(FieldSpan {
                                    name,
                                    start: offset,
                                    end,
                                    text: matches!(kind, FieldKind::Str { .. }),
                                });
                            }
                            if !name.is_empty() {
                                env.insert(format!("len({name})"), len as u64);
                            }
                            offset = end;
                        }
                    }
                }
            }
        }
        Ok(Scan::Complete {
            message,
            spans,
            consumed: offset,
        })
    }

    /// Phase 2: binds the scanned message to its wire bytes. `raw` must be
    /// the first `consumed` bytes of the scanned buffer; required byte
    /// fields become zero-copy slices of it, string fields are UTF-8
    /// validated and copied into owned `String`s.
    fn materialize(mut message: Message, spans: Vec<FieldSpan<'_>>, raw: Bytes) -> Message {
        for span in spans {
            let slice = raw.slice(span.start..span.end);
            let value = if span.text {
                match std::str::from_utf8(&slice) {
                    Ok(s) => MsgValue::Str(s.to_string()),
                    Err(_) => MsgValue::Bytes(slice),
                }
            } else {
                MsgValue::Bytes(slice)
            };
            message.set_parsed(span.name.to_string(), value);
        }
        message.set_raw(raw);
        message
    }

    /// Parses one message from the front of a shared buffer, zero-copy:
    /// the message's raw bytes — and every required byte field — are
    /// slices of `buf`'s allocation. Fields outside `projection` are never
    /// copied anywhere. [`WireCodec::parse`] is the borrowed-slice
    /// fallback, which pays one copy of the consumed range — the path the
    /// runtime's input tasks still use today (moving their accumulator
    /// onto this entry point is a ROADMAP item); benches and the codec
    /// wrappers' `parse_bytes` call this directly.
    pub fn parse_shared(
        &self,
        buf: &Bytes,
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        match self.scan(buf, projection)? {
            Scan::Incomplete { needed } => Ok(ParseOutcome::Incomplete { needed }),
            Scan::Complete {
                message,
                spans,
                consumed,
            } => Ok(ParseOutcome::Complete {
                message: Self::materialize(message, spans, buf.slice(..consumed)),
                consumed,
            }),
        }
    }
}

/// The byte range of one required variable-length field, recorded by the
/// scan phase and bound to the raw buffer during materialisation.
struct FieldSpan<'g> {
    name: &'g str,
    start: usize,
    end: usize,
    /// `true` for [`FieldKind::Str`] fields (UTF-8 validation applies).
    text: bool,
}

/// Outcome of the scan phase.
enum Scan<'g> {
    Incomplete {
        needed: usize,
    },
    Complete {
        /// Variables and integer fields, already materialised (they cost
        /// nothing to copy).
        message: Message,
        /// Required byte/string fields, not yet bound to the wire bytes.
        spans: Vec<FieldSpan<'g>>,
        consumed: usize,
    },
}

impl WireCodec for GrammarCodec {
    fn name(&self) -> &str {
        &self.grammar.name
    }

    fn parse(
        &self,
        buf: &[u8],
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        match self.scan(buf, projection)? {
            Scan::Incomplete { needed } => Ok(ParseOutcome::Incomplete { needed }),
            Scan::Complete {
                message,
                spans,
                consumed,
            } => {
                // A borrowed slice cannot be shared, so the consumed range
                // is copied once; field values then slice that copy.
                let raw = Bytes::copy_from_slice(&buf[..consumed]);
                Ok(ParseOutcome::Complete {
                    message: Self::materialize(message, spans, raw),
                    consumed,
                })
            }
        }
    }

    fn parse_bytes(
        &self,
        buf: &Bytes,
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        self.parse_shared(buf, projection)
    }

    fn serialize_parts(
        &self,
        msg: &Message,
        out: &mut Vec<u8>,
    ) -> Result<Option<Bytes>, GrammarError> {
        // Pass-through messages ship their raw bytes as one shared
        // vectored segment; anything modified goes through the full
        // field-by-field serialisation (no split worth making there).
        if let Some(raw) = msg.raw() {
            return Ok(Some(raw.clone()));
        }
        self.serialize(msg, out)?;
        Ok(None)
    }

    fn serialize(&self, msg: &Message, out: &mut Vec<u8>) -> Result<(), GrammarError> {
        let unit = &self.grammar.name;
        // Fast path: an unmodified parsed message is copied through verbatim.
        if let Some(raw) = msg.raw() {
            out.extend_from_slice(raw);
            return Ok(());
        }
        // Build the serialisation environment: integer field values from the
        // message plus `LenOf` entries for byte/string fields.
        let mut env: HashMap<String, u64> = HashMap::new();
        for item in &self.grammar.items {
            if let GrammarItem::Field { name, kind } = item {
                if name.is_empty() {
                    continue;
                }
                match kind {
                    FieldKind::UInt { .. } | FieldKind::Int { .. } => {
                        if let Some(v) = msg.uint_field(name) {
                            env.insert(name.clone(), v);
                        }
                    }
                    FieldKind::Bytes { .. } | FieldKind::Str { .. } => {
                        let len = msg.get(name).map(MsgValue::byte_len).unwrap_or(0) as u64;
                        env.insert(name.clone(), len);
                    }
                }
            }
        }
        // Apply serialisation rules (length recomputation) in order.
        let mut overrides: HashMap<String, u64> = HashMap::new();
        for rule in &self.grammar.ser_rules {
            let value = rule.expr.eval(&env, unit)?;
            env.insert(rule.field.clone(), value);
            overrides.insert(rule.field.clone(), value);
        }
        // Emit each item.
        for item in &self.grammar.items {
            match item {
                GrammarItem::Variable { .. } => {}
                GrammarItem::Field { name, kind } => match kind {
                    FieldKind::UInt { width } | FieldKind::Int { width } => {
                        let width = *width as usize;
                        let value = overrides
                            .get(name)
                            .copied()
                            .or_else(|| msg.uint_field(name))
                            .or_else(|| {
                                msg.get(name).and_then(|v| match v {
                                    MsgValue::Int(i) => Some(*i as u64),
                                    _ => None,
                                })
                            })
                            .unwrap_or(0);
                        let max = if width == 8 {
                            u64::MAX
                        } else {
                            (1u64 << (8 * width)) - 1
                        };
                        if value > max && !name.is_empty() {
                            return Err(GrammarError::FieldOverflow {
                                unit: unit.clone(),
                                field: name.clone(),
                                value,
                                max,
                            });
                        }
                        self.write_uint(out, value & max, width);
                    }
                    FieldKind::Bytes { length } | FieldKind::Str { length } => {
                        match msg.get(name) {
                            Some(v) => {
                                let bytes = v.as_bytes().unwrap_or(&[]);
                                out.extend_from_slice(bytes);
                            }
                            None if name.is_empty() => {
                                // Anonymous padding: emit zero bytes of the declared length.
                                let len = length.eval(&env, unit).unwrap_or(0) as usize;
                                out.extend(std::iter::repeat(0u8).take(len));
                            }
                            None => {
                                return Err(GrammarError::MissingField {
                                    unit: unit.clone(),
                                    field: name.clone(),
                                })
                            }
                        }
                    }
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GrammarItem as GI;
    use crate::model::LenExpr;

    /// A small length-prefixed grammar: `len:u16, tag:u8, body:bytes[len]`.
    fn demo_grammar() -> UnitGrammar {
        UnitGrammar::new("demo")
            .item(GI::field("len", FieldKind::UInt { width: 2 }))
            .item(GI::field("tag", FieldKind::UInt { width: 1 }))
            .item(GI::field(
                "body",
                FieldKind::Bytes {
                    length: LenExpr::field("len"),
                },
            ))
            .ser_rule("len", LenExpr::LenOf("body".into()))
    }

    fn demo_codec() -> GrammarCodec {
        GrammarCodec::new(demo_grammar()).unwrap()
    }

    fn demo_message(tag: u64, body: &[u8]) -> Message {
        let mut m = Message::new("demo");
        m.set("tag", MsgValue::UInt(tag));
        m.set("body", MsgValue::Bytes(Bytes::copy_from_slice(body)));
        m
    }

    #[test]
    fn roundtrip_simple_message() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(7, b"hello"), &mut wire)
            .unwrap();
        assert_eq!(wire.len(), 2 + 1 + 5);
        assert_eq!(&wire[0..2], &[0, 5]);
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(message.uint_field("tag"), Some(7));
                assert_eq!(message.bytes_field("body"), Some(&b"hello"[..]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incremental_parse_reports_needed_bytes() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(1, b"abcdef"), &mut wire)
            .unwrap();
        // Header only.
        match codec.parse(&wire[..2], None).unwrap() {
            ParseOutcome::Incomplete { needed } => assert_eq!(needed, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Header plus a partial body.
        match codec.parse(&wire[..5], None).unwrap() {
            ParseOutcome::Incomplete { needed } => assert_eq!(needed, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn projection_skips_unrequested_fields() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(3, b"payload"), &mut wire)
            .unwrap();
        let projection = Projection::of(["tag"]);
        match codec.parse(&wire, Some(&projection)).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.uint_field("tag"), Some(3));
                assert!(
                    message.get("body").is_none(),
                    "body should not be materialised"
                );
                // The raw bytes are still available for pass-through.
                assert_eq!(message.raw().unwrap().len(), wire.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn passthrough_serialisation_uses_raw_bytes() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(9, b"zig"), &mut wire)
            .unwrap();
        let parsed = match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, .. } => message,
            other => panic!("unexpected {other:?}"),
        };
        let mut rewire = Vec::new();
        codec.serialize(&parsed, &mut rewire).unwrap();
        assert_eq!(wire, rewire);
    }

    #[test]
    fn modified_message_recomputes_lengths() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(9, b"zig"), &mut wire)
            .unwrap();
        let mut parsed = match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, .. } => message,
            other => panic!("unexpected {other:?}"),
        };
        parsed.set("body", MsgValue::Bytes(Bytes::from_static(b"longer-body")));
        let mut rewire = Vec::new();
        codec.serialize(&parsed, &mut rewire).unwrap();
        assert_eq!(&rewire[0..2], &[0, 11]);
        assert_eq!(rewire.len(), 2 + 1 + 11);
    }

    #[test]
    fn missing_required_field_errors() {
        let codec = demo_codec();
        let mut m = Message::new("demo");
        m.set("tag", MsgValue::UInt(1));
        let mut out = Vec::new();
        assert!(matches!(
            codec.serialize(&m, &mut out),
            Err(GrammarError::MissingField { .. })
        ));
    }

    #[test]
    fn signed_field_sign_extends() {
        let g = UnitGrammar::new("s").item(GI::field("x", FieldKind::Int { width: 1 }));
        let codec = GrammarCodec::new(g).unwrap();
        match codec.parse(&[0xff], None).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.get("x"), Some(&MsgValue::Int(-1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn little_endian_integers() {
        let g = UnitGrammar::new("le")
            .byte_order(ByteOrder::Little)
            .item(GI::field("x", FieldKind::UInt { width: 2 }));
        let codec = GrammarCodec::new(g).unwrap();
        let mut m = Message::new("le");
        m.set("x", MsgValue::UInt(0x0102));
        let mut out = Vec::new();
        codec.serialize(&m, &mut out).unwrap();
        assert_eq!(out, vec![0x02, 0x01]);
        match codec.parse(&out, None).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.uint_field("x"), Some(0x0102))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anonymous_fields_are_skipped_but_consume_bytes() {
        let g = UnitGrammar::new("anon")
            .item(GI::field("a", FieldKind::UInt { width: 1 }))
            .item(GI::anonymous(FieldKind::Bytes {
                length: LenExpr::Const(3),
            }))
            .item(GI::field("b", FieldKind::UInt { width: 1 }));
        let codec = GrammarCodec::new(g).unwrap();
        match codec.parse(&[1, 9, 9, 9, 2], None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, 5);
                assert_eq!(message.uint_field("a"), Some(1));
                assert_eq!(message.uint_field("b"), Some(2));
                assert_eq!(message.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_is_computed_during_parse() {
        let g = UnitGrammar::new("v")
            .item(GI::field("total", FieldKind::UInt { width: 1 }))
            .item(GI::field("keylen", FieldKind::UInt { width: 1 }))
            .item(GI::variable(
                "vallen",
                LenExpr::sub(LenExpr::field("total"), LenExpr::field("keylen")),
            ))
            .item(GI::field(
                "key",
                FieldKind::Bytes {
                    length: LenExpr::field("keylen"),
                },
            ))
            .item(GI::field(
                "val",
                FieldKind::Bytes {
                    length: LenExpr::field("vallen"),
                },
            ));
        let codec = GrammarCodec::new(g).unwrap();
        let wire = [5u8, 2, b'a', b'b', b'x', b'y', b'z'];
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, 7);
                assert_eq!(message.uint_field("vallen"), Some(3));
                assert_eq!(message.bytes_field("val"), Some(&b"xyz"[..]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// `parse_shared` binds the message to the caller's allocation: the
    /// raw bytes and every required byte field are views of the input
    /// buffer, not copies.
    #[test]
    fn shared_parse_is_zero_copy() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(7, b"shared-body"), &mut wire)
            .unwrap();
        let wire = Bytes::from(wire);
        let wire_ptr = wire.as_ref().as_ptr();
        match codec.parse_shared(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                // The raw buffer is a slice of the input allocation...
                assert_eq!(message.raw().unwrap().as_ref().as_ptr(), wire_ptr);
                // ...and the body field is a slice of the same allocation
                // (offset 3: len u16 + tag u8), not a copy.
                let body = message.bytes_field("body").unwrap();
                assert_eq!(body, b"shared-body");
                assert_eq!(body.as_ptr(), unsafe { wire_ptr.add(3) });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The borrowed-slice path copies the consumed range exactly once:
    /// byte-field values are slices of that single raw copy.
    #[test]
    fn slice_parse_slices_fields_from_the_single_raw_copy() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(7, b"one-copy"), &mut wire)
            .unwrap();
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                let raw_ptr = message.raw().unwrap().as_ref().as_ptr();
                let body = message.bytes_field("body").unwrap();
                assert_ne!(raw_ptr, wire.as_ptr(), "raw must be an owned copy");
                assert_eq!(body.as_ptr(), unsafe { raw_ptr.add(3) });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A projected shared parse of a message with a large skipped body
    /// materialises nothing but the projected fields, yet pass-through
    /// serialisation still reproduces the full wire bytes.
    #[test]
    fn projected_shared_parse_skips_without_copying_and_passes_through() {
        let codec = demo_codec();
        let mut wire = Vec::new();
        codec
            .serialize(&demo_message(3, &vec![b'p'; 16 * 1024]), &mut wire)
            .unwrap();
        let wire = Bytes::from(wire);
        let projection = Projection::of(["tag"]);
        let message = match codec.parse_shared(&wire, Some(&projection)).unwrap() {
            ParseOutcome::Complete { message, .. } => message,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(message.uint_field("tag"), Some(3));
        assert!(message.get("body").is_none(), "body must not materialise");
        assert_eq!(
            message.raw().unwrap().as_ref().as_ptr(),
            wire.as_ref().as_ptr(),
            "the skipped body exists only as the shared raw view"
        );
        let mut rewire = Vec::new();
        codec.serialize(&message, &mut rewire).unwrap();
        assert_eq!(&rewire[..], &wire[..]);
    }

    /// A declared length over `max_body_bytes` is malformed immediately —
    /// not `Incomplete` — so the transport never buffers toward it.
    #[test]
    fn oversized_length_field_is_malformed_not_incomplete() {
        let codec = GrammarCodec::with_limits(
            demo_grammar(),
            ParseLimits {
                max_body_bytes: 100,
                ..ParseLimits::default()
            },
        )
        .unwrap();
        // len = 0x0101 = 257 > 100, tag = 1, no body bytes at all.
        let wire = [0x01u8, 0x01, 1];
        assert!(matches!(
            codec.parse(&wire, None),
            Err(GrammarError::Malformed { .. })
        ));
    }

    /// Within the limit, a large-but-legal declared length still reports
    /// `Incomplete` as before.
    #[test]
    fn in_bounds_length_still_reports_incomplete() {
        let codec = demo_codec();
        let wire = [0x01u8, 0x00, 1]; // len = 256, no body yet
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Incomplete { needed } => assert_eq!(needed, 256),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// With bounds removed, a length near `usize::MAX` must not wrap the
    /// offset arithmetic into a bogus `Complete`.
    #[test]
    fn unbounded_huge_length_does_not_overflow_offset() {
        let g = UnitGrammar::new("huge")
            .item(GI::field("len", FieldKind::UInt { width: 8 }))
            .item(GI::field(
                "body",
                FieldKind::Bytes {
                    length: LenExpr::field("len"),
                },
            ));
        let codec = GrammarCodec::with_limits(g, ParseLimits::unbounded()).unwrap();
        let mut wire = u64::MAX.to_be_bytes().to_vec();
        wire.extend_from_slice(b"xx");
        assert!(matches!(
            codec.parse(&wire, None),
            Err(GrammarError::Malformed { .. })
        ));
    }

    /// A grammar with more items than `max_fields` is rejected up front.
    #[test]
    fn field_count_limit_applies_to_the_grammar() {
        let mut g = UnitGrammar::new("wide");
        for i in 0..4 {
            g = g.item(GI::field(format!("f{i}"), FieldKind::UInt { width: 1 }));
        }
        assert!(GrammarCodec::with_limits(
            g,
            ParseLimits {
                max_fields: 3,
                ..ParseLimits::default()
            },
        )
        .is_err());
    }

    #[test]
    fn field_overflow_is_detected() {
        let g = UnitGrammar::new("o").item(GI::field("x", FieldKind::UInt { width: 1 }));
        let codec = GrammarCodec::new(g).unwrap();
        let mut m = Message::new("o");
        m.set("x", MsgValue::UInt(300));
        let mut out = Vec::new();
        assert!(matches!(
            codec.serialize(&m, &mut out),
            Err(GrammarError::FieldOverflow { .. })
        ));
    }
}
