//! HTTP/1.1 message grammar.
//!
//! HTTP is a text protocol with an LL(1)-parsable line structure, so rather
//! than interpreting a binary unit grammar the FLICK framework ships a
//! specialised reusable codec (the paper notes that reusable grammars for
//! common protocols such as HTTP and Memcached are provided by the
//! framework). The codec parses both requests and responses, supports
//! incremental parsing (a partial header or body yields
//! [`ParseOutcome::Incomplete`]) and keeps the raw bytes of each message so
//! that the HTTP load balancer can forward traffic without re-serialisation.

use crate::error::GrammarError;
use crate::limits::ParseLimits;
use crate::message::{Message, MsgValue};
use crate::projection::Projection;
use crate::{ParseOutcome, WireCodec};
use bytes::Bytes;

/// Unit name used for parsed HTTP requests.
pub const REQUEST_UNIT: &str = "http_request";
/// Unit name used for parsed HTTP responses.
pub const RESPONSE_UNIT: &str = "http_response";

/// A [`WireCodec`] for HTTP/1.1 requests and responses.
#[derive(Debug, Clone, Default)]
pub struct HttpCodec {
    limits: ParseLimits,
}

impl HttpCodec {
    /// Creates the codec, bounded by [`ParseLimits::default`].
    pub fn new() -> Self {
        HttpCodec::default()
    }

    /// Creates the codec with explicit parse bounds.
    pub fn with_limits(limits: ParseLimits) -> Self {
        HttpCodec { limits }
    }

    /// Returns the parse bounds this codec enforces.
    pub fn limits(&self) -> &ParseLimits {
        &self.limits
    }
}

/// Finds the end of the header block (the index just past `\r\n\r\n`).
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Validates one `Content-Length` value strictly: non-empty ASCII digits
/// only. `str::parse::<usize>` alone would accept a leading `+`, and
/// `trim` has already eaten surrounding whitespace — both shapes are
/// ambiguity vectors across parser implementations, so they are rejected
/// rather than normalised.
fn parse_content_length(value: &str) -> Result<usize, GrammarError> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(GrammarError::malformed(
            "http",
            format!("invalid Content-Length {value:?}"),
        ));
    }
    value
        .parse()
        .map_err(|_| GrammarError::malformed("http", format!("invalid Content-Length {value:?}")))
}

fn parse_headers(
    block: &str,
    message: &mut Message,
    projection: Option<&Projection>,
    limits: &ParseLimits,
) -> Result<usize, GrammarError> {
    let mut content_length: Option<usize> = None;
    let mut header_lines = Vec::new();
    for line in block.split("\r\n").skip(1).filter(|l| !l.is_empty()) {
        if header_lines.len() >= limits.max_fields {
            return Err(GrammarError::malformed(
                "http",
                format!("more than {} header lines", limits.max_fields),
            ));
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            GrammarError::malformed("http", format!("header line without colon: {line:?}"))
        })?;
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Duplicate Content-Length headers are the classic
            // request-smuggling ambiguity: two parsers that disagree on
            // which one wins see two different message boundaries. Reject
            // outright rather than pick one.
            if content_length.is_some() {
                return Err(GrammarError::malformed(
                    "http",
                    "duplicate Content-Length header",
                ));
            }
            let parsed = parse_content_length(value)?;
            if parsed > limits.max_body_bytes {
                return Err(GrammarError::malformed(
                    "http",
                    format!(
                        "Content-Length {parsed} exceeds the {}-byte parse limit",
                        limits.max_body_bytes
                    ),
                ));
            }
            content_length = Some(parsed);
        }
        if name.eq_ignore_ascii_case("host") && projection.map_or(true, |p| p.requires("host")) {
            message.set_parsed("host", MsgValue::Str(value.to_string()));
        }
        if name.eq_ignore_ascii_case("connection")
            && projection.map_or(true, |p| p.requires("connection"))
        {
            message.set_parsed("connection", MsgValue::Str(value.to_ascii_lowercase()));
        }
        header_lines.push(line);
    }
    let content_length = content_length.unwrap_or(0);
    if projection.map_or(true, |p| p.requires("headers")) {
        message.set_parsed("headers", MsgValue::Str(header_lines.join("\r\n")));
    }
    message.set_parsed("content_length", MsgValue::UInt(content_length as u64));
    Ok(content_length)
}

impl HttpCodec {
    /// The parse engine shared by the borrowed-slice and shared-buffer
    /// entry points: `bind` turns a byte range of `buf` into the [`Bytes`]
    /// the message keeps (its raw wire bytes and its body field).
    /// [`WireCodec::parse`] binds by copying, [`WireCodec::parse_bytes`]
    /// binds by slicing the caller's refcounted allocation — zero-copy.
    fn parse_with(
        &self,
        buf: &[u8],
        projection: Option<&Projection>,
        bind: &dyn Fn(std::ops::Range<usize>) -> Bytes,
    ) -> Result<ParseOutcome, GrammarError> {
        let Some(head_len) = header_end(buf) else {
            // Without the blank-line terminator the head is incomplete —
            // but only up to the head limit. Past it the peer is either
            // broken or hostile (a slowloris trickling header bytes
            // forever), and the buffer must not keep growing.
            if buf.len() > self.limits.max_head_bytes {
                return Err(GrammarError::malformed(
                    "http",
                    format!(
                        "header block exceeds the {}-byte parse limit without terminating",
                        self.limits.max_head_bytes
                    ),
                ));
            }
            return Ok(ParseOutcome::Incomplete { needed: 0 });
        };
        if head_len > self.limits.max_head_bytes {
            return Err(GrammarError::malformed(
                "http",
                format!(
                    "header block of {head_len} bytes exceeds the {}-byte parse limit",
                    self.limits.max_head_bytes
                ),
            ));
        }
        let head = std::str::from_utf8(&buf[..head_len - 4])
            .map_err(|_| GrammarError::malformed("http", "header block is not valid UTF-8"))?;
        let first_line = head.split("\r\n").next().unwrap_or_default();
        let mut parts = first_line.split_whitespace();
        let is_response = first_line.starts_with("HTTP/");
        let mut message = Message::with_capacity(
            if is_response {
                RESPONSE_UNIT
            } else {
                REQUEST_UNIT
            },
            8,
        );
        if is_response {
            let version = parts.next().unwrap_or("HTTP/1.1");
            let status: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| GrammarError::malformed("http", "missing status code"))?;
            let reason = parts.collect::<Vec<_>>().join(" ");
            message.set_parsed("version", MsgValue::Str(version.to_string()));
            message.set_parsed("status", MsgValue::UInt(status));
            message.set_parsed("reason", MsgValue::Str(reason));
        } else {
            let method = parts
                .next()
                .ok_or_else(|| GrammarError::malformed("http", "missing request method"))?;
            let path = parts
                .next()
                .ok_or_else(|| GrammarError::malformed("http", "missing request path"))?;
            let version = parts.next().unwrap_or("HTTP/1.1");
            if !matches!(
                method,
                "GET" | "HEAD" | "POST" | "PUT" | "DELETE" | "OPTIONS" | "PATCH"
            ) {
                return Err(GrammarError::malformed(
                    "http",
                    format!("unknown method {method:?}"),
                ));
            }
            message.set_parsed("method", MsgValue::Str(method.to_string()));
            message.set_parsed("path", MsgValue::Str(path.to_string()));
            message.set_parsed("version", MsgValue::Str(version.to_string()));
        }
        let content_length = parse_headers(head, &mut message, projection, &self.limits)?;
        // checked: a Content-Length near usize::MAX would wrap this sum in
        // release builds and slice out of bounds.
        let total = head_len.checked_add(content_length).ok_or_else(|| {
            GrammarError::malformed("http", "Content-Length overflows the frame size")
        })?;
        if buf.len() < total {
            return Ok(ParseOutcome::Incomplete {
                needed: total - buf.len(),
            });
        }
        if content_length > 0 && projection.map_or(true, |p| p.requires("body")) {
            message.set_parsed("body", MsgValue::Bytes(bind(head_len..total)));
        }
        message.set_raw(bind(0..total));
        Ok(ParseOutcome::Complete {
            message,
            consumed: total,
        })
    }
}

impl WireCodec for HttpCodec {
    fn name(&self) -> &str {
        "http"
    }

    fn parse(
        &self,
        buf: &[u8],
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        // A borrowed slice cannot be shared, so bound ranges are copied.
        self.parse_with(buf, projection, &|range| {
            Bytes::copy_from_slice(&buf[range])
        })
    }

    fn parse_bytes(
        &self,
        buf: &Bytes,
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        // Shared input: the message's raw bytes and its body become slices
        // of the caller's allocation — no copy on the ingest path.
        self.parse_with(buf, projection, &|range| buf.slice(range))
    }

    fn serialize(&self, msg: &Message, out: &mut Vec<u8>) -> Result<(), GrammarError> {
        if let Some(raw) = msg.raw() {
            out.extend_from_slice(raw);
            return Ok(());
        }
        let body = msg.bytes_field("body").unwrap_or(&[]);
        self.serialize_head(msg, out, body.len())?;
        out.extend_from_slice(body);
        Ok(())
    }

    fn serialize_parts(
        &self,
        msg: &Message,
        out: &mut Vec<u8>,
    ) -> Result<Option<Bytes>, GrammarError> {
        // Pass-through: the unmodified raw wire bytes leave as one shared
        // segment — nothing appended, nothing copied (the LB forwarding
        // path stays zero-copy all the way into `writev`).
        if let Some(raw) = msg.raw() {
            return Ok(Some(raw.clone()));
        }
        match msg.shared_bytes_field("body") {
            Some(body) if !body.is_empty() => {
                let body = body.clone();
                self.serialize_head(msg, out, body.len())?;
                Ok(Some(body))
            }
            // No refcounted body to split off; the scalar path is already
            // optimal.
            _ => {
                self.serialize(msg, out)?;
                Ok(None)
            }
        }
    }
}

impl HttpCodec {
    /// Serialises everything up to (and including) the blank line — the
    /// status/request line and headers — leaving the body to the caller,
    /// which either appends it ([`WireCodec::serialize`]) or ships it as a
    /// shared vectored segment ([`WireCodec::serialize_parts`]).
    fn serialize_head(
        &self,
        msg: &Message,
        out: &mut Vec<u8>,
        body_len: usize,
    ) -> Result<(), GrammarError> {
        let version = msg.str_field("version").unwrap_or("HTTP/1.1");
        if msg.unit == RESPONSE_UNIT {
            let status = msg.uint_field("status").unwrap_or(200);
            let reason = msg.str_field("reason").unwrap_or("OK");
            out.extend_from_slice(format!("{version} {status} {reason}\r\n").as_bytes());
        } else {
            let method = msg
                .str_field("method")
                .ok_or_else(|| GrammarError::MissingField {
                    unit: REQUEST_UNIT.into(),
                    field: "method".into(),
                })?;
            let path = msg
                .str_field("path")
                .ok_or_else(|| GrammarError::MissingField {
                    unit: REQUEST_UNIT.into(),
                    field: "path".into(),
                })?;
            out.extend_from_slice(format!("{method} {path} {version}\r\n").as_bytes());
        }
        let mut wrote_content_length = false;
        if let Some(headers) = msg.str_field("headers") {
            for line in headers.split("\r\n").filter(|l| !l.is_empty()) {
                if line.to_ascii_lowercase().starts_with("content-length") {
                    wrote_content_length = true;
                    out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
                } else {
                    out.extend_from_slice(line.as_bytes());
                    out.extend_from_slice(b"\r\n");
                }
            }
        } else if let Some(host) = msg.str_field("host") {
            out.extend_from_slice(format!("Host: {host}\r\n").as_bytes());
        }
        if !wrote_content_length && body_len > 0 {
            out.extend_from_slice(format!("Content-Length: {body_len}\r\n").as_bytes());
        } else if !wrote_content_length && msg.unit == RESPONSE_UNIT {
            out.extend_from_slice(b"Content-Length: 0\r\n");
        }
        out.extend_from_slice(b"\r\n");
        Ok(())
    }
}

/// Builds an HTTP GET request message.
pub fn get_request(path: &str, host: &str) -> Message {
    let mut m = Message::with_capacity(REQUEST_UNIT, 6);
    m.set("method", MsgValue::Str("GET".into()));
    m.set("path", MsgValue::Str(path.into()));
    m.set("version", MsgValue::Str("HTTP/1.1".into()));
    m.set("host", MsgValue::Str(host.into()));
    m
}

/// Builds an HTTP response message with the given status and body.
pub fn response(status: u64, body: &[u8]) -> Message {
    let mut m = Message::with_capacity(RESPONSE_UNIT, 6);
    m.set("status", MsgValue::UInt(status));
    m.set("reason", MsgValue::Str(reason_phrase(status).into()));
    m.set("version", MsgValue::Str("HTTP/1.1".into()));
    m.set("body", MsgValue::Bytes(Bytes::copy_from_slice(body)));
    m
}

/// The standard reason phrase for a handful of status codes.
pub fn reason_phrase(status: u64) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        301 => "Moved Permanently",
        302 => "Found",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Returns `true` if the message asks for the connection to be closed
/// (`Connection: close`, or HTTP/1.0 without keep-alive).
pub fn wants_close(msg: &Message) -> bool {
    match msg.str_field("connection") {
        Some(c) => c.contains("close"),
        None => msg.str_field("version") == Some("HTTP/1.0"),
    }
}

/// The projection used by the HTTP load balancer: only the request line and
/// the connection-management headers are needed, not the body.
pub fn load_balancer_projection() -> Projection {
    Projection::of([
        "method",
        "path",
        "version",
        "host",
        "connection",
        "content_length",
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(codec: &HttpCodec, buf: &[u8]) -> (Message, usize) {
        match codec.parse(buf, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => (message, consumed),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// `serialize_parts` must produce byte-for-byte the same stream as
    /// `serialize` (as `out ++ tail`) in every shape: constructed response
    /// with a shared body, raw pass-through, and bodyless request.
    #[test]
    fn serialize_parts_matches_serialize() {
        let codec = HttpCodec::new();
        let cases = [
            response(200, b"hello body"),
            response(204, b""),
            get_request("/x", "example.org"),
            parse_ok(&codec, b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello").0,
        ];
        for msg in cases {
            let mut scalar = Vec::new();
            codec.serialize(&msg, &mut scalar).unwrap();
            let mut head = Vec::new();
            let tail = codec.serialize_parts(&msg, &mut head).unwrap();
            if let Some(tail) = tail {
                head.extend_from_slice(&tail);
            }
            assert_eq!(head, scalar, "parts diverge for {msg}");
        }
    }

    /// The pass-through fast path keeps the raw bytes as one shared
    /// segment and appends nothing.
    #[test]
    fn serialize_parts_passes_raw_through_as_the_tail() {
        let codec = HttpCodec::new();
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        let (msg, _) = parse_ok(&codec, wire);
        let mut head = Vec::new();
        let tail = codec.serialize_parts(&msg, &mut head).unwrap().unwrap();
        assert!(head.is_empty());
        assert_eq!(&tail[..], &wire[..]);
    }

    #[test]
    fn parses_simple_get_request() {
        let codec = HttpCodec::new();
        let wire = b"GET /index.html HTTP/1.1\r\nHost: example.org\r\n\r\n";
        let (msg, consumed) = parse_ok(&codec, wire);
        assert_eq!(consumed, wire.len());
        assert_eq!(msg.unit, REQUEST_UNIT);
        assert_eq!(msg.str_field("method"), Some("GET"));
        assert_eq!(msg.str_field("path"), Some("/index.html"));
        assert_eq!(msg.str_field("host"), Some("example.org"));
        assert_eq!(msg.uint_field("content_length"), Some(0));
    }

    #[test]
    fn parses_response_with_body() {
        let codec = HttpCodec::new();
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        let (msg, consumed) = parse_ok(&codec, wire);
        assert_eq!(consumed, wire.len());
        assert_eq!(msg.unit, RESPONSE_UNIT);
        assert_eq!(msg.uint_field("status"), Some(200));
        assert_eq!(msg.bytes_field("body"), Some(&b"hello"[..]));
    }

    #[test]
    fn incomplete_header_and_body() {
        let codec = HttpCodec::new();
        assert!(matches!(
            codec.parse(b"GET / HTTP/1.1\r\nHost: a", None).unwrap(),
            ParseOutcome::Incomplete { .. }
        ));
        let partial_body = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
        match codec.parse(partial_body, None).unwrap() {
            ParseOutcome::Incomplete { needed } => assert_eq!(needed, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serialisation_roundtrip_and_passthrough() {
        let codec = HttpCodec::new();
        let wire = b"GET /a HTTP/1.1\r\nHost: h\r\nConnection: keep-alive\r\n\r\n".to_vec();
        let (msg, _) = parse_ok(&codec, &wire);
        let mut out = Vec::new();
        codec.serialize(&msg, &mut out).unwrap();
        assert_eq!(
            out, wire,
            "unmodified messages must be forwarded byte-for-byte"
        );
    }

    #[test]
    fn built_response_serialises_with_content_length() {
        let codec = HttpCodec::new();
        let resp = response(200, b"0123456789");
        let mut out = Vec::new();
        codec.serialize(&resp, &mut out).unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 10\r\n"));
        let (msg, consumed) = parse_ok(&codec, &out);
        assert_eq!(consumed, out.len());
        assert_eq!(msg.bytes_field("body"), Some(&b"0123456789"[..]));
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let codec = HttpCodec::new();
        let mut wire = Vec::new();
        wire.extend_from_slice(b"GET /1 HTTP/1.1\r\nHost: h\r\n\r\n");
        let first = wire.len();
        wire.extend_from_slice(b"GET /2 HTTP/1.1\r\nHost: h\r\n\r\n");
        let (msg, consumed) = parse_ok(&codec, &wire);
        assert_eq!(consumed, first);
        assert_eq!(msg.str_field("path"), Some("/1"));
        let (msg2, _) = parse_ok(&codec, &wire[consumed..]);
        assert_eq!(msg2.str_field("path"), Some("/2"));
    }

    #[test]
    fn connection_close_detection() {
        let codec = HttpCodec::new();
        let (keep, _) = parse_ok(&codec, b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert!(!wants_close(&keep));
        let (close, _) = parse_ok(&codec, b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(wants_close(&close));
        let (old, _) = parse_ok(&codec, b"GET / HTTP/1.0\r\n\r\n");
        assert!(wants_close(&old));
    }

    #[test]
    fn projection_skips_body_but_keeps_raw() {
        let codec = HttpCodec::new();
        let wire = b"POST /submit HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\ndata";
        let projection = load_balancer_projection();
        match codec.parse(wire, Some(&projection)).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert!(message.get("body").is_none());
                assert_eq!(message.raw().unwrap().len(), wire.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_method() {
        let codec = HttpCodec::new();
        let wire = b"NONSENSE / HTTP/1.1\r\n\r\n";
        assert!(codec.parse(wire, None).is_err());
    }

    #[test]
    fn rejects_bad_content_length() {
        let codec = HttpCodec::new();
        let wire = b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        assert!(codec.parse(wire, None).is_err());
    }

    #[test]
    fn reason_phrases_cover_common_codes() {
        assert_eq!(reason_phrase(200), "OK");
        assert_eq!(reason_phrase(404), "Not Found");
        assert_eq!(reason_phrase(999), "Unknown");
    }

    /// Regression: with bounds removed, a Content-Length near `usize::MAX`
    /// must not wrap `head_len + content_length` into a bogus `Complete`
    /// that slices out of bounds.
    #[test]
    fn huge_content_length_does_not_overflow() {
        let codec = HttpCodec::with_limits(ParseLimits::unbounded());
        let wire = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\nxx",
            usize::MAX
        );
        assert!(matches!(
            codec.parse(wire.as_bytes(), None),
            Err(GrammarError::Malformed { .. })
        ));
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let codec = HttpCodec::new();
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\r\ndata";
        assert!(codec.parse(wire, None).is_err());
        // Even two agreeing copies are ambiguous to downstream parsers.
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\ndata";
        assert!(codec.parse(wire, None).is_err());
    }

    #[test]
    fn content_length_must_be_plain_digits() {
        let codec = HttpCodec::new();
        // `parse::<usize>` would quietly accept "+4"; other parsers read
        // hex or split on internal whitespace. All are rejected.
        for value in ["+4", "0x4", "4 4", "4+", ""] {
            let wire = format!("POST / HTTP/1.1\r\nContent-Length:{value}\r\n\r\ndata");
            assert!(
                codec.parse(wire.as_bytes(), None).is_err(),
                "Content-Length {value:?} should be rejected"
            );
        }
        // Optional whitespace around the value is legal HTTP and still
        // parses.
        let wire = b"POST / HTTP/1.1\r\nContent-Length:  4 \r\n\r\ndata";
        match codec.parse(wire, None).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.uint_field("content_length"), Some(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn content_length_over_body_limit_is_malformed() {
        let codec = HttpCodec::with_limits(ParseLimits {
            max_body_bytes: 100,
            ..ParseLimits::default()
        });
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 101\r\n\r\n";
        assert!(codec.parse(wire, None).is_err());
        // At the limit it is still a legal (incomplete) frame.
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        assert!(matches!(
            codec.parse(wire, None).unwrap(),
            ParseOutcome::Incomplete { needed: 100 }
        ));
    }

    /// A head that never terminates stops being `Incomplete` once it blows
    /// the head limit — the ingest buffer must not grow forever.
    #[test]
    fn unterminated_head_past_limit_is_malformed() {
        let codec = HttpCodec::with_limits(ParseLimits {
            max_head_bytes: 64,
            ..ParseLimits::default()
        });
        let mut wire = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        wire.extend(std::iter::repeat(b'a').take(100));
        assert!(codec.parse(&wire, None).is_err());
        // A *terminated* head over the limit is rejected too.
        let mut wire = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        wire.extend(std::iter::repeat(b'a').take(100));
        wire.extend_from_slice(b"\r\n\r\n");
        assert!(codec.parse(&wire, None).is_err());
    }

    #[test]
    fn too_many_header_lines_is_malformed() {
        let codec = HttpCodec::with_limits(ParseLimits {
            max_fields: 4,
            ..ParseLimits::default()
        });
        let mut wire = String::from("GET / HTTP/1.1\r\n");
        for i in 0..5 {
            wire.push_str(&format!("X-H{i}: v\r\n"));
        }
        wire.push_str("\r\n");
        assert!(codec.parse(wire.as_bytes(), None).is_err());
    }
}
