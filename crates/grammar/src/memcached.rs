//! The Memcached binary protocol grammar (Listing 2 of the paper).
//!
//! The grammar reproduces the `cmd` unit: a 24-byte fixed header followed by
//! `extras`, `key` and `value` fields whose lengths are derived from the
//! header, with the `value_len` computed variable and the serialisation
//! rules that recompute `key_len`, `extras_len` and `total_len`.

use crate::engine::GrammarCodec;
use crate::error::GrammarError;
use crate::message::{Message, MsgValue};
use crate::model::{FieldKind, GrammarItem, LenExpr, UnitGrammar};
use crate::projection::Projection;
use crate::{ParseOutcome, WireCodec};
use bytes::Bytes;

/// Well-known Memcached binary opcodes used by the paper's router.
pub mod opcode {
    /// `GET`.
    pub const GET: u64 = 0x00;
    /// `SET`.
    pub const SET: u64 = 0x01;
    /// `GETK` — get returning the key, cached by the FLICK router (opcode 0x0c).
    pub const GETK: u64 = 0x0c;
    /// `GETKQ` — quiet variant of `GETK`.
    pub const GETKQ: u64 = 0x0d;
}

/// Magic byte of a request packet.
pub const MAGIC_REQUEST: u64 = 0x80;
/// Magic byte of a response packet.
pub const MAGIC_RESPONSE: u64 = 0x81;

/// Builds the `cmd` unit grammar for the Memcached binary protocol.
///
/// Field names follow Listing 2: `magic_code`, `opcode`, `key_len`,
/// `extras_len`, `status_or_v_bucket`, `total_len`, `opaque`, `cas`,
/// the computed `value_len`, then `extras`, `key` and `value`.
pub fn grammar() -> UnitGrammar {
    UnitGrammar::new("cmd")
        .item(GrammarItem::field(
            "magic_code",
            FieldKind::UInt { width: 1 },
        ))
        .item(GrammarItem::field("opcode", FieldKind::UInt { width: 1 }))
        .item(GrammarItem::field("key_len", FieldKind::UInt { width: 2 }))
        .item(GrammarItem::field(
            "extras_len",
            FieldKind::UInt { width: 1 },
        ))
        // Anonymous field, reserved for future use (data type in the real protocol).
        .item(GrammarItem::anonymous(FieldKind::UInt { width: 1 }))
        .item(GrammarItem::field(
            "status_or_v_bucket",
            FieldKind::UInt { width: 2 },
        ))
        .item(GrammarItem::field(
            "total_len",
            FieldKind::UInt { width: 4 },
        ))
        .item(GrammarItem::field("opaque", FieldKind::UInt { width: 4 }))
        .item(GrammarItem::field("cas", FieldKind::UInt { width: 8 }))
        .item(GrammarItem::variable(
            "value_len",
            LenExpr::sub(
                LenExpr::field("total_len"),
                LenExpr::add(LenExpr::field("extras_len"), LenExpr::field("key_len")),
            ),
        ))
        .item(GrammarItem::field(
            "extras",
            FieldKind::Bytes {
                length: LenExpr::field("extras_len"),
            },
        ))
        .item(GrammarItem::field(
            "key",
            FieldKind::Str {
                length: LenExpr::field("key_len"),
            },
        ))
        .item(GrammarItem::field(
            "value",
            FieldKind::Bytes {
                length: LenExpr::field("value_len"),
            },
        ))
        .ser_rule("key_len", LenExpr::LenOf("key".into()))
        .ser_rule("extras_len", LenExpr::LenOf("extras".into()))
        .ser_rule(
            "total_len",
            LenExpr::add(
                LenExpr::LenOf("extras".into()),
                LenExpr::add(LenExpr::LenOf("key".into()), LenExpr::LenOf("value".into())),
            ),
        )
}

/// The projection used by the paper's Memcached router: it only accesses
/// `opcode` and `key` (plus `magic_code` to distinguish requests from
/// responses).
pub fn router_projection() -> Projection {
    Projection::of(["magic_code", "opcode", "key"])
}

/// A [`WireCodec`] for the Memcached binary protocol.
#[derive(Debug, Clone)]
pub struct MemcachedCodec {
    inner: GrammarCodec,
}

impl MemcachedCodec {
    /// Creates the codec.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the built-in grammar is statically valid
    /// (covered by tests).
    pub fn new() -> Self {
        MemcachedCodec {
            inner: GrammarCodec::new(grammar()).expect("built-in grammar is valid"),
        }
    }

    /// Creates the codec with explicit parse bounds.
    pub fn with_limits(limits: crate::ParseLimits) -> Self {
        MemcachedCodec {
            inner: GrammarCodec::with_limits(grammar(), limits).expect("built-in grammar is valid"),
        }
    }
}

impl Default for MemcachedCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl WireCodec for MemcachedCodec {
    fn name(&self) -> &str {
        "memcached"
    }

    fn parse(
        &self,
        buf: &[u8],
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        self.inner.parse(buf, projection)
    }

    fn parse_bytes(
        &self,
        buf: &bytes::Bytes,
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        self.inner.parse_shared(buf, projection)
    }

    fn serialize(&self, msg: &Message, out: &mut Vec<u8>) -> Result<(), GrammarError> {
        self.inner.serialize(msg, out)
    }
}

/// Builds a request message with the given opcode, key, extras and value.
pub fn request(op: u64, key: &[u8], extras: &[u8], value: &[u8]) -> Message {
    build(MAGIC_REQUEST, op, 0, key, extras, value)
}

/// Builds a response message with the given opcode, status, key and value.
pub fn response(op: u64, status: u64, key: &[u8], value: &[u8]) -> Message {
    build(MAGIC_RESPONSE, op, status, key, &[], value)
}

fn build(magic: u64, op: u64, status: u64, key: &[u8], extras: &[u8], value: &[u8]) -> Message {
    let mut m = Message::with_capacity("cmd", 12);
    m.set("magic_code", MsgValue::UInt(magic));
    m.set("opcode", MsgValue::UInt(op));
    m.set("status_or_v_bucket", MsgValue::UInt(status));
    m.set("opaque", MsgValue::UInt(0));
    m.set("cas", MsgValue::UInt(0));
    m.set("extras", MsgValue::Bytes(Bytes::copy_from_slice(extras)));
    m.set(
        "key",
        MsgValue::Str(String::from_utf8_lossy(key).into_owned()),
    );
    m.set("value", MsgValue::Bytes(Bytes::copy_from_slice(value)));
    m
}

/// Returns `true` if the message is a response packet.
pub fn is_response(msg: &Message) -> bool {
    msg.uint_field("magic_code") == Some(MAGIC_RESPONSE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_24_bytes() {
        let codec = MemcachedCodec::new();
        let mut wire = Vec::new();
        codec
            .serialize(&request(opcode::GET, b"", b"", b""), &mut wire)
            .unwrap();
        assert_eq!(wire.len(), 24);
    }

    #[test]
    fn roundtrip_getk_request() {
        let codec = MemcachedCodec::new();
        let req = request(opcode::GETK, b"user:42", b"", b"");
        let mut wire = Vec::new();
        codec.serialize(&req, &mut wire).unwrap();
        assert_eq!(wire.len(), 24 + 7);
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(message.uint_field("opcode"), Some(opcode::GETK));
                assert_eq!(message.str_field("key"), Some("user:42"));
                assert_eq!(message.uint_field("total_len"), Some(7));
                assert!(!is_response(&message));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn roundtrip_response_with_value() {
        let codec = MemcachedCodec::new();
        let resp = response(opcode::GETK, 0, b"user:42", b"the-cached-value");
        let mut wire = Vec::new();
        codec.serialize(&resp, &mut wire).unwrap();
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert!(is_response(&message));
                assert_eq!(message.bytes_field("value"), Some(&b"the-cached-value"[..]));
                assert_eq!(message.uint_field("total_len"), Some(7 + 16));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partial_header_is_incomplete() {
        let codec = MemcachedCodec::new();
        match codec.parse(&[0x80, 0x0c, 0x00], None).unwrap() {
            ParseOutcome::Incomplete { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partial_body_is_incomplete_with_exact_need() {
        let codec = MemcachedCodec::new();
        let mut wire = Vec::new();
        codec
            .serialize(&request(opcode::GET, b"abcd", b"", b""), &mut wire)
            .unwrap();
        match codec.parse(&wire[..26], None).unwrap() {
            ParseOutcome::Incomplete { needed } => assert_eq!(needed, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A header whose `total_len` is maxed out (4 GiB value) is rejected as
    /// malformed instead of being treated as a frame to buffer toward.
    #[test]
    fn hostile_total_len_is_malformed() {
        let codec = MemcachedCodec::new();
        let mut wire = Vec::new();
        codec
            .serialize(&request(opcode::GET, b"k", b"", b""), &mut wire)
            .unwrap();
        wire[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(codec.parse(&wire, None).is_err());
    }

    #[test]
    fn router_projection_keeps_only_needed_fields() {
        let codec = MemcachedCodec::new();
        let req = request(opcode::GETK, b"k1", b"", b"somevalue");
        let mut wire = Vec::new();
        codec.serialize(&req, &mut wire).unwrap();
        let projection = router_projection();
        match codec.parse(&wire, Some(&projection)).unwrap() {
            ParseOutcome::Complete { message, .. } => {
                assert_eq!(message.str_field("key"), Some("k1"));
                assert!(message.get("value").is_none());
                assert!(message.get("cas").is_none());
                // Pass-through still possible.
                let mut rewire = Vec::new();
                codec.serialize(&message, &mut rewire).unwrap();
                assert_eq!(rewire, wire);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_pipelined_commands_parse_sequentially() {
        let codec = MemcachedCodec::new();
        let mut wire = Vec::new();
        codec
            .serialize(&request(opcode::GET, b"a", b"", b""), &mut wire)
            .unwrap();
        let first_len = wire.len();
        codec
            .serialize(&request(opcode::GET, b"bb", b"", b""), &mut wire)
            .unwrap();
        match codec.parse(&wire, None).unwrap() {
            ParseOutcome::Complete { message, consumed } => {
                assert_eq!(consumed, first_len);
                assert_eq!(message.str_field("key"), Some("a"));
                match codec.parse(&wire[consumed..], None).unwrap() {
                    ParseOutcome::Complete { message, .. } => {
                        assert_eq!(message.str_field("key"), Some("bb"));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
