//! Hard resource bounds for wire parsing.
//!
//! Every codec carries a [`ParseLimits`]: the parsing *mechanism* enforces
//! these bounds unconditionally, regardless of what routing or retry
//! *policy* sits above it. A frame that exceeds a limit is rejected as
//! [`GrammarError::Malformed`](crate::GrammarError) immediately — the
//! parser never asks the transport to buffer more bytes than the limit
//! allows, so a hostile length field cannot make an ingest buffer grow
//! without bound.

/// Per-codec parsing bounds.
///
/// The defaults are deliberately generous for the built-in workloads
/// (64 KiB of headers, 16 MiB of body, 256 fields) while still finite:
/// a garbled or adversarial frame fails fast instead of accumulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum size of the message head (for HTTP: the request/status line
    /// plus headers including the blank-line terminator; for binary
    /// grammars: the fixed-size prefix is always far below this). A buffer
    /// that grows past this without completing a head is malformed.
    pub max_head_bytes: usize,
    /// Maximum size any single variable-length field (or an HTTP body) may
    /// declare. Length fields above this are malformed, even though the
    /// declared length itself fit in the wire integer.
    pub max_body_bytes: usize,
    /// Maximum number of fields (HTTP header lines, grammar items) one
    /// message may carry.
    pub max_fields: usize,
}

impl ParseLimits {
    /// The default head bound: 64 KiB.
    pub const DEFAULT_MAX_HEAD_BYTES: usize = 64 * 1024;
    /// The default per-field/body bound: 16 MiB.
    pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
    /// The default field-count bound.
    pub const DEFAULT_MAX_FIELDS: usize = 256;

    /// Limits that never reject (every bound at `usize::MAX`). Only for
    /// tests that exercise the arithmetic past the bounds.
    pub fn unbounded() -> Self {
        ParseLimits {
            max_head_bytes: usize::MAX,
            max_body_bytes: usize::MAX,
            max_fields: usize::MAX,
        }
    }
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_head_bytes: Self::DEFAULT_MAX_HEAD_BYTES,
            max_body_bytes: Self::DEFAULT_MAX_BODY_BYTES,
            max_fields: Self::DEFAULT_MAX_FIELDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_finite_and_generous() {
        let limits = ParseLimits::default();
        assert_eq!(limits.max_head_bytes, 64 * 1024);
        assert_eq!(limits.max_body_bytes, 16 * 1024 * 1024);
        assert_eq!(limits.max_fields, 256);
    }

    #[test]
    fn unbounded_never_clamps() {
        let limits = ParseLimits::unbounded();
        assert_eq!(limits.max_body_bytes, usize::MAX);
    }
}
