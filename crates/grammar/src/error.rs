//! Error type for grammar parsing and serialisation.

use std::fmt;

/// An error produced while parsing or serialising a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// The input bytes are not a valid message of the expected format.
    Malformed {
        /// The grammar/unit that was being parsed.
        unit: String,
        /// What went wrong.
        reason: String,
    },
    /// A message value was missing a field required for serialisation.
    MissingField {
        /// The grammar/unit being serialised.
        unit: String,
        /// The missing field.
        field: String,
    },
    /// A field value does not fit the wire representation (e.g. a length
    /// that exceeds the field's maximum, violating the bounded-size rule).
    FieldOverflow {
        /// The grammar/unit being serialised.
        unit: String,
        /// The offending field.
        field: String,
        /// The value that did not fit.
        value: u64,
        /// The maximum representable value.
        max: u64,
    },
    /// A declared grammar is internally inconsistent (e.g. a length
    /// expression references an unknown field).
    InvalidGrammar {
        /// The grammar/unit with the problem.
        unit: String,
        /// What is inconsistent.
        reason: String,
    },
}

impl GrammarError {
    /// Convenience constructor for [`GrammarError::Malformed`].
    pub fn malformed(unit: impl Into<String>, reason: impl Into<String>) -> Self {
        GrammarError::Malformed {
            unit: unit.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`GrammarError::InvalidGrammar`].
    pub fn invalid(unit: impl Into<String>, reason: impl Into<String>) -> Self {
        GrammarError::InvalidGrammar {
            unit: unit.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Malformed { unit, reason } => {
                write!(f, "malformed `{unit}` message: {reason}")
            }
            GrammarError::MissingField { unit, field } => {
                write!(f, "cannot serialise `{unit}`: missing field `{field}`")
            }
            GrammarError::FieldOverflow {
                unit,
                field,
                value,
                max,
            } => {
                write!(f, "field `{field}` of `{unit}` holds {value}, which exceeds the wire maximum {max}")
            }
            GrammarError::InvalidGrammar { unit, reason } => {
                write!(f, "invalid grammar `{unit}`: {reason}")
            }
        }
    }
}

impl std::error::Error for GrammarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GrammarError::FieldOverflow {
            unit: "cmd".into(),
            field: "key_len".into(),
            value: 70000,
            max: 65535,
        };
        let s = e.to_string();
        assert!(s.contains("key_len") && s.contains("65535"));
        let m = GrammarError::malformed("http", "truncated header");
        assert!(m.to_string().contains("truncated header"));
    }
}
