//! Field projections: the set of fields a FLICK program actually accesses.
//!
//! FLICK grammars aim to be reusable and therefore describe *all* fields of a
//! message format, but a given service usually touches only a few of them
//! (the Memcached router needs `opcode` and `key`, nothing else). The FLICK
//! compiler derives a [`Projection`] from the program's data-type
//! declarations and field accesses; parsers use it to skip materialising any
//! field outside the projection, keeping only the raw bytes for pass-through.

use std::collections::BTreeSet;

/// The set of message fields a service requires.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Projection {
    fields: BTreeSet<String>,
    /// When `true`, every field is required (equivalent to no projection).
    all: bool,
}

impl Projection {
    /// A projection that requires every field.
    pub fn all() -> Self {
        Projection {
            fields: BTreeSet::new(),
            all: true,
        }
    }

    /// An empty projection; fields can be added with [`Projection::with`].
    pub fn none() -> Self {
        Projection::default()
    }

    /// Builds a projection from an iterator of field names.
    pub fn of<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Projection {
            fields: names.into_iter().map(Into::into).collect(),
            all: false,
        }
    }

    /// Adds a field to the projection.
    pub fn with(mut self, name: impl Into<String>) -> Self {
        self.fields.insert(name.into());
        self
    }

    /// Returns `true` if the named field must be materialised.
    pub fn requires(&self, name: &str) -> bool {
        self.all || self.fields.contains(name)
    }

    /// Returns `true` if no specific fields are required (and not `all`).
    pub fn is_empty(&self) -> bool {
        !self.all && self.fields.is_empty()
    }

    /// Number of explicitly required fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Iterates over explicitly required field names.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_requires_everything() {
        let p = Projection::all();
        assert!(p.requires("anything"));
        // `all()` is not "empty" (it requires everything) yet names no
        // explicit fields.
        assert!(!p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn explicit_projection_filters() {
        let p = Projection::of(["opcode", "key"]);
        assert!(p.requires("key"));
        assert!(!p.requires("value"));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn with_adds_fields() {
        let p = Projection::none().with("key");
        assert!(p.requires("key"));
        assert!(!p.requires("opcode"));
        assert!(!p.is_empty());
    }

    #[test]
    fn iter_is_sorted_and_deduplicated() {
        let p = Projection::of(["b", "a", "b"]);
        let v: Vec<&str> = p.iter().collect();
        assert_eq!(v, vec!["a", "b"]);
    }
}
