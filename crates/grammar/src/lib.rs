//! Wire-format message grammars for FLICK.
//!
//! FLICK programs operate on application data types; the transformation
//! between wire format and typed values is described by a *message grammar*
//! (§4.2 of the paper), modelled on the Spicy / Binpac++ parser generators.
//! This crate provides:
//!
//! * a grammar model ([`model::UnitGrammar`]) with fixed- and variable-size
//!   fields, computed variables and byte-order control;
//! * an incremental, allocation-light parser ([`engine::GrammarCodec`])
//!   driven by a grammar, supporting *field projection* so that only the
//!   fields a FLICK program actually accesses are materialised;
//! * a matching serialiser that recomputes length fields;
//! * reusable built-in grammars for the Memcached binary protocol
//!   ([`memcached`]), HTTP/1.1 ([`http`]) and Hadoop intermediate key/value
//!   records ([`hadoop`]).
//!
//! # Examples
//!
//! ```
//! use flick_grammar::memcached::{self, MemcachedCodec};
//! use flick_grammar::{Message, ParseOutcome, WireCodec};
//!
//! let codec = MemcachedCodec::new();
//! let request = memcached::request(memcached::opcode::GETK, b"user:42", b"", b"");
//! let mut wire = Vec::new();
//! codec.serialize(&request, &mut wire).unwrap();
//! match codec.parse(&wire, None).unwrap() {
//!     ParseOutcome::Complete { message, consumed } => {
//!         assert_eq!(consumed, wire.len());
//!         assert_eq!(message.str_field("key").unwrap(), "user:42");
//!     }
//!     other => panic!("expected a complete message, got {other:?}"),
//! }
//! ```

pub mod engine;
pub mod error;
pub mod hadoop;
pub mod http;
pub mod limits;
pub mod memcached;
pub mod message;
pub mod model;
pub mod projection;

pub use engine::GrammarCodec;
pub use error::GrammarError;
pub use limits::ParseLimits;
pub use message::{Message, MsgValue};
pub use projection::Projection;

/// The result of attempting to parse one message from a byte buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome {
    /// The buffer does not yet contain a complete message.
    Incomplete {
        /// A lower bound on how many further bytes are needed, or 0 if the
        /// parser cannot tell yet.
        needed: usize,
    },
    /// A complete message was parsed.
    Complete {
        /// The parsed message.
        message: Message,
        /// How many bytes of the buffer the message occupied.
        consumed: usize,
    },
}

/// A parser/serialiser pair for one wire format.
///
/// Implementations must be cheap to share across threads: the FLICK runtime
/// clones one codec per input/output task.
pub trait WireCodec: Send + Sync {
    /// The name of the format (used in diagnostics and task labels).
    fn name(&self) -> &str;

    /// Attempts to parse one message from the front of `buf`.
    ///
    /// `projection`, when given, names the fields the caller will access;
    /// the codec may skip materialising any other field as long as the raw
    /// bytes of the message are preserved for pass-through forwarding.
    fn parse(
        &self,
        buf: &[u8],
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError>;

    /// Attempts to parse one message from the front of a *shared* buffer.
    ///
    /// Like [`WireCodec::parse`], but the input is a refcounted
    /// [`bytes::Bytes`], so codecs can bind the message (its raw
    /// pass-through bytes and its byte-field values) to the caller's
    /// allocation without copying — fields outside the projection are then
    /// never copied at all. The default implementation falls back to the
    /// borrowed-slice path; [`engine::GrammarCodec`] overrides it
    /// zero-copy, and wrapper codecs forward it.
    fn parse_bytes(
        &self,
        buf: &bytes::Bytes,
        projection: Option<&Projection>,
    ) -> Result<ParseOutcome, GrammarError> {
        self.parse(buf, projection)
    }

    /// Serialises `msg` to `out`, appending to it.
    ///
    /// If the message still carries its raw wire bytes and no field has been
    /// modified, implementations should copy those bytes through unchanged.
    fn serialize(&self, msg: &Message, out: &mut Vec<u8>) -> Result<(), GrammarError>;

    /// Serialises `msg` for a vectored (`writev`-style) output path:
    /// appends the leading part (headers, framing) to `out` and returns
    /// the trailing part — a refcounted body or the unmodified raw wire
    /// bytes — as a separate [`bytes::Bytes`] segment, so the transport
    /// can hand both to the kernel in one syscall without concatenating.
    ///
    /// Returning `Ok(None)` means everything was appended to `out` (the
    /// default, which simply falls back to [`WireCodec::serialize`]).
    /// Returning `Ok(Some(tail))` means the wire form is `out ++ tail`;
    /// in particular a pass-through message may leave `out` untouched and
    /// come back entirely as the shared segment. Implementations must
    /// produce byte-for-byte the same stream as `serialize`.
    fn serialize_parts(
        &self,
        msg: &Message,
        out: &mut Vec<u8>,
    ) -> Result<Option<bytes::Bytes>, GrammarError> {
        self.serialize(msg, out)?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip_example_compiles() {
        // Mirrors the doc example to keep it honest under `cargo test`.
        let codec = memcached::MemcachedCodec::new();
        let request = memcached::request(memcached::opcode::GET, b"k", b"", b"");
        let mut wire = Vec::new();
        codec.serialize(&request, &mut wire).unwrap();
        assert!(matches!(
            codec.parse(&wire, None).unwrap(),
            ParseOutcome::Complete { .. }
        ));
    }
}
