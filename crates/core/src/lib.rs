//! The FLICK public facade.
//!
//! `flick-core` ties the front end, the compiler and the platform runtime
//! together behind one small API: write (or embed) a FLICK program, compile
//! it, deploy it on a [`Platform`], and drive it with traffic over the
//! simulated network substrate.
//!
//! # Examples
//!
//! ```
//! use flick_core::Flick;
//!
//! let source = r#"
//! type pkt: record
//!   tag : integer {signed=false, size=1}
//!   keylen : integer {signed=false, size=2}
//!   key : string {size=keylen}
//!
//! proc Echo: (pkt/pkt client)
//!   client => client
//! "#;
//!
//! let flick = Flick::new(Default::default());
//! let service = flick.compile(source, "Echo").unwrap();
//! let deployed = flick.deploy("echo", 9100, service, &[]).unwrap();
//! let client = flick.net().connect(9100).unwrap();
//! client.write_all(&[7, 0, 2, b'h', b'i']).unwrap();
//! let mut buf = [0u8; 5];
//! client.read_exact_timeout(&mut buf, std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(&buf, &[7, 0, 2, b'h', b'i']);
//! drop(deployed);
//! ```

pub use flick_compiler::{compile, compile_source, CompileError, CompileOptions, CompiledService};
pub use flick_grammar as grammar;
pub use flick_lang as lang;
pub use flick_net as net;
pub use flick_runtime as runtime;
pub use flick_runtime::{
    GraphFactory, Platform, PlatformConfig, RuntimeError, SchedulingPolicy, ServiceSpec,
};

use flick_net::{SimNetwork, StackModel};
use flick_runtime::dispatcher::DeployedService;
use std::sync::Arc;

/// Top-level error type of the facade.
#[derive(Debug)]
pub enum FlickError {
    /// The FLICK program failed to compile.
    Compile(CompileError),
    /// The platform rejected the deployment.
    Runtime(RuntimeError),
}

impl std::fmt::Display for FlickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlickError::Compile(e) => write!(f, "compile error: {e}"),
            FlickError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for FlickError {}

impl From<CompileError> for FlickError {
    fn from(e: CompileError) -> Self {
        FlickError::Compile(e)
    }
}

impl From<RuntimeError> for FlickError {
    fn from(e: RuntimeError) -> Self {
        FlickError::Runtime(e)
    }
}

/// The FLICK framework: a running platform plus the compiler entry points.
pub struct Flick {
    platform: Platform,
    compile_options: CompileOptions,
}

impl std::fmt::Debug for Flick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flick")
            .field("platform", &self.platform)
            .finish()
    }
}

impl Flick {
    /// Starts a FLICK platform with the given configuration.
    pub fn new(config: PlatformConfig) -> Self {
        Flick {
            platform: Platform::new(config),
            compile_options: CompileOptions::default(),
        }
    }

    /// Starts a FLICK platform attached to an existing simulated network
    /// (so that clients, back-ends and the middlebox share one fabric).
    pub fn with_network(config: PlatformConfig, net: Arc<SimNetwork>) -> Self {
        Flick {
            platform: Platform::with_network(config, net),
            compile_options: CompileOptions::default(),
        }
    }

    /// Overrides the compile options used by [`Flick::compile`].
    pub fn set_compile_options(&mut self, options: CompileOptions) {
        self.compile_options = options;
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The simulated network.
    pub fn net(&self) -> Arc<SimNetwork> {
        self.platform.net()
    }

    /// The transport-stack model in use.
    pub fn stack(&self) -> StackModel {
        self.platform.net().model()
    }

    /// Compiles FLICK source for the named process.
    pub fn compile(&self, source: &str, process: &str) -> Result<Arc<CompiledService>, FlickError> {
        Ok(compile_source(source, process, &self.compile_options)?)
    }

    /// Deploys any graph factory (compiled FLICK program or hand-written
    /// service) on `port` with the given back-end ports.
    pub fn deploy(
        &self,
        name: &str,
        port: u16,
        factory: Arc<dyn GraphFactory>,
        backends: &[u16],
    ) -> Result<DeployedService, FlickError> {
        let spec = ServiceSpec::new(name, port, factory).with_backends(backends.to_vec());
        Ok(self.platform.deploy(spec)?)
    }

    /// Compiles and deploys in one step.
    pub fn run_program(
        &self,
        source: &str,
        process: &str,
        port: u16,
        backends: &[u16],
    ) -> Result<DeployedService, FlickError> {
        let service = self.compile(source, process)?;
        self.deploy(process, port, service, backends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const ECHO: &str = r#"
type pkt: record
  tag : integer {signed=false, size=1}
  keylen : integer {signed=false, size=2}
  key : string {size=keylen}

proc Echo: (pkt/pkt client)
  client => client
"#;

    #[test]
    fn compile_and_deploy_roundtrip() {
        let flick = Flick::new(PlatformConfig::default());
        let deployed = flick.run_program(ECHO, "Echo", 9200, &[]).unwrap();
        let client = flick.net().connect(9200).unwrap();
        client.write_all(&[1, 0, 3, b'a', b'b', b'c']).unwrap();
        let mut buf = [0u8; 6];
        client
            .read_exact_timeout(&mut buf, Duration::from_secs(5))
            .unwrap();
        assert_eq!(&buf, &[1, 0, 3, b'a', b'b', b'c']);
        assert_eq!(deployed.connections_accepted(), 1);
    }

    #[test]
    fn compile_error_is_surfaced() {
        let flick = Flick::new(PlatformConfig::default());
        let err = flick
            .compile("fun f: (x: integer) -> (integer)\n  f(x)\n", "P")
            .unwrap_err();
        assert!(matches!(err, FlickError::Compile(_)));
        assert!(err.to_string().contains("recursion"));
    }

    #[test]
    fn stack_model_is_exposed() {
        let flick = Flick::new(PlatformConfig::new(2, StackModel::Mtcp));
        assert_eq!(flick.stack(), StackModel::Mtcp);
    }
}
