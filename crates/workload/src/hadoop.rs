//! Hadoop mapper workload: wordcount intermediate key/value streams.
//!
//! §6.2 of the paper: the workload is a wordcount job with a high data
//! reduction ratio; the datasets consist of words of 8, 12 and 16
//! characters; each of the 8 mappers is connected over a 1 Gbps link. The
//! mapper fleet below generates that traffic shape: each mapper thread
//! streams length-prefixed `kv` records (word → count) over its own
//! rate-limited connection until the configured volume has been sent.

use crate::metrics::RunStats;
use flick_grammar::hadoop;
use flick_grammar::WireCodec;
use flick_net::listener::ConnectOptions;
use flick_net::{SimNetwork, SimRng};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one Hadoop mapper run.
#[derive(Debug, Clone)]
pub struct HadoopLoadConfig {
    /// Port of the in-network aggregator.
    pub port: u16,
    /// Number of mapper connections (the paper uses 8).
    pub mappers: usize,
    /// Word length in characters (8, 12 or 16 in the paper).
    pub word_len: usize,
    /// Number of distinct words (controls the reduction ratio).
    pub distinct_words: usize,
    /// Bytes each mapper sends.
    pub bytes_per_mapper: usize,
    /// Link rate per mapper in bits per second (1 Gbps in the paper); `None`
    /// disables rate limiting.
    pub link_bits_per_sec: Option<u64>,
    /// Seed for the dictionary and the mappers' word/count draws. `None`
    /// keeps the historic streams (dictionary seed 42, mapper seeds
    /// `1000 + index`); the simulation harness sets it so one scenario seed
    /// derives every random choice in the run.
    pub seed: Option<u64>,
}

impl Default for HadoopLoadConfig {
    fn default() -> Self {
        HadoopLoadConfig {
            port: 9600,
            mappers: 8,
            word_len: 8,
            distinct_words: 64,
            bytes_per_mapper: 256 * 1024,
            link_bits_per_sec: Some(1_000_000_000),
            seed: None,
        }
    }
}

/// Generates the dictionary of words used by the mappers with the historic
/// fixed seed, so existing callers (and benchmark baselines) see the exact
/// same words as before.
pub fn word_dictionary(word_len: usize, distinct_words: usize) -> Vec<String> {
    word_dictionary_seeded(42, word_len, distinct_words)
}

/// Generates a word dictionary from an explicit seed.
pub fn word_dictionary_seeded(seed: u64, word_len: usize, distinct_words: usize) -> Vec<String> {
    let mut rng = SimRng::new(seed);
    (0..distinct_words.max(1))
        .map(|i| {
            let mut word = format!("w{i}-");
            while word.len() < word_len {
                word.push((b'a' + rng.gen_range(0..26)) as char);
            }
            word.truncate(word_len.max(1));
            word
        })
        .collect()
}

/// Runs the mapper fleet and reports the aggregate sending statistics.
///
/// The run finishes when every mapper has pushed its configured volume and
/// closed its connection, so the caller can then wait for the aggregator to
/// drain and forward the combined stream.
pub fn run_hadoop_mappers(net: &Arc<SimNetwork>, config: &HadoopLoadConfig) -> RunStats {
    let codec = hadoop::HadoopKvCodec::new();
    let words = match config.seed {
        Some(seed) => word_dictionary_seeded(
            SimRng::new(seed).fork("hadoop-dict").seed(),
            config.word_len,
            config.distinct_words,
        ),
        None => word_dictionary(config.word_len, config.distinct_words),
    };
    let sent_bytes = Arc::new(AtomicU64::new(0));
    let sent_records = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for mapper in 0..config.mappers {
        let net = Arc::clone(net);
        let config = config.clone();
        let words = words.clone();
        let codec = codec.clone();
        let sent_bytes = Arc::clone(&sent_bytes);
        let sent_records = Arc::clone(&sent_records);
        let failed = Arc::clone(&failed);
        handles.push(std::thread::spawn(move || {
            let options = ConnectOptions {
                link_bits_per_sec: config.link_bits_per_sec,
                capacity: Some(512 * 1024),
            };
            let Ok(conn) = net.connect_with(config.port, &options) else {
                failed.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let mut rng = match config.seed {
                Some(seed) => SimRng::new(seed).fork_indexed(mapper as u64),
                None => SimRng::new(1000 + mapper as u64),
            };
            let mut sent = 0usize;
            let mut batch = Vec::with_capacity(32 * 1024);
            while sent < config.bytes_per_mapper {
                batch.clear();
                while batch.len() < 16 * 1024 && sent + batch.len() < config.bytes_per_mapper {
                    let word = &words[rng.gen_range(0..words.len())];
                    let record = hadoop::count_kv(word, rng.gen_range(1..100));
                    if codec.serialize(&record, &mut batch).is_err() {
                        break;
                    }
                    sent_records.fetch_add(1, Ordering::Relaxed);
                }
                if conn.write_all(&batch).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                sent += batch.len();
            }
            sent_bytes.fetch_add(sent as u64, Ordering::Relaxed);
            conn.close();
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    RunStats {
        completed: sent_records.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: Default::default(),
        bytes: sent_bytes.load(Ordering::Relaxed),
        malformed_sent: 0,
    }
}

/// Waits until the observed byte counter stops growing (the aggregated
/// stream has fully arrived at the reducer) or the timeout expires. Returns
/// the final value.
pub fn wait_for_quiescence(counter: &Arc<AtomicU64>, timeout: Duration) -> u64 {
    let deadline = Instant::now() + timeout;
    let mut last = counter.load(Ordering::Relaxed);
    let mut stable_since = Instant::now();
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        let now = counter.load(Ordering::Relaxed);
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() > Duration::from_millis(100) && now > 0 {
            break;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::start_sink_backend;
    use flick_net::StackModel;

    #[test]
    fn word_dictionary_has_requested_shape() {
        let words = word_dictionary(12, 10);
        assert_eq!(words.len(), 10);
        assert!(words.iter().all(|w| w.len() == 12));
        assert_eq!(
            words,
            word_dictionary(12, 10),
            "dictionary must be deterministic"
        );
    }

    #[test]
    fn mappers_stream_records_to_a_sink() {
        let net = SimNetwork::new(StackModel::Free);
        let (_sink, bytes) = start_sink_backend(&net, 9601);
        let config = HadoopLoadConfig {
            port: 9601,
            mappers: 2,
            word_len: 8,
            distinct_words: 16,
            bytes_per_mapper: 64 * 1024,
            link_bits_per_sec: None,
            seed: None,
        };
        let stats = run_hadoop_mappers(&net, &config);
        assert_eq!(stats.failed, 0);
        assert!(stats.bytes >= 2 * 64 * 1024 - 1024, "sent {}", stats.bytes);
        let received = wait_for_quiescence(&bytes, Duration::from_secs(5));
        assert!(
            received >= stats.bytes,
            "sink received {received} of {}",
            stats.bytes
        );
    }

    #[test]
    fn rate_limited_mappers_are_slower() {
        let net = SimNetwork::new(StackModel::Free);
        let (_sink, _bytes) = start_sink_backend(&net, 9602);
        let config = HadoopLoadConfig {
            port: 9602,
            mappers: 1,
            word_len: 8,
            distinct_words: 16,
            bytes_per_mapper: 192 * 1024,
            // 8 Mbit/s with a 64 KiB burst: 192 kB should take well over 100 ms.
            link_bits_per_sec: Some(8_000_000),
            seed: None,
        };
        let start = Instant::now();
        let stats = run_hadoop_mappers(&net, &config);
        assert_eq!(stats.failed, 0);
        assert!(
            start.elapsed() > Duration::from_millis(80),
            "took {:?}",
            start.elapsed()
        );
    }
}
