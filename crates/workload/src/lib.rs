//! Workload generators, back-end servers and measurement utilities.
//!
//! The paper's evaluation drives the FLICK middlebox with ApacheBench-style
//! HTTP clients, libmemcached clients and Hadoop mappers, against Apache
//! web-server back-ends and Memcached servers. This crate provides
//! in-process equivalents running over the simulated network substrate:
//!
//! * [`backends`] — a static HTTP back-end, an in-memory Memcached back-end
//!   and a byte-sink reducer;
//! * [`http`] — a closed-loop HTTP client fleet with persistent and
//!   non-persistent connection modes;
//! * [`memcached`] — a closed-loop Memcached binary-protocol client fleet;
//! * [`hadoop`] — mapper emitters producing wordcount key/value streams over
//!   rate-limited (1 Gbps) links;
//! * [`tcp`] — the same closed-loop HTTP fleet over **real** loopback
//!   sockets, for services deployed on the OS transport;
//! * [`metrics`] — throughput/latency recorders (mean, p50/p95/p99).

pub mod backends;
pub mod hadoop;
pub mod http;
pub mod memcached;
pub mod metrics;
pub mod tcp;

pub use metrics::{LatencyRecorder, LatencyStats, RunStats};
