//! Closed-loop Memcached binary-protocol client fleet (the libmemcached
//! stand-in of §6.2: every client sends a single request and waits for the
//! response before sending the next).

use crate::metrics::{LatencyRecorder, RunStats};
use flick_grammar::{memcached, ParseOutcome, WireCodec};
use flick_net::{NetError, SimNetwork, SimRng};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one Memcached load-generation run.
#[derive(Debug, Clone)]
pub struct MemcachedLoadConfig {
    /// Port of the proxy under test.
    pub port: u16,
    /// Number of concurrent clients (the paper uses 128).
    pub clients: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Size of the key space the clients draw from.
    pub key_space: usize,
    /// Fraction of `GETK` requests (the remainder are `GET`s); the FLICK
    /// cache router only caches `GETK` responses.
    pub getk_fraction: f64,
    /// Per-request timeout.
    pub timeout: Duration,
    /// Seed for the clients' key/opcode choices. `None` keeps the historic
    /// per-client streams (benchmarks stay comparable across runs); the
    /// simulation harness sets it so one scenario seed derives every random
    /// choice in the run.
    pub seed: Option<u64>,
}

impl Default for MemcachedLoadConfig {
    fn default() -> Self {
        MemcachedLoadConfig {
            port: 11211,
            clients: 32,
            duration: Duration::from_millis(500),
            key_space: 1000,
            getk_fraction: 1.0,
            timeout: Duration::from_secs(5),
            seed: None,
        }
    }
}

/// Runs the closed-loop Memcached workload and reports throughput/latency.
pub fn run_memcached_load(net: &Arc<SimNetwork>, config: &MemcachedLoadConfig) -> RunStats {
    let recorder = LatencyRecorder::new();
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = start + config.duration;
    let mut handles = Vec::new();
    for client_id in 0..config.clients {
        let net = Arc::clone(net);
        let config = config.clone();
        let recorder = recorder.clone();
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let bytes = Arc::clone(&bytes);
        handles.push(std::thread::spawn(move || {
            let codec = memcached::MemcachedCodec::new();
            let mut rng = match config.seed {
                Some(seed) => SimRng::new(seed).fork_indexed(client_id as u64),
                None => SimRng::new(client_id as u64 + 1),
            };
            let Ok(conn) = net.connect(config.port) else {
                failed.fetch_add(1, Ordering::Relaxed);
                return;
            };
            while Instant::now() < deadline {
                let key = format!("key:{}", rng.gen_range(0..config.key_space.max(1)));
                let opcode = if rng.gen_bool(config.getk_fraction.clamp(0.0, 1.0)) {
                    memcached::opcode::GETK
                } else {
                    memcached::opcode::GET
                };
                let request = memcached::request(opcode, key.as_bytes(), b"", b"");
                let mut wire = Vec::new();
                codec
                    .serialize(&request, &mut wire)
                    .expect("request serialises");
                let started = Instant::now();
                if conn.write_all(&wire).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let mut buf = Vec::with_capacity(256);
                let mut chunk = [0u8; 4096];
                let mut ok = false;
                while started.elapsed() < config.timeout {
                    match conn.read_timeout(&mut chunk, config.timeout) {
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            match codec.parse(&buf, None) {
                                Ok(ParseOutcome::Complete { consumed, .. }) => {
                                    bytes.fetch_add(consumed as u64, Ordering::Relaxed);
                                    ok = true;
                                    break;
                                }
                                Ok(ParseOutcome::Incomplete { .. }) => continue,
                                Err(_) => break,
                            }
                        }
                        Err(NetError::TimedOut) | Err(_) => break,
                    }
                }
                if ok {
                    completed.fetch_add(1, Ordering::Relaxed);
                    recorder.record(started.elapsed());
                } else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            conn.close();
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    RunStats {
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: recorder.stats(),
        bytes: bytes.load(Ordering::Relaxed),
        malformed_sent: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::start_memcached_backend;
    use flick_net::StackModel;

    #[test]
    fn memcached_load_against_a_direct_backend() {
        let net = SimNetwork::new(StackModel::Free);
        let _backend = start_memcached_backend(&net, 9501);
        let config = MemcachedLoadConfig {
            port: 9501,
            clients: 4,
            duration: Duration::from_millis(200),
            key_space: 16,
            getk_fraction: 1.0,
            timeout: Duration::from_secs(2),
            seed: None,
        };
        let stats = run_memcached_load(&net, &config);
        assert!(stats.completed > 10, "{stats:?}");
        assert_eq!(stats.failed, 0);
        assert!(stats.latency.p99 >= stats.latency.p50);
    }
}
