//! Closed-loop HTTP client fleet (the ApacheBench stand-in).

use crate::metrics::{LatencyRecorder, RunStats};
use flick_grammar::http::HttpCodec;
use flick_grammar::{ParseOutcome, WireCodec};
use flick_net::{NetError, SimNetwork, SimRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one HTTP load-generation run.
#[derive(Debug, Clone)]
pub struct HttpLoadConfig {
    /// Port of the system under test.
    pub port: u16,
    /// Number of concurrent client connections.
    pub concurrency: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// `true` for HTTP keep-alive (persistent connections); `false` opens a
    /// new connection per request.
    pub persistent: bool,
    /// Per-request timeout before the request counts as failed.
    pub timeout: Duration,
    /// Fraction of requests replaced by a malformed frame from the canned
    /// hostile corpus (oversized, duplicate and garbled `Content-Length`
    /// declarations). The server closing the poisoned connection is the
    /// expected outcome; such frames count in
    /// [`RunStats::malformed_sent`], never in completed/failed.
    pub hostile_ratio: f64,
    /// Seed for the deterministic per-client hostile draw.
    pub hostile_seed: u64,
}

impl Default for HttpLoadConfig {
    fn default() -> Self {
        HttpLoadConfig {
            port: 80,
            concurrency: 16,
            duration: Duration::from_millis(500),
            persistent: true,
            timeout: Duration::from_secs(5),
            hostile_ratio: 0.0,
            hostile_seed: 0x4057,
        }
    }
}

/// The canned poison corpus for hostile load runs: one frame per strict
/// `Content-Length` rejection class, mirroring the grammar-aware mutator
/// in `flick_sim` (which the workload crate cannot depend on — the sim
/// depends on us).
const HOSTILE_FRAMES: [&[u8]; 3] = [
    // Oversized declaration: 16 GiB against the 16 MiB default body cap.
    b"POST /hostile HTTP/1.1\r\nHost: bench\r\nContent-Length: 17179869184\r\n\r\n",
    // Two declarations that disagree.
    b"GET /hostile HTTP/1.1\r\nHost: bench\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\n",
    // A sign prefix is not a plain digit string.
    b"GET /hostile HTTP/1.1\r\nHost: bench\r\nContent-Length: +1\r\n\r\n",
];

/// Runs a closed-loop HTTP workload: each client keeps exactly one request
/// outstanding, as ApacheBench does.
pub fn run_http_load(net: &Arc<SimNetwork>, config: &HttpLoadConfig) -> RunStats {
    let recorder = LatencyRecorder::new();
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    let malformed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = start + config.duration;
    let mut handles = Vec::new();
    for client_id in 0..config.concurrency {
        let net = Arc::clone(net);
        let config = config.clone();
        let recorder = recorder.clone();
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let bytes = Arc::clone(&bytes);
        let malformed = Arc::clone(&malformed);
        handles.push(std::thread::spawn(move || {
            let codec = HttpCodec::new();
            let mut rng = SimRng::new(config.hostile_seed).fork_indexed(client_id as u64);
            let mut connection = None;
            let mut request_id = 0usize;
            while Instant::now() < deadline {
                // (Re-)establish the connection as needed.
                if connection.is_none() {
                    match net.connect(config.port) {
                        Ok(conn) => connection = Some(conn),
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                    }
                }
                let conn = connection.as_ref().expect("connection established");
                request_id += 1;
                if rng.chance(config.hostile_ratio) {
                    // Poison this turn: send a malformed frame and wait
                    // for the slammed door. The connection is spent
                    // either way — a server that answered would be the
                    // real problem, and the bench gate catches that as
                    // collapsed goodput.
                    let frame = HOSTILE_FRAMES[rng.pick(HOSTILE_FRAMES.len())];
                    malformed.fetch_add(1, Ordering::Relaxed);
                    if conn.write_all(frame).is_ok() {
                        let started = Instant::now();
                        let mut chunk = [0u8; 4096];
                        while started.elapsed() < config.timeout {
                            match conn.read_timeout(&mut chunk, config.timeout) {
                                Ok(_) => continue,
                                Err(_) => break,
                            }
                        }
                    }
                    if let Some(conn) = connection.take() {
                        conn.close();
                    }
                    continue;
                }
                let request = format!(
                    "GET /c{client_id}/r{request_id} HTTP/1.1\r\nHost: bench\r\n{}\r\n",
                    if config.persistent {
                        "Connection: keep-alive\r\n"
                    } else {
                        "Connection: close\r\n"
                    }
                );
                let started = Instant::now();
                if conn.write_all(request.as_bytes()).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                    connection = None;
                    continue;
                }
                // Read one full response.
                let mut buf = Vec::with_capacity(512);
                let mut chunk = [0u8; 4096];
                let mut ok = false;
                while started.elapsed() < config.timeout {
                    match conn.read_timeout(&mut chunk, config.timeout) {
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            match codec.parse(&buf, None) {
                                Ok(ParseOutcome::Complete { consumed, .. }) => {
                                    bytes.fetch_add(consumed as u64, Ordering::Relaxed);
                                    ok = true;
                                    break;
                                }
                                Ok(ParseOutcome::Incomplete { .. }) => continue,
                                Err(_) => break,
                            }
                        }
                        Err(NetError::TimedOut) | Err(_) => break,
                    }
                }
                if ok {
                    completed.fetch_add(1, Ordering::Relaxed);
                    recorder.record(started.elapsed());
                } else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    connection = None;
                    continue;
                }
                if !config.persistent {
                    if let Some(conn) = connection.take() {
                        conn.close();
                    }
                }
            }
            if let Some(conn) = connection.take() {
                conn.close();
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    RunStats {
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: recorder.stats(),
        bytes: bytes.load(Ordering::Relaxed),
        malformed_sent: malformed.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::start_http_backend;
    use flick_net::StackModel;

    #[test]
    fn load_generator_measures_a_direct_backend() {
        let net = SimNetwork::new(StackModel::Free);
        let _backend = start_http_backend(&net, 9401, b"ok");
        let config = HttpLoadConfig {
            port: 9401,
            concurrency: 4,
            duration: Duration::from_millis(200),
            persistent: true,
            timeout: Duration::from_secs(2),
            ..Default::default()
        };
        let stats = run_http_load(&net, &config);
        assert!(
            stats.completed > 10,
            "expected some completed requests, got {stats:?}"
        );
        assert!(stats.requests_per_sec() > 0.0);
        assert!(stats.latency.mean > Duration::ZERO);
    }

    #[test]
    fn hostile_ratio_sends_poison_without_sinking_the_run() {
        let net = SimNetwork::new(StackModel::Free);
        let _backend = start_http_backend(&net, 9403, b"ok");
        let config = HttpLoadConfig {
            port: 9403,
            concurrency: 4,
            duration: Duration::from_millis(200),
            persistent: true,
            timeout: Duration::from_secs(2),
            hostile_ratio: 0.25,
            ..Default::default()
        };
        let stats = run_http_load(&net, &config);
        assert!(stats.malformed_sent > 0, "poison never drawn: {stats:?}");
        assert!(
            stats.completed > 10,
            "clean traffic must keep flowing: {stats:?}"
        );
    }

    #[test]
    fn non_persistent_mode_reconnects_per_request() {
        let net = SimNetwork::new(StackModel::Free);
        let _backend = start_http_backend(&net, 9402, b"ok");
        let config = HttpLoadConfig {
            port: 9402,
            concurrency: 2,
            duration: Duration::from_millis(150),
            persistent: false,
            timeout: Duration::from_secs(2),
            ..Default::default()
        };
        let stats = run_http_load(&net, &config);
        assert!(stats.completed > 5);
        let opened = net.stats().snapshot().connections_opened;
        // Roughly one connection per completed request (plus the warm-up).
        assert!(
            opened >= stats.completed,
            "opened {opened}, completed {}",
            stats.completed
        );
    }
}
