//! Closed-loop HTTP client fleet (the ApacheBench stand-in).

use crate::metrics::{LatencyRecorder, RunStats};
use flick_grammar::http::HttpCodec;
use flick_grammar::{ParseOutcome, WireCodec};
use flick_net::{NetError, SimNetwork};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one HTTP load-generation run.
#[derive(Debug, Clone)]
pub struct HttpLoadConfig {
    /// Port of the system under test.
    pub port: u16,
    /// Number of concurrent client connections.
    pub concurrency: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// `true` for HTTP keep-alive (persistent connections); `false` opens a
    /// new connection per request.
    pub persistent: bool,
    /// Per-request timeout before the request counts as failed.
    pub timeout: Duration,
}

impl Default for HttpLoadConfig {
    fn default() -> Self {
        HttpLoadConfig {
            port: 80,
            concurrency: 16,
            duration: Duration::from_millis(500),
            persistent: true,
            timeout: Duration::from_secs(5),
        }
    }
}

/// Runs a closed-loop HTTP workload: each client keeps exactly one request
/// outstanding, as ApacheBench does.
pub fn run_http_load(net: &Arc<SimNetwork>, config: &HttpLoadConfig) -> RunStats {
    let recorder = LatencyRecorder::new();
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = start + config.duration;
    let mut handles = Vec::new();
    for client_id in 0..config.concurrency {
        let net = Arc::clone(net);
        let config = config.clone();
        let recorder = recorder.clone();
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let bytes = Arc::clone(&bytes);
        handles.push(std::thread::spawn(move || {
            let codec = HttpCodec::new();
            let mut connection = None;
            let mut request_id = 0usize;
            while Instant::now() < deadline {
                // (Re-)establish the connection as needed.
                if connection.is_none() {
                    match net.connect(config.port) {
                        Ok(conn) => connection = Some(conn),
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                    }
                }
                let conn = connection.as_ref().expect("connection established");
                request_id += 1;
                let request = format!(
                    "GET /c{client_id}/r{request_id} HTTP/1.1\r\nHost: bench\r\n{}\r\n",
                    if config.persistent {
                        "Connection: keep-alive\r\n"
                    } else {
                        "Connection: close\r\n"
                    }
                );
                let started = Instant::now();
                if conn.write_all(request.as_bytes()).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                    connection = None;
                    continue;
                }
                // Read one full response.
                let mut buf = Vec::with_capacity(512);
                let mut chunk = [0u8; 4096];
                let mut ok = false;
                while started.elapsed() < config.timeout {
                    match conn.read_timeout(&mut chunk, config.timeout) {
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            match codec.parse(&buf, None) {
                                Ok(ParseOutcome::Complete { consumed, .. }) => {
                                    bytes.fetch_add(consumed as u64, Ordering::Relaxed);
                                    ok = true;
                                    break;
                                }
                                Ok(ParseOutcome::Incomplete { .. }) => continue,
                                Err(_) => break,
                            }
                        }
                        Err(NetError::TimedOut) | Err(_) => break,
                    }
                }
                if ok {
                    completed.fetch_add(1, Ordering::Relaxed);
                    recorder.record(started.elapsed());
                } else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    connection = None;
                    continue;
                }
                if !config.persistent {
                    if let Some(conn) = connection.take() {
                        conn.close();
                    }
                }
            }
            if let Some(conn) = connection.take() {
                conn.close();
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    RunStats {
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: recorder.stats(),
        bytes: bytes.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::start_http_backend;
    use flick_net::StackModel;

    #[test]
    fn load_generator_measures_a_direct_backend() {
        let net = SimNetwork::new(StackModel::Free);
        let _backend = start_http_backend(&net, 9401, b"ok");
        let config = HttpLoadConfig {
            port: 9401,
            concurrency: 4,
            duration: Duration::from_millis(200),
            persistent: true,
            timeout: Duration::from_secs(2),
        };
        let stats = run_http_load(&net, &config);
        assert!(
            stats.completed > 10,
            "expected some completed requests, got {stats:?}"
        );
        assert!(stats.requests_per_sec() > 0.0);
        assert!(stats.latency.mean > Duration::ZERO);
    }

    #[test]
    fn non_persistent_mode_reconnects_per_request() {
        let net = SimNetwork::new(StackModel::Free);
        let _backend = start_http_backend(&net, 9402, b"ok");
        let config = HttpLoadConfig {
            port: 9402,
            concurrency: 2,
            duration: Duration::from_millis(150),
            persistent: false,
            timeout: Duration::from_secs(2),
        };
        let stats = run_http_load(&net, &config);
        assert!(stats.completed > 5);
        let opened = net.stats().snapshot().connections_opened;
        // Roughly one connection per completed request (plus the warm-up).
        assert!(
            opened >= stats.completed,
            "opened {opened}, completed {}",
            stats.completed
        );
    }
}
