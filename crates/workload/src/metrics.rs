//! Throughput and latency measurement.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Collects per-request latencies from many client threads.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Arc<Mutex<Vec<u64>>>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one request latency.
    pub fn record(&self, latency: Duration) {
        self.samples.lock().push(latency.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// Computes summary statistics over the recorded samples.
    pub fn stats(&self) -> LatencyStats {
        let mut samples = self.samples.lock().clone();
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|s| *s as u128).sum();
        let pct = |p: f64| -> Duration {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            Duration::from_nanos(samples[idx.min(count - 1)])
        };
        LatencyStats {
            count,
            mean: Duration::from_nanos((sum / count as u128) as u64),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: Duration::from_nanos(*samples.last().expect("non-empty")),
        }
    }
}

/// Summary latency statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum observed latency.
    pub max: Duration,
}

/// The outcome of one workload run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Requests (or records) completed.
    pub completed: u64,
    /// Requests that failed (timed out or hit a closed connection).
    pub failed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency summary over completed requests.
    pub latency: LatencyStats,
    /// Payload bytes moved (used for throughput-oriented runs).
    pub bytes: u64,
    /// Deliberately malformed frames sent (hostile-traffic runs). These
    /// count in neither `completed` nor `failed`: the server closing the
    /// poisoned connection is the expected outcome, not a request result.
    pub malformed_sent: u64,
}

impl RunStats {
    /// Requests per second over the run.
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Throughput in megabits per second over the run.
    pub fn megabits_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 * 8.0 / 1_000_000.0 / self.elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_are_ordered() {
        let rec = LatencyRecorder::new();
        for i in 1..=100u64 {
            rec.record(Duration::from_micros(i));
        }
        let stats = rec.stats();
        assert_eq!(stats.count, 100);
        assert!(stats.p50 <= stats.p95);
        assert!(stats.p95 <= stats.p99);
        assert!(stats.p99 <= stats.max);
        assert_eq!(stats.max, Duration::from_micros(100));
        assert!(stats.mean >= Duration::from_micros(45) && stats.mean <= Duration::from_micros(55));
    }

    #[test]
    fn empty_recorder_yields_default_stats() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.stats(), LatencyStats::default());
    }

    #[test]
    fn run_stats_rates() {
        let stats = RunStats {
            completed: 1000,
            failed: 0,
            elapsed: Duration::from_secs(2),
            latency: LatencyStats::default(),
            bytes: 2_000_000,
            malformed_sent: 0,
        };
        assert!((stats.requests_per_sec() - 500.0).abs() < 1e-9);
        assert!((stats.megabits_per_sec() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_is_shared_between_clones() {
        let rec = LatencyRecorder::new();
        let rec2 = rec.clone();
        rec.record(Duration::from_millis(1));
        rec2.record(Duration::from_millis(2));
        assert_eq!(rec.len(), 2);
    }
}
