//! Back-end servers used behind the middleboxes under test.
//!
//! The paper's testbed runs Apache web servers behind the HTTP load balancer
//! and Memcached servers behind the proxy. These are in-process equivalents:
//! each back-end accepts connections on the simulated network and serves
//! requests from a small thread pool (back-ends are never the bottleneck in
//! the experiments, mirroring §6.2's "small payloads so the network and the
//! backends are never the bottleneck").

use flick_grammar::http::HttpCodec;
use flick_grammar::{memcached, ParseOutcome, WireCodec};
use flick_net::{NetError, SimListener, SimNetwork};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running back-end server; dropping it stops the server.
pub struct BackendHandle {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
    port: u16,
}

impl std::fmt::Debug for BackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendHandle")
            .field("port", &self.port)
            .finish()
    }
}

impl BackendHandle {
    /// The port the back-end listens on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the server and joins its threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for BackendHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop<F>(listener: SimListener, stop: Arc<AtomicBool>, handler: F) -> Vec<JoinHandle<()>>
where
    F: Fn(flick_net::Endpoint) + Send + Sync + 'static,
{
    let handler = Arc::new(handler);
    let accept_stop = Arc::clone(&stop);
    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let conn_threads_accept = Arc::clone(&conn_threads);
    let acceptor = std::thread::spawn(move || {
        while !accept_stop.load(Ordering::Acquire) {
            match listener.accept_timeout(Duration::from_millis(10)) {
                Ok(conn) => {
                    let handler = Arc::clone(&handler);
                    let t = std::thread::spawn(move || handler(conn));
                    conn_threads_accept.lock().push(t);
                }
                Err(NetError::TimedOut) => continue,
                Err(_) => break,
            }
        }
        listener.close();
    });
    vec![acceptor]
}

/// Starts a static HTTP back-end serving `body` for every request.
pub fn start_http_backend(net: &Arc<SimNetwork>, port: u16, body: &[u8]) -> BackendHandle {
    let listener = net.listen(port).expect("backend port free");
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let body = body.to_vec();
    let codec = HttpCodec::new();
    let requests_handler = Arc::clone(&requests);
    let stop_handler = Arc::clone(&stop);
    let threads = acceptor_loop(listener, Arc::clone(&stop), move |conn| {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 8192];
        loop {
            if stop_handler.load(Ordering::Acquire) {
                conn.close();
                return;
            }
            match conn.read_timeout(&mut chunk, Duration::from_millis(50)) {
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(NetError::TimedOut) => continue,
                Err(_) => {
                    conn.close();
                    return;
                }
            }
            loop {
                match codec.parse(&buf, None) {
                    Ok(ParseOutcome::Complete { message, consumed }) => {
                        buf.drain(..consumed);
                        requests_handler.fetch_add(1, Ordering::Relaxed);
                        let mut out = Vec::new();
                        codec
                            .serialize(&flick_grammar::http::response(200, &body), &mut out)
                            .expect("static response serialises");
                        if conn.write_all(&out).is_err() {
                            conn.close();
                            return;
                        }
                        if flick_grammar::http::wants_close(&message) {
                            conn.close();
                            return;
                        }
                    }
                    Ok(ParseOutcome::Incomplete { .. }) => break,
                    Err(_) => {
                        conn.close();
                        return;
                    }
                }
            }
        }
    });
    BackendHandle {
        stop,
        threads,
        requests,
        port,
    }
}

/// Starts an in-memory Memcached back-end speaking the binary protocol.
///
/// `GETK`/`GET` requests are answered with the stored value (or a fixed
/// filler value when the key is unknown), `SET` stores the value.
pub fn start_memcached_backend(net: &Arc<SimNetwork>, port: u16) -> BackendHandle {
    let listener = net.listen(port).expect("backend port free");
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let store: Arc<Mutex<HashMap<String, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    let codec = memcached::MemcachedCodec::new();
    let requests_handler = Arc::clone(&requests);
    let stop_handler = Arc::clone(&stop);
    let threads = acceptor_loop(listener, Arc::clone(&stop), move |conn| {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 8192];
        loop {
            if stop_handler.load(Ordering::Acquire) {
                conn.close();
                return;
            }
            match conn.read_timeout(&mut chunk, Duration::from_millis(50)) {
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(NetError::TimedOut) => continue,
                Err(_) => {
                    conn.close();
                    return;
                }
            }
            loop {
                match codec.parse(&buf, None) {
                    Ok(ParseOutcome::Complete { message, consumed }) => {
                        buf.drain(..consumed);
                        requests_handler.fetch_add(1, Ordering::Relaxed);
                        let key = message.str_field("key").unwrap_or("").to_string();
                        let opcode = message.uint_field("opcode").unwrap_or(0);
                        let response = if opcode == memcached::opcode::SET {
                            let value = message.bytes_field("value").unwrap_or(&[]).to_vec();
                            store.lock().insert(key.clone(), value);
                            memcached::response(opcode, 0, b"", b"")
                        } else {
                            let value = store
                                .lock()
                                .get(&key)
                                .cloned()
                                .unwrap_or_else(|| b"default-value-from-backend".to_vec());
                            memcached::response(opcode, 0, key.as_bytes(), &value)
                        };
                        let mut out = Vec::new();
                        codec
                            .serialize(&response, &mut out)
                            .expect("response serialises");
                        if conn.write_all(&out).is_err() {
                            conn.close();
                            return;
                        }
                    }
                    Ok(ParseOutcome::Incomplete { .. }) => break,
                    Err(_) => {
                        conn.close();
                        return;
                    }
                }
            }
        }
    });
    BackendHandle {
        stop,
        threads,
        requests,
        port,
    }
}

/// Starts a byte-sink back-end (the Hadoop reducer): it drains everything it
/// receives and counts records and bytes.
pub fn start_sink_backend(net: &Arc<SimNetwork>, port: u16) -> (BackendHandle, Arc<AtomicU64>) {
    let listener = net.listen(port).expect("backend port free");
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    let bytes_handler = Arc::clone(&bytes);
    let requests_handler = Arc::clone(&requests);
    let stop_handler = Arc::clone(&stop);
    let threads = acceptor_loop(listener, Arc::clone(&stop), move |conn| {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if stop_handler.load(Ordering::Acquire) {
                conn.close();
                return;
            }
            match conn.read_timeout(&mut chunk, Duration::from_millis(50)) {
                Ok(n) => {
                    bytes_handler.fetch_add(n as u64, Ordering::Relaxed);
                    requests_handler.fetch_add(1, Ordering::Relaxed);
                }
                Err(NetError::TimedOut) => continue,
                Err(_) => {
                    conn.close();
                    return;
                }
            }
        }
    });
    (
        BackendHandle {
            stop,
            threads,
            requests,
            port,
        },
        bytes,
    )
}

// ---------------------------------------------------------------------------
// Real-socket back-ends
// ---------------------------------------------------------------------------

/// Handle to a running loopback TCP back-end; dropping it stops the server.
///
/// The kernel-socket counterpart of [`start_http_backend`]: a blocking
/// `std::net` HTTP server used behind a TCP-fronted load balancer so the
/// whole `client → LB → backend` path traverses real sockets.
pub struct TcpBackendHandle {
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
    addr: String,
}

impl std::fmt::Debug for TcpBackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBackendHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl TcpBackendHandle {
    /// The socket address the back-end listens on (`127.0.0.1:<port>`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the server and joins the acceptor thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Poke the blocking accept loop so it observes the flag.
        let _ = std::net::TcpStream::connect(&self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpBackendHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a static HTTP back-end on a real loopback socket, serving `body`
/// for every request. Binds an ephemeral port; read it back with
/// [`TcpBackendHandle::addr`].
pub fn start_tcp_http_backend(body: &[u8]) -> TcpBackendHandle {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback backend");
    let addr = format!(
        "127.0.0.1:{}",
        listener.local_addr().expect("local addr").port()
    );
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let body = body.to_vec();
    let accept_stop = Arc::clone(&stop);
    let accept_requests = Arc::clone(&requests);
    let acceptor = std::thread::spawn(move || {
        let codec = HttpCodec::new();
        let mut response = Vec::new();
        codec
            .serialize(&flick_grammar::http::response(200, &body), &mut response)
            .expect("static response serialises");
        let response = Arc::new(response);
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let requests = Arc::clone(&accept_requests);
            let stop = Arc::clone(&accept_stop);
            let response = Arc::clone(&response);
            std::thread::spawn(move || {
                use std::io::{Read, Write};
                let codec = HttpCodec::new();
                let mut buf = Vec::new();
                let mut chunk = [0u8; 8 * 1024];
                while !stop.load(Ordering::Acquire) {
                    match stream.read(&mut chunk) {
                        Ok(0) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock
                                    | std::io::ErrorKind::TimedOut
                                    | std::io::ErrorKind::Interrupted
                            ) =>
                        {
                            continue
                        }
                        Err(_) => return,
                    }
                    loop {
                        match codec.parse(&buf, None) {
                            Ok(ParseOutcome::Complete { message, consumed }) => {
                                buf.drain(..consumed);
                                requests.fetch_add(1, Ordering::Relaxed);
                                if stream.write_all(&response).is_err()
                                    || flick_grammar::http::wants_close(&message)
                                {
                                    return;
                                }
                            }
                            Ok(ParseOutcome::Incomplete { .. }) => break,
                            Err(_) => return,
                        }
                    }
                }
            });
        }
    });
    TcpBackendHandle {
        stop,
        acceptor: Some(acceptor),
        requests,
        addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_net::StackModel;

    #[test]
    fn tcp_http_backend_serves_requests_over_the_kernel() {
        let backend = start_tcp_http_backend(b"tcp-body");
        let response =
            crate::tcp::fetch_http(backend.addr(), "/x", Duration::from_secs(5)).unwrap();
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("tcp-body"));
        assert!(backend.requests_served() >= 1);
    }

    #[test]
    fn http_backend_serves_requests() {
        let net = SimNetwork::new(StackModel::Free);
        let backend = start_http_backend(&net, 9301, b"payload-137-bytes");
        let conn = net.connect(9301).unwrap();
        conn.write_all(b"GET /x HTTP/1.1\r\nHost: b\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 512];
        let n = conn.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();
        let text = String::from_utf8_lossy(&buf[..n]);
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("payload-137-bytes"));
        assert!(backend.requests_served() >= 1);
    }

    #[test]
    fn memcached_backend_set_then_get() {
        let net = SimNetwork::new(StackModel::Free);
        let _backend = start_memcached_backend(&net, 9302);
        let codec = memcached::MemcachedCodec::new();
        let conn = net.connect(9302).unwrap();

        let mut wire = Vec::new();
        codec
            .serialize(
                &memcached::request(memcached::opcode::SET, b"k1", b"", b"v1"),
                &mut wire,
            )
            .unwrap();
        conn.write_all(&wire).unwrap();
        let mut buf = vec![0u8; 1024];
        let _ = conn.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();

        let mut wire = Vec::new();
        codec
            .serialize(
                &memcached::request(memcached::opcode::GETK, b"k1", b"", b""),
                &mut wire,
            )
            .unwrap();
        conn.write_all(&wire).unwrap();
        let mut collected = Vec::new();
        let response = loop {
            let n = conn.read_timeout(&mut buf, Duration::from_secs(5)).unwrap();
            collected.extend_from_slice(&buf[..n]);
            if let Ok(ParseOutcome::Complete { message, .. }) = codec.parse(&collected, None) {
                break message;
            }
        };
        assert_eq!(response.bytes_field("value"), Some(&b"v1"[..]));
    }

    #[test]
    fn sink_backend_counts_bytes() {
        let net = SimNetwork::new(StackModel::Free);
        let (_backend, bytes) = start_sink_backend(&net, 9303);
        let conn = net.connect(9303).unwrap();
        conn.write_all(&[0u8; 4096]).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while bytes.load(Ordering::Relaxed) < 4096 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(bytes.load(Ordering::Relaxed), 4096);
    }
}
