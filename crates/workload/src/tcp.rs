//! Real-socket workload driver: a closed-loop HTTP client pool over
//! loopback TCP.
//!
//! The OS-transport counterpart of [`crate::http::run_http_load`]: the same
//! ApacheBench-style closed loop (each client keeps exactly one request
//! outstanding) but over blocking `std::net::TcpStream`s against a real
//! listening socket, with the same [`RunStats`] latency/throughput report.
//! Used by `fig_webserver --tcp`, the e2e loopback bench point in
//! `bench_guard`, and the `tcp_transport` integration suite.

use crate::metrics::{LatencyRecorder, RunStats};
use flick_grammar::http::HttpCodec;
use flick_grammar::{ParseOutcome, WireCodec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one loopback HTTP load-generation run.
#[derive(Debug, Clone)]
pub struct TcpHttpLoadConfig {
    /// Number of concurrent client connections (threads).
    pub concurrency: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// `true` for HTTP keep-alive; `false` opens a new connection per
    /// request.
    pub persistent: bool,
    /// Per-request timeout before the request counts as failed.
    pub timeout: Duration,
}

impl Default for TcpHttpLoadConfig {
    fn default() -> Self {
        TcpHttpLoadConfig {
            concurrency: 16,
            duration: Duration::from_millis(500),
            persistent: true,
            timeout: Duration::from_secs(5),
        }
    }
}

fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Issues one GET and returns the raw response bytes (headers + body) —
/// the in-process equivalent of a `curl` smoke test.
pub fn fetch_http(addr: &str, path: &str, timeout: Duration) -> std::io::Result<Vec<u8>> {
    let codec = HttpCodec::new();
    let mut stream = connect(addr, timeout)?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let started = Instant::now();
    while started.elapsed() < timeout {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                if matches!(
                    codec.parse(&response, None),
                    Ok(ParseOutcome::Complete { .. })
                ) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(response)
}

/// Runs a closed-loop HTTP workload over real loopback sockets.
pub fn run_tcp_http_load(addr: &str, config: &TcpHttpLoadConfig) -> RunStats {
    let recorder = LatencyRecorder::new();
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = start + config.duration;
    let mut handles = Vec::new();
    for client_id in 0..config.concurrency {
        let addr = addr.to_string();
        let config = config.clone();
        let recorder = recorder.clone();
        let completed = Arc::clone(&completed);
        let failed = Arc::clone(&failed);
        let bytes = Arc::clone(&bytes);
        handles.push(std::thread::spawn(move || {
            let codec = HttpCodec::new();
            let mut connection: Option<TcpStream> = None;
            let mut request_id = 0usize;
            while Instant::now() < deadline {
                if connection.is_none() {
                    match connect(&addr, config.timeout) {
                        Ok(stream) => connection = Some(stream),
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                    }
                }
                let conn = connection.as_mut().expect("connection established");
                request_id += 1;
                let request = format!(
                    "GET /c{client_id}/r{request_id} HTTP/1.1\r\nHost: bench\r\n{}\r\n",
                    if config.persistent {
                        "Connection: keep-alive\r\n"
                    } else {
                        "Connection: close\r\n"
                    }
                );
                let started = Instant::now();
                if conn.write_all(request.as_bytes()).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                    connection = None;
                    continue;
                }
                // Read one full response.
                let mut buf = Vec::with_capacity(512);
                let mut chunk = [0u8; 4096];
                let mut ok = false;
                while started.elapsed() < config.timeout {
                    match conn.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            match codec.parse(&buf, None) {
                                Ok(ParseOutcome::Complete { consumed, .. }) => {
                                    bytes.fetch_add(consumed as u64, Ordering::Relaxed);
                                    ok = true;
                                    break;
                                }
                                Ok(ParseOutcome::Incomplete { .. }) => continue,
                                Err(_) => break,
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
                if ok {
                    completed.fetch_add(1, Ordering::Relaxed);
                    recorder.record(started.elapsed());
                } else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    connection = None;
                    continue;
                }
                if !config.persistent {
                    connection = None; // Drop closes the socket.
                }
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    RunStats {
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        latency: recorder.stats(),
        bytes: bytes.load(Ordering::Relaxed),
        malformed_sent: 0,
    }
}

/// Configuration of a c10k-style idle+active run: a large pool of
/// connected-but-silent clients is held open for the whole run while a
/// small closed-loop subset drives requests through the same listener.
#[derive(Debug, Clone)]
pub struct TcpIdleActiveConfig {
    /// Connections opened before the run and held idle (no bytes sent)
    /// until it finishes.
    pub idle_connections: usize,
    /// The active closed-loop subset.
    pub active: TcpHttpLoadConfig,
}

/// Result of [`run_tcp_idle_active_load`].
#[derive(Debug)]
pub struct IdleActiveStats {
    /// Idle connections successfully established (may fall short of the
    /// request under fd pressure).
    pub idle_connected: usize,
    /// Idle connections still alive once the active run finished — a
    /// server that sheds or resets idle connections under load shows up
    /// as `idle_survivors < idle_connected`.
    pub idle_survivors: usize,
    /// The active subset's closed-loop stats.
    pub active: RunStats,
}

/// Floor on the warm-up request's patience: accepting and building
/// graphs for ten thousand idle connections takes a while on small
/// hosts, and a timed-out warm-up would put the drain back inside the
/// measured window.
const WARMUP_TIMEOUT: Duration = Duration::from_secs(30);

/// Size of the connect pool used to establish the idle mass. Serial
/// connects pay one loopback round-trip each — tens of seconds at c10k
/// scale — while a handful of workers overlap the handshakes without
/// stampeding the server's accept queue.
const IDLE_CONNECT_WORKERS: usize = 8;

/// Opens up to `count` idle connections from `count.min(8)` worker
/// threads. Each worker stops at its first connect failure (fd
/// exhaustion, locally or remotely, hits every worker the same way), so
/// the pool as a whole degrades to "measure with what we got" exactly
/// like the old serial loop did.
fn connect_idle_pool(addr: &str, count: usize, timeout: Duration) -> Vec<TcpStream> {
    let workers = IDLE_CONNECT_WORKERS.min(count.max(1));
    let mut handles = Vec::with_capacity(workers);
    for worker in 0..workers {
        // Spread the remainder over the first `count % workers` workers.
        let quota = count / workers + usize::from(worker < count % workers);
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            let mut opened = Vec::with_capacity(quota);
            for _ in 0..quota {
                match connect(&addr, timeout) {
                    Ok(stream) => opened.push(stream),
                    Err(_) => break,
                }
            }
            opened
        }));
    }
    let mut idle = Vec::with_capacity(count);
    for handle in handles {
        idle.extend(handle.join().unwrap_or_default());
    }
    idle
}

/// Runs the c10k shape: `idle_connections` silent connections pinned open
/// while the active closed loop measures throughput/latency. The server
/// pays whatever its event machinery charges for the idle mass — a
/// scanning dispatcher degrades with the idle count, a wakeup-based one
/// must not.
pub fn run_tcp_idle_active_load(addr: &str, config: &TcpIdleActiveConfig) -> IdleActiveStats {
    let idle = connect_idle_pool(addr, config.idle_connections, config.active.timeout);
    let idle_connected = idle.len();
    // The client-side connects above complete as soon as the kernel
    // handshake does — the server may still be draining a huge accept
    // backlog. One warm-up request (accepted behind the whole idle pool)
    // settles the race: once it answers, the server has caught up, and
    // the active loop below measures steady state rather than the drain.
    let _ = fetch_http(addr, "/warmup", config.active.timeout.max(WARMUP_TIMEOUT));
    let active = run_tcp_http_load(addr, &config.active);
    // An idle connection survived if it still reads as "no data yet"
    // rather than EOF/reset.
    let idle_survivors = idle
        .iter()
        .filter(|stream| {
            if stream.set_nonblocking(true).is_err() {
                return false;
            }
            let mut probe = [0u8; 1];
            match (&**stream).read(&mut probe) {
                Ok(0) => false,
                Ok(_) => true,
                Err(e) => e.kind() == std::io::ErrorKind::WouldBlock,
            }
        })
        .count();
    IdleActiveStats {
        idle_connected,
        idle_survivors,
        active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A minimal blocking HTTP server thread: enough to validate the
    /// driver without the FLICK platform (which has its own suite).
    fn start_tiny_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for stream in listener.incoming().take(8) {
                let Ok(mut stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    let body = b"tiny";
                    while let Ok(n) = stream.read(&mut buf) {
                        if n == 0 {
                            break;
                        }
                        let response =
                            format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", body.len());
                        if stream.write_all(response.as_bytes()).is_err()
                            || stream.write_all(body).is_err()
                        {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn driver_measures_a_tiny_server() {
        let (addr, _handle) = start_tiny_server();
        let stats = run_tcp_http_load(
            &addr,
            &TcpHttpLoadConfig {
                concurrency: 2,
                duration: Duration::from_millis(200),
                persistent: true,
                timeout: Duration::from_secs(2),
            },
        );
        assert!(stats.completed > 5, "{stats:?}");
        assert!(stats.requests_per_sec() > 0.0);
    }

    #[test]
    fn idle_active_driver_counts_survivors() {
        let (addr, _handle) = start_tiny_server();
        let stats = run_tcp_idle_active_load(
            &addr,
            &TcpIdleActiveConfig {
                idle_connections: 3,
                active: TcpHttpLoadConfig {
                    concurrency: 2,
                    duration: Duration::from_millis(200),
                    persistent: true,
                    timeout: Duration::from_secs(2),
                },
            },
        );
        assert_eq!(stats.idle_connected, 3);
        assert_eq!(
            stats.idle_survivors, 3,
            "idle connections must outlive the run"
        );
        assert!(stats.active.completed > 0, "{stats:?}");
    }

    #[test]
    fn idle_pool_connects_in_parallel_with_remainder_quotas() {
        // More connections than workers, not divisible by the pool size:
        // the per-worker quotas must still sum to the request.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());
        let accepter = std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().take(19).flatten() {
                held.push(stream);
            }
            held
        });
        let idle = connect_idle_pool(&addr, 19, Duration::from_secs(5));
        assert_eq!(idle.len(), 19);
        drop(idle);
        let _ = accepter.join();
    }

    #[test]
    fn fetch_smoke_returns_a_parsed_response() {
        let (addr, _handle) = start_tiny_server();
        let response = fetch_http(&addr, "/x", Duration::from_secs(2)).unwrap();
        assert!(String::from_utf8_lossy(&response).starts_with("HTTP/1.1 200 OK"));
    }
}
