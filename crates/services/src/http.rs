//! The HTTP use case: load balancer and static web server (Figure 3a).
//!
//! The load balancer forwards each incoming HTTP request to one of a number
//! of backend web servers, choosing the backend with a naive hash of the
//! connection identity; subsequent requests on the same connection go to the
//! same backend, and the return path forwards data without parsing (§6.1).
//! The static-web-server variant answers every request itself with a fixed
//! payload and is used to exercise the platform without backends.

use flick_grammar::http::{self, HttpCodec};
use flick_net::Endpoint;
use flick_runtime::platform::BuiltGraph;
use flick_runtime::tasks::{InputTask, OutputTask};
use flick_runtime::{
    ComputeLogic, ComputeTask, GraphBuilder, GraphFactory, Outputs, RuntimeError, ServiceEnv,
    TaskId, Value, Watch,
};
use std::sync::Arc;

/// The FLICK program for the HTTP load balancer, as a developer would write
/// it. The hand-assembled task graph below is exactly the graph the compiler
/// produces for it, specialised to connect lazily to the single chosen
/// backend (Figure 3a).
pub const HTTP_LB_FLICK_SOURCE: &str = r#"
type request: record
  path : string

proc HttpBalancer: (request/request client, [request/request] backends)
  client => pick_backend(backends)
  backends => client

fun pick_backend: ([-/request] backends, req: request) -> ()
  let target = hash(req.path) mod len(backends)
  req => backends[target]
"#;

/// A static web server: replies to every request with a fixed body.
pub struct StaticWebServerFactory {
    body: Vec<u8>,
}

impl StaticWebServerFactory {
    /// Creates the factory with the given response body (the paper uses a
    /// 137-byte payload).
    pub fn new(body: impl Into<Vec<u8>>) -> Arc<Self> {
        Arc::new(StaticWebServerFactory { body: body.into() })
    }
}

struct RespondLogic {
    body: Vec<u8>,
}

impl ComputeLogic for RespondLogic {
    fn on_value(
        &mut self,
        _input: usize,
        value: Value,
        out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError> {
        if value.as_msg().is_some() {
            out.emit(0, Value::Msg(http::response(200, &self.body)));
        }
        Ok(())
    }
}

impl GraphFactory for StaticWebServerFactory {
    fn build(
        &self,
        mut clients: Vec<Endpoint>,
        env: &ServiceEnv,
    ) -> Result<BuiltGraph, RuntimeError> {
        let client = clients
            .pop()
            .ok_or_else(|| RuntimeError::Config("no client connection".into()))?;
        let codec: Arc<HttpCodec> = Arc::new(HttpCodec::new());
        let mut builder = GraphBuilder::new("static-web", &env.allocator)
            .with_channel_capacity(env.channel_capacity);
        let input_node = builder.declare_node();
        let compute_node = builder.declare_node();
        let output_node = builder.declare_node();
        let (req_tx, req_rx) = builder.channel(compute_node);
        let (resp_tx, resp_rx) = builder.channel(output_node);
        builder.install(
            input_node,
            Box::new(InputTask::new(
                "http-in",
                client.clone(),
                codec.clone(),
                Some(http::load_balancer_projection()),
                req_tx,
            )),
        );
        builder.install(
            compute_node,
            Box::new(ComputeTask::new(
                "respond",
                vec![req_rx],
                vec![resp_tx],
                Box::new(RespondLogic {
                    body: self.body.clone(),
                }),
            )),
        );
        let mut out_task = OutputTask::new("http-out", client.clone(), codec, resp_rx);
        out_task.set_mode(env.output_mode);
        builder.install(output_node, Box::new(out_task));
        Ok(BuiltGraph {
            graph: builder.build(),
            watchers: vec![
                Watch::readable(input_node.task_id(), client.clone()),
                Watch::writable(output_node.task_id(), client),
            ],
            initial: vec![],
            client_tasks: vec![input_node.task_id()],
        })
    }
}

/// The HTTP load balancer of Figure 3a.
///
/// Each client connection gets its own task graph. The first request selects
/// a backend with a hash of the connection identity; the graph then consists
/// of: client input task → compute task → backend output task on the forward
/// path, and backend input task → compute task → client output task on the
/// return path (the return path forwards responses without modification).
pub struct HttpLoadBalancerFactory;

impl HttpLoadBalancerFactory {
    /// Creates the factory.
    pub fn new() -> Arc<Self> {
        Arc::new(HttpLoadBalancerFactory)
    }
}

impl Default for HttpLoadBalancerFactory {
    fn default() -> Self {
        HttpLoadBalancerFactory
    }
}

/// Forward path: client requests go to the single backend output; return
/// path: backend responses go back to the client output.
struct ForwardLogic;

impl ComputeLogic for ForwardLogic {
    fn on_value(
        &mut self,
        input: usize,
        value: Value,
        out: &mut Outputs<'_>,
    ) -> Result<(), RuntimeError> {
        match input {
            // Input 0: requests from the client → output 0 (backend).
            0 => out.emit(0, value),
            // Input 1: responses from the backend → output 1 (client).
            _ => out.emit(1, value),
        }
        Ok(())
    }
}

impl GraphFactory for HttpLoadBalancerFactory {
    fn build(
        &self,
        mut clients: Vec<Endpoint>,
        env: &ServiceEnv,
    ) -> Result<BuiltGraph, RuntimeError> {
        let client = clients
            .pop()
            .ok_or_else(|| RuntimeError::Config("no client connection".into()))?;
        if env.backends.is_empty() {
            return Err(RuntimeError::Config(
                "the HTTP load balancer needs at least one backend".into(),
            ));
        }
        // Naive hash of the connection identity seeds the backend pick for
        // this connection; all requests on the connection stick to it. The
        // health-aware checkout skips ejected backends and fails over past
        // a dead target within this same call, so one crashed backend does
        // not refuse the connection while siblings are up.
        let (_backend_idx, backend) = env.backends.checkout_healthy(Some(client.id() as usize))?;

        let codec: Arc<HttpCodec> = Arc::new(HttpCodec::new());
        let mut builder = GraphBuilder::new("http-lb", &env.allocator)
            .with_channel_capacity(env.channel_capacity);
        let client_in = builder.declare_node();
        let backend_in = builder.declare_node();
        let compute_node = builder.declare_node();
        let backend_out = builder.declare_node();
        let client_out = builder.declare_node();

        let (req_tx, req_rx) = builder.channel(compute_node);
        let (resp_tx, resp_rx) = builder.channel(compute_node);
        let (fwd_tx, fwd_rx) = builder.channel(backend_out);
        let (ret_tx, ret_rx) = builder.channel(client_out);

        builder.install(
            client_in,
            Box::new(InputTask::new(
                "client-in",
                client.clone(),
                codec.clone(),
                Some(http::load_balancer_projection()),
                req_tx,
            )),
        );
        // The return path needs no parsing beyond message framing; the raw
        // bytes are forwarded unchanged (projection keeps only framing
        // fields).
        builder.install(
            backend_in,
            Box::new(InputTask::new(
                "backend-in",
                backend.clone(),
                codec.clone(),
                Some(http::load_balancer_projection()),
                resp_tx,
            )),
        );
        builder.install(
            compute_node,
            Box::new(ComputeTask::new(
                "balance",
                vec![req_rx, resp_rx],
                vec![fwd_tx, ret_tx],
                Box::new(ForwardLogic),
            )),
        );
        let mut backend_out_task =
            OutputTask::new("backend-out", backend.clone(), codec.clone(), fwd_rx);
        backend_out_task.set_mode(env.output_mode);
        builder.install(backend_out, Box::new(backend_out_task));
        let mut client_out_task = OutputTask::new("client-out", client.clone(), codec, ret_rx);
        client_out_task.set_mode(env.output_mode);
        builder.install(client_out, Box::new(client_out_task));

        Ok(BuiltGraph {
            graph: builder.build(),
            watchers: vec![
                Watch::readable(client_in.task_id(), client.clone()),
                Watch::readable(backend_in.task_id(), backend.clone()),
                Watch::writable(backend_out.task_id(), backend),
                Watch::writable(client_out.task_id(), client),
            ],
            initial: vec![],
            client_tasks: vec![client_in.task_id()],
        })
    }
}

/// Convenience: returns the TaskId type used in watcher lists (re-exported
/// for the benchmark harness's diagnostics).
pub type WatcherTask = TaskId;

#[cfg(test)]
mod tests {
    use super::*;
    use flick_net::SimNetwork;
    use flick_net::StackModel;
    use flick_runtime::{Platform, PlatformConfig, ServiceSpec};
    use flick_workload::backends::start_http_backend;
    use flick_workload::http::{run_http_load, HttpLoadConfig};
    use std::time::Duration;

    #[test]
    fn static_web_server_answers_requests() {
        let platform = Platform::new(PlatformConfig {
            workers: 2,
            ..Default::default()
        });
        let _svc = platform
            .deploy(ServiceSpec::new(
                "web",
                8090,
                StaticWebServerFactory::new(&b"hello"[..]),
            ))
            .unwrap();
        let stats = run_http_load(
            &platform.net(),
            &HttpLoadConfig {
                port: 8090,
                concurrency: 4,
                duration: Duration::from_millis(200),
                ..Default::default()
            },
        );
        assert!(stats.completed > 10, "{stats:?}");
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn load_balancer_forwards_to_backends_and_back() {
        let net = SimNetwork::new(StackModel::Free);
        let backend_ports = [8191u16, 8192, 8193];
        let _backends: Vec<_> = backend_ports
            .iter()
            .map(|p| start_http_backend(&net, *p, b"from-backend"))
            .collect();
        let platform = Platform::with_network(
            PlatformConfig {
                workers: 2,
                ..Default::default()
            },
            Arc::clone(&net),
        );
        let _svc = platform
            .deploy(
                ServiceSpec::new("lb", 8190, HttpLoadBalancerFactory::new())
                    .with_backends(backend_ports.to_vec()),
            )
            .unwrap();
        let client = net.connect(8190).unwrap();
        client
            .write_all(b"GET /a HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 1024];
        let mut collected = Vec::new();
        loop {
            let n = client
                .read_timeout(&mut buf, Duration::from_secs(5))
                .unwrap();
            collected.extend_from_slice(&buf[..n]);
            if collected.windows(12).any(|w| w == b"from-backend") {
                break;
            }
        }
        let text = String::from_utf8_lossy(&collected);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    }

    #[test]
    fn load_balancer_spreads_connections_over_backends() {
        let net = SimNetwork::new(StackModel::Free);
        let backend_ports = [8291u16, 8292];
        let backends: Vec<_> = backend_ports
            .iter()
            .map(|p| start_http_backend(&net, *p, b"ok"))
            .collect();
        let platform = Platform::with_network(
            PlatformConfig {
                workers: 2,
                ..Default::default()
            },
            Arc::clone(&net),
        );
        let _svc = platform
            .deploy(
                ServiceSpec::new("lb", 8290, HttpLoadBalancerFactory::new())
                    .with_backends(backend_ports.to_vec()),
            )
            .unwrap();
        let stats = run_http_load(
            &net,
            &HttpLoadConfig {
                port: 8290,
                concurrency: 8,
                duration: Duration::from_millis(250),
                ..Default::default()
            },
        );
        assert!(stats.completed > 10, "{stats:?}");
        let served: Vec<u64> = backends.iter().map(|b| b.requests_served()).collect();
        assert!(
            served.iter().filter(|s| **s > 0).count() >= 2,
            "requests should hit both backends: {served:?}"
        );
    }

    /// One dead backend must not refuse connections: the health-aware
    /// checkout fails over to the live sibling within the same request.
    #[test]
    fn load_balancer_fails_over_past_a_dead_backend() {
        let net = SimNetwork::new(StackModel::Free);
        // Only 8392 is listening; hashed picks of 8391 must fail over.
        let _live = start_http_backend(&net, 8392, b"alive");
        let platform = Platform::with_network(
            PlatformConfig {
                workers: 2,
                ..Default::default()
            },
            Arc::clone(&net),
        );
        let _svc = platform
            .deploy(
                ServiceSpec::new("lb", 8394, HttpLoadBalancerFactory::new())
                    .with_backends(vec![8391, 8392]),
            )
            .unwrap();
        let stats = run_http_load(
            &net,
            &HttpLoadConfig {
                port: 8394,
                concurrency: 4,
                duration: Duration::from_millis(200),
                ..Default::default()
            },
        );
        assert!(
            stats.completed > 10,
            "every connection should reach the live backend: {stats:?}"
        );
        let snap = platform.metrics().snapshot();
        assert!(snap.backend_checkouts > 0);
        snap.check_conservation().unwrap();
        snap.check_retry_budget(flick_runtime::BackendPolicy::default().retry_budget as u64)
            .unwrap();
    }

    #[test]
    fn lb_requires_backends() {
        let platform = Platform::new(PlatformConfig::default());
        let svc = platform
            .deploy(ServiceSpec::new("lb", 8390, HttpLoadBalancerFactory::new()))
            .unwrap();
        // A connection arrives but graph construction fails (no backends);
        // the client connection is simply dropped.
        let client = platform.net().connect(8390).unwrap();
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(svc.live_graphs(), 0);
    }

    #[test]
    fn flick_source_for_the_lb_compiles() {
        let typed = flick_lang::compile_to_ast(HTTP_LB_FLICK_SOURCE).unwrap();
        assert!(typed.process("HttpBalancer").is_some());
        let service = flick_compiler::compile(
            &typed,
            "HttpBalancer",
            &flick_compiler::CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(service.process_name(), "HttpBalancer");
    }
}
