//! The Memcached use case: proxy (Listing 1) and cache router.
//!
//! Both services are compiled from their FLICK sources; the proxy is the
//! exact program of Listing 1 and the cache router is the annotated variant
//! that caches `GETK` responses in a `global` dictionary shared by every
//! task-graph instance.

use flick_compiler::{compile_source, CompileOptions, CompiledService};
use std::sync::Arc;

/// Listing 1: the Memcached proxy program.
pub const MEMCACHED_PROXY_FLICK_SOURCE: &str = r#"
type cmd: record
  key : string

proc Memcached: (cmd/cmd client, [cmd/cmd] backends)
  backends => client
  client => target_backend(backends)

fun target_backend: ([-/cmd] backends, req: cmd) -> ()
  let target = hash(req.key) mod len(backends)
  req => backends[target]
"#;

/// The Memcached cache-router program (the annotated Listing 1 variant):
/// `GETK` responses are cached in a shared dictionary and later requests for
/// the same key are answered by the router itself.
pub const MEMCACHED_ROUTER_FLICK_SOURCE: &str = r#"
type cmd: record
  opcode : integer
  key : string

proc MemcachedRouter: (cmd/cmd client, [cmd/cmd] backends)
  global cache := empty_dict
  backends => update_cache(cache) => client
  client => test_cache(client, backends, cache)

fun update_cache: (cache: ref dict<string*cmd>, resp: cmd) -> (cmd)
  if resp.opcode = 12:
    cache[resp.key] := resp
  resp

fun test_cache: (-/cmd client, [-/cmd] backends, cache: ref dict<string*cmd>, req: cmd) -> ()
  if cache[req.key] = None or req.opcode <> 12:
    let target = hash(req.key) mod len(backends)
    req => backends[target]
  else:
    cache[req.key] => client
"#;

/// Compiles the Memcached proxy service (Listing 1).
pub fn memcached_proxy() -> Arc<CompiledService> {
    compile_source(
        MEMCACHED_PROXY_FLICK_SOURCE,
        "Memcached",
        &CompileOptions::default(),
    )
    .expect("the embedded Listing 1 program compiles")
}

/// Compiles the Memcached cache-router service.
pub fn memcached_router() -> Arc<CompiledService> {
    compile_source(
        MEMCACHED_ROUTER_FLICK_SOURCE,
        "MemcachedRouter",
        &CompileOptions::default(),
    )
    .expect("the embedded cache-router program compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_grammar::{memcached as wire, ParseOutcome, WireCodec};
    use flick_net::SimNetwork;
    use flick_net::StackModel;
    use flick_runtime::{Platform, PlatformConfig, ServiceSpec};
    use flick_workload::backends::start_memcached_backend;
    use flick_workload::memcached::{run_memcached_load, MemcachedLoadConfig};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn both_programs_compile() {
        assert_eq!(memcached_proxy().process_name(), "Memcached");
        assert_eq!(memcached_router().process_name(), "MemcachedRouter");
    }

    #[allow(clippy::type_complexity)]
    fn deploy_proxy(
        service: Arc<CompiledService>,
        port: u16,
        backend_ports: &[u16],
    ) -> (
        Arc<SimNetwork>,
        Platform,
        Vec<flick_workload::backends::BackendHandle>,
        flick_runtime::dispatcher::DeployedService,
    ) {
        let net = SimNetwork::new(StackModel::Free);
        let backends: Vec<_> = backend_ports
            .iter()
            .map(|p| start_memcached_backend(&net, *p))
            .collect();
        let platform = Platform::with_network(
            PlatformConfig {
                workers: 2,
                ..Default::default()
            },
            Arc::clone(&net),
        );
        let svc = platform
            .deploy(
                ServiceSpec::new("memcached", port, service).with_backends(backend_ports.to_vec()),
            )
            .unwrap();
        (net, platform, backends, svc)
    }

    #[test]
    fn proxy_round_trips_requests_through_backends() {
        let (net, _platform, backends, _svc) =
            deploy_proxy(memcached_proxy(), 11300, &[11301, 11302]);
        let stats = run_memcached_load(
            &net,
            &MemcachedLoadConfig {
                port: 11300,
                clients: 8,
                duration: Duration::from_millis(300),
                key_space: 64,
                ..Default::default()
            },
        );
        assert!(stats.completed > 20, "{stats:?}");
        let served: u64 = backends.iter().map(|b| b.requests_served()).sum();
        assert!(served > 0, "backends must have been consulted");
        // Keys are hash-partitioned, so with 64 keys both backends see traffic.
        assert!(backends.iter().all(|b| b.requests_served() > 0));
    }

    #[test]
    fn router_caches_getk_responses() {
        let (net, _platform, backends, _svc) = deploy_proxy(memcached_router(), 11400, &[11401]);
        let codec = wire::MemcachedCodec::new();
        let client = net.connect(11400).unwrap();
        let ask = |key: &str| {
            let mut out = Vec::new();
            codec
                .serialize(
                    &wire::request(wire::opcode::GETK, key.as_bytes(), b"", b""),
                    &mut out,
                )
                .unwrap();
            client.write_all(&out).unwrap();
            let mut collected = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = client
                    .read_timeout(&mut buf, Duration::from_secs(5))
                    .unwrap();
                collected.extend_from_slice(&buf[..n]);
                if let Ok(ParseOutcome::Complete { message, .. }) = codec.parse(&collected, None) {
                    return message;
                }
            }
        };
        let first = ask("popular");
        assert_eq!(first.str_field("key"), Some("popular"));
        let after_first = backends[0].requests_served();
        assert!(after_first >= 1);
        // The second request for the same key is served from the router's
        // cache: the backend sees no additional request.
        let second = ask("popular");
        assert_eq!(second.str_field("key"), Some("popular"));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            backends[0].requests_served(),
            after_first,
            "cache hit must not reach the backend"
        );
    }
}
