//! The paper's application-specific network services and baseline systems.
//!
//! Use cases (§2.1 / §6.1):
//!
//! * [`http`] — the HTTP load balancer and its static-web-server variant,
//!   built as explicit task graphs on the FLICK runtime (the shape of
//!   Figure 3a);
//! * [`memcached`] — the Memcached proxy (Listing 1) and cache router,
//!   compiled from their FLICK sources;
//! * [`hadoop`] — the Hadoop in-network data aggregator (Listing 3),
//!   compiled from its FLICK source;
//! * [`baselines`] — behavioural models of the systems the paper compares
//!   against: Apache (thread-per-connection proxy), Nginx (event-loop proxy)
//!   and Moxi (multi-threaded Memcached proxy with shared state).

pub mod baselines;
pub mod hadoop;
pub mod http;
pub mod memcached;

pub use http::{HttpLoadBalancerFactory, StaticWebServerFactory};
