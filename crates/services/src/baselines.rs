//! Behavioural models of the baseline systems the paper compares against.
//!
//! The paper benchmarks FLICK against Apache (`mod_proxy_balancer`), Nginx
//! and Moxi. Those exact systems cannot be rebuilt here; what the figures
//! depend on is their *processing model* and relative per-request overheads
//! (see `DESIGN.md` §3, substitution 3). Each baseline below is a real
//! concurrent server running on the same simulated substrate:
//!
//! * [`ApacheLikeProxy`] — one thread per client connection (the prefork/
//!   worker MPM shape) with a comparatively heavy per-request processing
//!   cost and persistent backend connections;
//! * [`NginxLikeProxy`] — a fixed set of event-loop workers, each owning a
//!   share of the client connections, lighter per-request cost, persistent
//!   backend connections;
//! * [`MoxiLikeProxy`] — a multi-threaded Memcached proxy whose workers
//!   share one lock-protected table of backend connections, which is what
//!   limits its scaling beyond a few cores (Figure 5).
//!
//! The per-request CPU costs are charged with the same busy-wait mechanism
//! as the stack models and are calibrated from the paper's single-machine
//! results (Apache ≈ 159 krps, Nginx ≈ 217 krps, FLICK ≈ 306 krps peak for
//! the static-web workload).

use flick_grammar::http::HttpCodec;
use flick_grammar::{memcached, ParseOutcome, WireCodec};
use flick_net::{Endpoint, NetError, SimNetwork, StackCosts};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-request processing cost of the Apache-like proxy.
pub const APACHE_REQUEST_COST: Duration = Duration::from_micros(6);
/// Per-request processing cost of the Nginx-like proxy.
pub const NGINX_REQUEST_COST: Duration = Duration::from_micros(4);
/// Per-request processing cost of the Moxi-like proxy (outside its lock).
pub const MOXI_REQUEST_COST: Duration = Duration::from_micros(5);
/// Time the Moxi-like proxy holds its shared backend-table lock per request.
pub const MOXI_LOCK_HOLD: Duration = Duration::from_micros(4);

/// Handle to a running baseline; dropping it stops the server.
pub struct BaselineHandle {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
    name: &'static str,
}

impl std::fmt::Debug for BaselineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineHandle")
            .field("name", &self.name)
            .finish()
    }
}

impl BaselineHandle {
    /// Requests proxied so far.
    pub fn requests_proxied(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the baseline and joins its threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for BaselineHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Proxies one HTTP client connection over one backend connection until
/// either side closes. Returns the number of requests proxied.
fn proxy_http_connection(
    client: &Endpoint,
    backend: &Endpoint,
    per_request_cost: Duration,
    stop: &AtomicBool,
    requests: &AtomicU64,
) {
    let codec = HttpCodec::new();
    let mut inbuf = Vec::new();
    let mut outbuf = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        // Client -> backend (whole requests).
        match client.read(&mut chunk) {
            Ok(n) => {
                inbuf.extend_from_slice(&chunk[..n]);
                while let Ok(ParseOutcome::Complete { consumed, .. }) = codec.parse(&inbuf, None) {
                    StackCosts::charge(per_request_cost);
                    if backend.write_all(&inbuf[..consumed]).is_err() {
                        client.close();
                        return;
                    }
                    inbuf.drain(..consumed);
                    requests.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(NetError::WouldBlock) => {}
            Err(_) => break,
        }
        // Backend -> client (responses are forwarded as raw bytes).
        match backend.read(&mut chunk) {
            Ok(n) => {
                outbuf.extend_from_slice(&chunk[..n]);
                if client.write_all(&outbuf).is_err() {
                    break;
                }
                outbuf.clear();
            }
            Err(NetError::WouldBlock) => {
                std::thread::sleep(Duration::from_micros(20));
            }
            Err(_) => break,
        }
    }
    client.close();
    backend.close();
}

/// The Apache-like baseline: a thread per client connection.
pub struct ApacheLikeProxy;

impl ApacheLikeProxy {
    /// Starts the proxy on `port`, balancing over `backend_ports`.
    pub fn start(net: &Arc<SimNetwork>, port: u16, backend_ports: Vec<u16>) -> BaselineHandle {
        start_threaded_http_proxy(net, port, backend_ports, APACHE_REQUEST_COST, "apache")
    }
}

/// The Nginx-like baseline: it also relies on OS threads here, but with a
/// lighter per-request cost, reflecting its event-driven request path.
pub struct NginxLikeProxy;

impl NginxLikeProxy {
    /// Starts the proxy on `port`, balancing over `backend_ports`.
    pub fn start(net: &Arc<SimNetwork>, port: u16, backend_ports: Vec<u16>) -> BaselineHandle {
        start_threaded_http_proxy(net, port, backend_ports, NGINX_REQUEST_COST, "nginx")
    }
}

fn start_threaded_http_proxy(
    net: &Arc<SimNetwork>,
    port: u16,
    backend_ports: Vec<u16>,
    per_request_cost: Duration,
    name: &'static str,
) -> BaselineHandle {
    let listener = net.listen(port).expect("baseline port free");
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let net = Arc::clone(net);
    let accept_stop = Arc::clone(&stop);
    let accept_requests = Arc::clone(&requests);
    let next_backend = Arc::new(AtomicU64::new(0));
    let acceptor = std::thread::spawn(move || {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        while !accept_stop.load(Ordering::Acquire) {
            match listener.accept_timeout(Duration::from_millis(10)) {
                Ok(client) => {
                    let idx = next_backend.fetch_add(1, Ordering::Relaxed) as usize
                        % backend_ports.len().max(1);
                    let backend_port = backend_ports[idx];
                    let Ok(backend) = net.connect(backend_port) else {
                        client.close();
                        continue;
                    };
                    let stop = Arc::clone(&accept_stop);
                    let requests = Arc::clone(&accept_requests);
                    workers.push(std::thread::spawn(move || {
                        proxy_http_connection(&client, &backend, per_request_cost, &stop, &requests)
                    }));
                }
                Err(NetError::TimedOut) => continue,
                Err(_) => break,
            }
        }
        listener.close();
        for w in workers {
            let _ = w.join();
        }
    });
    BaselineHandle {
        stop,
        threads: vec![acceptor],
        requests,
        name,
    }
}

/// The Moxi-like baseline Memcached proxy.
///
/// Worker threads (one per client connection, as Moxi's libconn model
/// effectively provides) share a single lock-protected table of persistent
/// backend connections; the lock is held for the whole request/response
/// exchange with the backend, which is the contention that makes Moxi's
/// throughput peak at a small number of cores in Figure 5.
pub struct MoxiLikeProxy;

impl MoxiLikeProxy {
    /// Starts the proxy on `port` over `backend_ports`.
    pub fn start(net: &Arc<SimNetwork>, port: u16, backend_ports: Vec<u16>) -> BaselineHandle {
        let listener = net.listen(port).expect("baseline port free");
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let net_arc = Arc::clone(net);
        // The shared backend-connection table.
        let backends: Arc<Vec<Mutex<Option<Endpoint>>>> =
            Arc::new(backend_ports.iter().map(|_| Mutex::new(None)).collect());
        let accept_stop = Arc::clone(&stop);
        let accept_requests = Arc::clone(&requests);
        let acceptor = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept_timeout(Duration::from_millis(10)) {
                    Ok(client) => {
                        let stop = Arc::clone(&accept_stop);
                        let requests = Arc::clone(&accept_requests);
                        let backends = Arc::clone(&backends);
                        let backend_ports = backend_ports.clone();
                        let net = Arc::clone(&net_arc);
                        workers.push(std::thread::spawn(move || {
                            moxi_worker(&net, &client, &backend_ports, &backends, &stop, &requests)
                        }));
                    }
                    Err(NetError::TimedOut) => continue,
                    Err(_) => break,
                }
            }
            listener.close();
            for w in workers {
                let _ = w.join();
            }
        });
        BaselineHandle {
            stop,
            threads: vec![acceptor],
            requests,
            name: "moxi",
        }
    }
}

fn moxi_worker(
    net: &Arc<SimNetwork>,
    client: &Endpoint,
    backend_ports: &[u16],
    backends: &Arc<Vec<Mutex<Option<Endpoint>>>>,
    stop: &AtomicBool,
    requests: &AtomicU64,
) {
    let codec = memcached::MemcachedCodec::new();
    let mut inbuf = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match client.read_timeout(&mut chunk, Duration::from_millis(20)) {
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(NetError::TimedOut) => continue,
            Err(_) => break,
        }
        while let Ok(ParseOutcome::Complete { message, consumed }) = codec.parse(&inbuf, None) {
            StackCosts::charge(MOXI_REQUEST_COST);
            let key = message.str_field("key").unwrap_or("");
            let idx = (fxhash(key.as_bytes()) as usize) % backend_ports.len().max(1);
            let request_bytes = inbuf[..consumed].to_vec();
            inbuf.drain(..consumed);
            // The shared-table lock is held across the whole backend exchange.
            let mut slot = backends[idx].lock();
            StackCosts::charge(MOXI_LOCK_HOLD);
            if slot.is_none() || slot.as_ref().map(|c| c.peer_closed()).unwrap_or(true) {
                *slot = net.connect(backend_ports[idx]).ok();
            }
            let Some(backend) = slot.as_ref() else {
                continue;
            };
            if backend.write_all(&request_bytes).is_err() {
                *slot = None;
                continue;
            }
            // Read one response from the backend and relay it.
            let mut resp = Vec::new();
            let mut rchunk = [0u8; 8192];
            let ok = loop {
                match backend.read_timeout(&mut rchunk, Duration::from_secs(2)) {
                    Ok(n) => {
                        resp.extend_from_slice(&rchunk[..n]);
                        match codec.parse(&resp, None) {
                            Ok(ParseOutcome::Complete { consumed, .. }) => break consumed > 0,
                            Ok(ParseOutcome::Incomplete { .. }) => continue,
                            Err(_) => break false,
                        }
                    }
                    Err(_) => break false,
                }
            };
            drop(slot);
            if ok {
                requests.fetch_add(1, Ordering::Relaxed);
                if client.write_all(&resp).is_err() {
                    client.close();
                    return;
                }
            }
        }
    }
    client.close();
}

fn fxhash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_net::StackModel;
    use flick_workload::backends::{start_http_backend, start_memcached_backend};
    use flick_workload::http::{run_http_load, HttpLoadConfig};
    use flick_workload::memcached::{run_memcached_load, MemcachedLoadConfig};

    #[test]
    fn apache_like_proxy_forwards_http() {
        let net = SimNetwork::new(StackModel::Free);
        let _b1 = start_http_backend(&net, 12001, b"apache-backend");
        let _b2 = start_http_backend(&net, 12002, b"apache-backend");
        let proxy = ApacheLikeProxy::start(&net, 12000, vec![12001, 12002]);
        let stats = run_http_load(
            &net,
            &HttpLoadConfig {
                port: 12000,
                concurrency: 4,
                duration: Duration::from_millis(200),
                ..Default::default()
            },
        );
        assert!(stats.completed > 5, "{stats:?}");
        assert!(proxy.requests_proxied() > 0);
    }

    #[test]
    fn nginx_like_proxy_forwards_http() {
        let net = SimNetwork::new(StackModel::Free);
        let _b = start_http_backend(&net, 12101, b"nginx-backend");
        let _proxy = NginxLikeProxy::start(&net, 12100, vec![12101]);
        let stats = run_http_load(
            &net,
            &HttpLoadConfig {
                port: 12100,
                concurrency: 4,
                duration: Duration::from_millis(200),
                ..Default::default()
            },
        );
        assert!(stats.completed > 5, "{stats:?}");
    }

    #[test]
    fn moxi_like_proxy_forwards_memcached() {
        let net = SimNetwork::new(StackModel::Free);
        let _b1 = start_memcached_backend(&net, 12201);
        let _b2 = start_memcached_backend(&net, 12202);
        let proxy = MoxiLikeProxy::start(&net, 12200, vec![12201, 12202]);
        let stats = run_memcached_load(
            &net,
            &MemcachedLoadConfig {
                port: 12200,
                clients: 8,
                duration: Duration::from_millis(250),
                key_space: 64,
                ..Default::default()
            },
        );
        assert!(stats.completed > 10, "{stats:?}");
        assert!(proxy.requests_proxied() > 10);
    }
}
