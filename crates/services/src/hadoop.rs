//! The Hadoop in-network data aggregator (Listing 3 / Figure 3c).
//!
//! The aggregator implements the combiner function of a wordcount job: it
//! receives the intermediate key/value streams of the mappers, merges them
//! (summing the per-word counters) and forwards the aggregated stream to the
//! reducer, reducing the traffic that crosses the network.

use flick_compiler::{compile_source, CompileOptions, CompiledService};
use std::sync::Arc;

/// Listing 3: the Hadoop data aggregator program. The combine function sums
/// the two counters, which is the wordcount combiner.
pub const HADOOP_AGGREGATOR_FLICK_SOURCE: &str = r#"
type kv: record
  key : string
  value : string

proc hadoop: ([kv/-] mappers, -/kv reducer):
  if all_ready(mappers):
    let result = foldt on mappers ordering elem e1, e2 by elem.key as e_key:
      let v = combine(e1.value, e2.value)
      kv(e_key, v)
    result => reducer

fun combine: (v1: string, v2: string) -> (string)
  str(int(v1) + int(v2))
"#;

/// Compiles the Hadoop aggregator for the given number of mapper
/// connections (the paper deploys 8 mappers and one task graph per reducer).
pub fn hadoop_aggregator(mappers: usize) -> Arc<CompiledService> {
    let options = CompileOptions::default().with_client_connections(mappers);
    compile_source(HADOOP_AGGREGATOR_FLICK_SOURCE, "hadoop", &options)
        .expect("the embedded Listing 3 program compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_grammar::hadoop as wire;
    use flick_net::{SimNetwork, StackModel};
    use flick_runtime::{GraphFactory, Platform, PlatformConfig, ServiceSpec};
    use flick_workload::backends::start_sink_backend;
    use flick_workload::hadoop::{run_hadoop_mappers, wait_for_quiescence, HadoopLoadConfig};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn aggregator_compiles_and_uses_foldt() {
        let svc = hadoop_aggregator(8);
        assert!(svc.is_foldt());
        assert_eq!(svc.connections_per_graph(), 8);
    }

    #[test]
    fn aggregator_combines_wordcounts_before_the_reducer() {
        let net = SimNetwork::new(StackModel::Free);
        let (_reducer, reducer_bytes) = start_sink_backend(&net, 9701);
        let platform = Platform::with_network(
            PlatformConfig {
                workers: 4,
                ..Default::default()
            },
            Arc::clone(&net),
        );
        let _svc = platform
            .deploy(
                ServiceSpec::new("hadoop", 9700, hadoop_aggregator(2)).with_backends(vec![9701]),
            )
            .unwrap();

        let config = HadoopLoadConfig {
            port: 9700,
            mappers: 2,
            word_len: 8,
            distinct_words: 32,
            bytes_per_mapper: 64 * 1024,
            link_bits_per_sec: None,
            seed: None,
        };
        let stats = run_hadoop_mappers(&net, &config);
        assert_eq!(stats.failed, 0);
        let forwarded = wait_for_quiescence(&reducer_bytes, Duration::from_secs(10));
        assert!(
            forwarded > 0,
            "the reducer must receive the aggregated stream"
        );
        // The workload has a high reduction ratio (32 distinct words), so the
        // aggregated stream must be much smaller than the mapper volume.
        assert!(
            forwarded < stats.bytes / 4,
            "expected in-network reduction: sent {} bytes, reducer got {forwarded}",
            stats.bytes
        );
        // An upper bound on the aggregated size: one record per distinct word
        // with a generous counter width.
        assert!(forwarded <= (32 * wire::record_wire_len("12345678", "99999999")) as u64);
    }
}
