//! # flick_sim — deterministic scenario harness
//!
//! Drives whole [`flick_runtime::Platform`] graphs through scripted fault
//! schedules over the simulated transport and checks global invariants
//! after every tick (DESIGN.md §12). A single `u64` seed derives every
//! random choice through order-stable [`flick_net::SimRng`] forks, so a
//! failing run replays bit-identically: every [`Violation`] carries the
//! seed, and the [`Trace`] hash is the replay witness the regression
//! tests pin.
//!
//! The harness is a test-and-debugging tool, not part of the data plane —
//! the facade crate does not re-export it; test suites depend on it
//! directly.

pub mod fault;
pub mod invariant;
pub mod message_mutator;
pub mod scenario;
pub mod stress;
pub mod trace;

pub use fault::{FaultOp, ScheduledFault};
pub use invariant::{check_tick, TickChecks, Violation};
pub use message_mutator::{Delivery, MessageMutator, MutatedFrame, MutationKind};
pub use scenario::{run_scenario, wait_until, ScenarioConfig, ScenarioReport};
pub use stress::{run_poller_handoff_scenario, run_stall_park_scenario};
pub use trace::Trace;
