//! Invariant violations and the per-tick check battery.

use flick_net::stats::StatsSnapshot;
use flick_runtime::metrics::MetricsSnapshot;

/// One invariant failure, tagged with the scenario seed and the tick it
/// surfaced on so the exact run can be replayed bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The scenario seed that produced the failure.
    pub seed: u64,
    /// The tick on which the check fired (`u64::MAX` for teardown checks).
    pub tick: u64,
    /// What went wrong.
    pub what: String,
}

impl Violation {
    /// Tags a failure with its replay coordinates.
    pub fn new(seed: u64, tick: u64, what: impl Into<String>) -> Self {
        Violation {
            seed,
            tick,
            what: what.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.tick == u64::MAX {
            write!(
                f,
                "[seed {:#018x}] teardown: {} (replay with this seed)",
                self.seed, self.what
            )
        } else {
            write!(
                f,
                "[seed {:#018x}] tick {}: {} (replay with this seed)",
                self.seed, self.tick, self.what
            )
        }
    }
}

/// Which optional gates the tick battery applies on top of the always-on
/// conservation laws.
#[derive(Debug, Clone, Copy)]
pub struct TickChecks {
    /// Require `ingest_copies == 0` (the zero-copy data-plane gate).
    pub expect_zero_copy: bool,
    /// Require `output_busy_retries == 0` (wakeup-driven output mode).
    pub expect_no_busy_retries: bool,
    /// Gate the no-retry-storm law: backend retries must stay within
    /// `checkouts × budget`. `None` here means "use the scenario's own
    /// backend policy budget" — the scenario driver resolves it before
    /// the first tick, so the gate is always on under `run_scenario`;
    /// only direct `check_tick` callers can opt out by leaving `None`.
    pub retry_budget: Option<u64>,
}

impl Default for TickChecks {
    fn default() -> Self {
        TickChecks {
            expect_zero_copy: false,
            expect_no_busy_retries: true,
            retry_budget: None,
        }
    }
}

/// Runs the per-tick invariant battery over a pair of snapshots and
/// returns every violation, tagged with `seed`/`tick`.
pub fn check_tick(
    seed: u64,
    tick: u64,
    net: &StatsSnapshot,
    runtime: &MetricsSnapshot,
    checks: TickChecks,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if let Err(what) = net.check_conservation() {
        violations.push(Violation::new(seed, tick, what));
    }
    if checks.expect_zero_copy {
        if let Err(what) = net.check_zero_copy() {
            violations.push(Violation::new(seed, tick, what));
        }
    }
    if let Err(what) = runtime.check_conservation() {
        violations.push(Violation::new(seed, tick, what));
    }
    if checks.expect_no_busy_retries && runtime.output_busy_retries != 0 {
        violations.push(Violation::new(
            seed,
            tick,
            format!(
                "output tasks busy-retried {} times under wakeup mode",
                runtime.output_busy_retries
            ),
        ));
    }
    if let Some(budget) = checks.retry_budget {
        if let Err(what) = runtime.check_retry_budget(budget) {
            violations.push(Violation::new(seed, tick, what));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_pair_of_snapshots_passes() {
        let net = StatsSnapshot {
            connections_opened: 4,
            connections_closed: 8,
            bytes_sent: 1000,
            bytes_received: 900,
            ..Default::default()
        };
        let runtime = MetricsSnapshot {
            task_runs: 50,
            graphs_created: 4,
            graphs_destroyed: 4,
            ..Default::default()
        };
        assert!(check_tick(1, 2, &net, &runtime, TickChecks::default()).is_empty());
    }

    #[test]
    fn violations_carry_seed_and_tick() {
        let net = StatsSnapshot {
            bytes_sent: 10,
            bytes_received: 20,
            ..Default::default()
        };
        let runtime = MetricsSnapshot::default();
        let violations = check_tick(0xabc, 7, &net, &runtime, TickChecks::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].seed, 0xabc);
        assert_eq!(violations[0].tick, 7);
        let rendered = violations[0].to_string();
        assert!(rendered.contains("tick 7"), "{rendered}");
        assert!(rendered.contains("replay"), "{rendered}");
    }

    /// The writev-path conservation laws (added with the vectored output
    /// path) flow into the tick battery through `check_conservation`: a
    /// healthy vectored shape passes, and a snapshot claiming more
    /// vectored writes than write calls — impossible if every `writev` is
    /// recorded as a write call — fires on every tick.
    #[test]
    fn writev_conservation_flows_into_the_tick_battery() {
        let runtime = MetricsSnapshot::default();
        let healthy = StatsSnapshot {
            bytes_sent: 4096,
            bytes_received: 4096,
            write_calls: 10,
            vectored_writes: 4,
            vectored_segments: 8,
            ..Default::default()
        };
        assert!(check_tick(3, 1, &healthy, &runtime, TickChecks::default()).is_empty());

        let impossible = StatsSnapshot {
            write_calls: 2,
            vectored_writes: 3,
            vectored_segments: 6,
            ..Default::default()
        };
        let violations = check_tick(3, 2, &impossible, &runtime, TickChecks::default());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].what.contains("writev"), "{}", violations[0]);

        let segmentless = StatsSnapshot {
            write_calls: 5,
            vectored_writes: 3,
            vectored_segments: 2,
            ..Default::default()
        };
        let violations = check_tick(3, 3, &segmentless, &runtime, TickChecks::default());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].what.contains("segment"), "{}", violations[0]);
    }

    #[test]
    fn optional_gates_fire_only_when_enabled() {
        let net = StatsSnapshot {
            ingest_copies: 1,
            ingest_copied_bytes: 64,
            ..Default::default()
        };
        let runtime = MetricsSnapshot {
            task_runs: 10,
            output_busy_retries: 3,
            ..Default::default()
        };
        let lax = TickChecks {
            expect_zero_copy: false,
            expect_no_busy_retries: false,
            retry_budget: None,
        };
        assert!(check_tick(1, 0, &net, &runtime, lax).is_empty());
        let strict = TickChecks {
            expect_zero_copy: true,
            expect_no_busy_retries: true,
            retry_budget: None,
        };
        assert_eq!(check_tick(1, 0, &net, &runtime, strict).len(), 2);
    }

    /// The no-retry-storm law flows into the tick battery when a budget is
    /// set: retries within `checkouts × budget` pass, a storm fires.
    #[test]
    fn retry_budget_gate_flows_into_the_tick_battery() {
        let net = StatsSnapshot::default();
        let runtime = MetricsSnapshot {
            task_runs: 10,
            backend_checkouts: 4,
            backend_retries: 8,
            ..Default::default()
        };
        let gated = TickChecks {
            retry_budget: Some(2),
            ..TickChecks::default()
        };
        assert!(check_tick(9, 1, &net, &runtime, gated).is_empty());
        let tight = TickChecks {
            retry_budget: Some(1),
            ..TickChecks::default()
        };
        let violations = check_tick(9, 2, &net, &runtime, tight);
        assert_eq!(violations.len(), 1);
        assert!(
            violations[0].what.contains("retry budget"),
            "{}",
            violations[0]
        );
    }
}
