//! Event traces and their replay hashes.
//!
//! A scenario records every decision the driver makes — faults applied,
//! client actions chosen, request outcomes (when the scenario is outcome-
//! deterministic) — as a flat list of strings. Two runs of the same
//! scenario with the same seed must produce byte-identical traces; the
//! FNV-1a hash over the whole list is the cheap equality witness the
//! regression tests pin.

/// An append-only log of driver decisions, hashed for replay comparison.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<String>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: impl Into<String>) {
        self.events.push(event.into());
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a over every event (newline-terminated, so event boundaries
    /// matter: `["ab","c"]` and `["a","bc"]` hash differently).
    pub fn hash(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &self.events {
            for byte in event.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_hash_identically() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        for event in ["tick 0", "crash backend 1", "tick 1"] {
            a.push(event);
            b.push(event);
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn different_traces_hash_differently() {
        let mut a = Trace::new();
        a.push("tick 0");
        a.push("ok");
        let mut b = Trace::new();
        b.push("tick 0");
        b.push("err");
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn event_boundaries_affect_the_hash() {
        let mut a = Trace::new();
        a.push("ab");
        a.push("c");
        let mut b = Trace::new();
        b.push("a");
        b.push("bc");
        assert_ne!(a.hash(), b.hash());
    }
}
