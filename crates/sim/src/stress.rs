//! Targeted stress scenarios ported from the end-to-end and substrate
//! test suites into the seeded harness, so their regression seeds are
//! pinned and a failure replays from the seed alone.

use crate::invariant::Violation;
use crate::scenario::{wait_until, ScenarioReport};
use crate::trace::Trace;
use flick_grammar::http::HttpCodec;
use flick_grammar::{ParseOutcome, WireCodec};
use flick_net::conn::pair;
use flick_net::listener::ConnectOptions;
use flick_net::{Interest, NetError, Poller, SimRng, StackCosts, Token};
use flick_runtime::{Platform, PlatformConfig, ServiceSpec};
use flick_services::StaticWebServerFactory;
use std::time::{Duration, Instant};

/// The stall-park stress as a harness scenario: a 16 KB response against
/// a 4 KB client pipe forces the output task into `WouldBlock` with most
/// of the response buffered; while the client stalls, the task must park
/// on writable readiness (zero busy retries, zero task runs), and when
/// the client drains, the writable wakeup must deliver the rest.
pub fn run_stall_park_scenario(seed: u64) -> ScenarioReport {
    let mut trace = Trace::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut rng = SimRng::new(seed).fork("stall-park");
    trace.push(format!("stall-park seed {seed:#018x}"));

    let body_len = 16 * 1024;
    let platform = Platform::new(PlatformConfig {
        workers: 2,
        ..Default::default()
    });
    let net = platform.net();
    let mut service = platform
        .deploy(ServiceSpec::new(
            "stall-park",
            8310,
            StaticWebServerFactory::new(vec![b'y'; body_len]),
        ))
        .expect("service deploys");

    let client = net
        .connect_with(
            8310,
            &ConnectOptions {
                capacity: Some(4 * 1024),
                ..Default::default()
            },
        )
        .expect("connect");
    // The request path is seeded so the trace proves the run derives
    // from the seed (the platform ignores the path).
    let path = format!("/stall/{}", rng.pick(1_000_000));
    trace.push(format!("request {path}"));
    client
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: s\r\n\r\n").as_bytes())
        .expect("request writes");

    // Let the graph build and the output task slam into the full pipe,
    // then hold still: a parked task costs nothing while the peer stalls.
    std::thread::sleep(Duration::from_millis(100));
    let before = platform.metrics().snapshot();
    std::thread::sleep(Duration::from_millis(150));
    let after = platform.metrics().snapshot();
    if after.output_busy_retries != 0 {
        violations.push(Violation::new(
            seed,
            0,
            format!(
                "stalled peer caused {} busy retries instead of parking",
                after.output_busy_retries
            ),
        ));
    }
    if after.task_runs != before.task_runs {
        violations.push(Violation::new(
            seed,
            0,
            format!(
                "{} task runs while the peer stalled (parked tasks cost zero)",
                after.task_runs - before.task_runs
            ),
        ));
    }
    trace.push("quiet window passed".to_string());

    // Drain: the writable wakeup path must deliver the whole response.
    let codec = HttpCodec::new();
    let mut response = Vec::with_capacity(body_len + 128);
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut requests_ok = 0u64;
    loop {
        if Instant::now() >= deadline {
            violations.push(Violation::new(
                seed,
                1,
                format!(
                    "response stalled at {} bytes after the drain began \
                     (lost writable wakeup?)",
                    response.len()
                ),
            ));
            break;
        }
        match client.read_timeout(&mut chunk, Duration::from_millis(200)) {
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                match codec.parse(&response, None) {
                    Ok(ParseOutcome::Complete { consumed, .. }) => {
                        trace.push(format!("drained {consumed} bytes"));
                        requests_ok = 1;
                        break;
                    }
                    Ok(ParseOutcome::Incomplete { .. }) => continue,
                    Err(e) => {
                        violations.push(Violation::new(seed, 1, format!("garbled response: {e}")));
                        break;
                    }
                }
            }
            Err(NetError::TimedOut) => continue,
            Err(e) => {
                violations.push(Violation::new(
                    seed,
                    1,
                    format!("drain failed after {} bytes: {e}", response.len()),
                ));
                break;
            }
        }
    }
    client.close();

    if !wait_until(Duration::from_secs(10), || service.live_graphs() == 0) {
        violations.push(Violation::new(seed, u64::MAX, "graph leaked after drain"));
    }
    service.stop();
    if !wait_until(Duration::from_secs(10), || platform.task_count() == 0) {
        violations.push(Violation::new(
            seed,
            u64::MAX,
            format!(
                "{} task(s) leaked after service stop",
                platform.task_count()
            ),
        ));
    }

    let trace_hash = trace.hash();
    ScenarioReport {
        name: "stall-park",
        seed,
        trace,
        trace_hash,
        violations,
        requests_ok,
        requests_failed: 1 - requests_ok,
        backend_requests_served: 0,
        hostile_sent: 0,
        hostile_rejected: 0,
        final_metrics: Default::default(),
        final_net: Default::default(),
    }
}

/// The poller-handoff stress as a harness scenario: while a writer races
/// at full speed through a tiny pipe, the consumer repeatedly re-registers
/// the endpoint with a fresh poller. `register` installs the new waker
/// and performs the level-triggered check under the pipe lock, so no byte
/// and no EOF may fall between the old and the new registration — a lost
/// wakeup shows up as the reader timing out short of the total.
///
/// The writer's chunk plan derives from the seed (and is what the trace
/// hashes); the reader's handoff cadence draws from an independent fork
/// so its timing-dependent draw count cannot skew the writer's stream.
pub fn run_poller_handoff_scenario(seed: u64) -> ScenarioReport {
    const TOTAL: usize = 192 * 1024;
    let mut trace = Trace::new();
    let mut violations: Vec<Violation> = Vec::new();
    let root = SimRng::new(seed);
    let mut writer_rng = root.fork("handoff-writer");
    let mut reader_rng = root.fork("handoff-reader");
    trace.push(format!("poller-handoff seed {seed:#018x} total {TOTAL}"));

    // A small pipe forces many buffer-full / drained transitions,
    // maximising the chance of a transition racing a handoff.
    let (client, server) = pair(seed, StackCosts::free(), None, 2 * 1024);

    // Seeded chunk plan, fixed before any racing begins.
    let mut chunks: Vec<usize> = Vec::new();
    let mut planned = 0usize;
    while planned < TOTAL {
        let chunk = 64 + rng_span(&mut writer_rng, 1400);
        let chunk = chunk.min(TOTAL - planned);
        planned += chunk;
        chunks.push(chunk);
    }
    trace.push(format!("plan {} chunks", chunks.len()));

    let writer = std::thread::spawn(move || {
        let payload = [0xa5u8; 1500];
        for chunk in &chunks {
            client
                .write_all(&payload[..*chunk])
                .expect("peer stays open");
        }
        client.close();
    });

    let mut received = 0usize;
    let mut eof = false;
    let mut buf = [0u8; 1500];
    let mut handoffs = 0u32;
    let deadline = Instant::now() + Duration::from_secs(30);
    while !eof {
        if Instant::now() >= deadline {
            violations.push(Violation::new(
                seed,
                0,
                format!(
                    "lost wakeup across poller handoff: {received} of {TOTAL} \
                     bytes after {handoffs} handoffs"
                ),
            ));
            break;
        }
        // Hand the registration to a brand-new poller mid-stream.
        let poller = Poller::new();
        server.register(&poller, Token(u64::from(handoffs)), Interest::READABLE);
        handoffs += 1;
        // Consume a seeded number of event rounds through this poller,
        // then hand off again while the writer keeps racing.
        let rounds = 1 + rng_span(&mut reader_rng, 5);
        for _ in 0..rounds {
            if eof {
                break;
            }
            for _event in poller.wait(Duration::from_millis(100)) {
                loop {
                    match server.read(&mut buf) {
                        Ok(n) => received += n,
                        Err(NetError::WouldBlock) => break,
                        Err(NetError::Closed) => {
                            eof = true;
                            break;
                        }
                        Err(e) => {
                            violations.push(Violation::new(seed, 0, format!("read error: {e}")));
                            eof = true;
                            break;
                        }
                    }
                }
            }
        }
    }
    let _ = writer.join();
    if eof && received != TOTAL {
        violations.push(Violation::new(
            seed,
            0,
            format!("stream truncated: {received} of {TOTAL} bytes"),
        ));
    }
    if handoffs < 2 {
        violations.push(Violation::new(
            seed,
            0,
            format!("stream must survive several handoffs, saw {handoffs}"),
        ));
    }
    trace.push(format!("received {TOTAL} planned bytes"));

    let ok = violations.is_empty();
    let trace_hash = trace.hash();
    ScenarioReport {
        name: "poller-handoff",
        seed,
        trace,
        trace_hash,
        violations,
        requests_ok: u64::from(ok),
        requests_failed: u64::from(!ok),
        backend_requests_served: 0,
        hostile_sent: 0,
        hostile_rejected: 0,
        final_metrics: Default::default(),
        final_net: Default::default(),
    }
}

/// `0..n` draw on a [`SimRng`] (kept local so both stresses share it).
fn rng_span(rng: &mut SimRng, n: usize) -> usize {
    rng.pick(n)
}
